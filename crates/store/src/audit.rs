//! An append-only audit log of authorization decisions.
//!
//! Access-control decisions are evidence: audits need who asked, for
//! what, under which strategy, what the answer was, and which policy
//! produced it (the paper's Table-3 trace). The log stores exactly that,
//! serialises with the model, and supports the queries reviews actually
//! run ("all denials for this object", "everything this subject was
//! granted while the open strategy was active").

use crate::model::AccessModel;
use crate::StoreError;
use serde::{Deserialize, Serialize};
use ucra_core::{Sign, Strategy};

/// One logged decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Monotonic sequence number within this log.
    pub seq: u64,
    /// The queried subject (by name).
    pub subject: String,
    /// The queried object (by name).
    pub object: String,
    /// The queried right (by name).
    pub right: String,
    /// The strategy in force.
    pub strategy: Strategy,
    /// The decision.
    pub sign: Sign,
    /// The Fig. 4 line that decided (6 = majority, 8 = locality,
    /// 9 = preference).
    pub line: u8,
}

/// An append-only decision log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Checks a triple against `model` under its configured strategy,
    /// logging the decision. The logged check is otherwise identical to
    /// [`AccessModel::check`].
    pub fn check(
        &mut self,
        model: &AccessModel,
        subject: &str,
        object: &str,
        right: &str,
    ) -> Result<Sign, StoreError> {
        let strategy = model.default_strategy().ok_or(StoreError::NoStrategy)?;
        self.check_with(model, subject, object, right, strategy)
    }

    /// Logged variant of [`AccessModel::check_with`].
    pub fn check_with(
        &mut self,
        model: &AccessModel,
        subject: &str,
        object: &str,
        right: &str,
        strategy: Strategy,
    ) -> Result<Sign, StoreError> {
        let res = model.check_traced(subject, object, right, strategy)?;
        self.entries.push(AuditEntry {
            seq: self.entries.len() as u64,
            subject: subject.to_string(),
            object: object.to_string(),
            right: right.to_string(),
            strategy,
            sign: res.sign,
            line: res.line.line_number(),
        });
        Ok(res.sign)
    }

    /// Number of logged decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// All denials, in order.
    pub fn denials(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter().filter(|e| e.sign == Sign::Neg)
    }

    /// Entries for one subject.
    pub fn for_subject<'a>(&'a self, subject: &'a str) -> impl Iterator<Item = &'a AuditEntry> {
        self.entries.iter().filter(move |e| e.subject == subject)
    }

    /// Entries decided by the Preference rule (Line 9) — the "tiebreaker
    /// decided" cases a policy review looks at first, since they are the
    /// queries where the configured policies expressed no opinion.
    pub fn preference_decided(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter().filter(|e| e.line == 9)
    }

    /// Serialises the log to JSON lines (one entry per line).
    pub fn to_jsonl(&self) -> String {
        self.entries
            .iter()
            .map(|e| serde_json::to_string(e).expect("entry serialises"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Restores a log from [`AuditLog::to_jsonl`] output.
    pub fn from_jsonl(input: &str) -> Result<Self, StoreError> {
        let mut entries = Vec::new();
        for (i, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry: AuditEntry = serde_json::from_str(line)
                .map_err(|e| StoreError::Malformed(format!("jsonl line {}: {e}", i + 1)))?;
            entries.push(entry);
        }
        Ok(AuditLog { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text;

    fn model() -> AccessModel {
        text::parse(
            "member staff alice\nmember interns alice\n\
             grant staff report read\ndeny interns report read\n\
             strategy LP-\n",
        )
        .unwrap()
    }

    #[test]
    fn logs_decisions_with_traces() {
        let m = model();
        let mut log = AuditLog::new();
        let sign = log.check(&m, "alice", "report", "read").unwrap();
        assert_eq!(sign, Sign::Neg); // conflict at distance 1, P- denies
        log.check_with(&m, "alice", "report", "read", "MP+".parse().unwrap())
            .unwrap();
        assert_eq!(log.len(), 2);
        let e = &log.entries()[0];
        assert_eq!((e.seq, e.line, e.sign), (0, 9, Sign::Neg));
        assert_eq!(log.entries()[1].seq, 1);
    }

    #[test]
    fn filters() {
        let m = model();
        let mut log = AuditLog::new();
        log.check(&m, "alice", "report", "read").unwrap(); // deny @9
        log.check_with(&m, "staff", "report", "read", "LP-".parse().unwrap())
            .unwrap(); // grant @8
        assert_eq!(log.denials().count(), 1);
        assert_eq!(log.for_subject("alice").count(), 1);
        assert_eq!(log.preference_decided().count(), 1);
        assert_eq!(log.preference_decided().next().unwrap().subject, "alice");
    }

    #[test]
    fn failed_checks_are_not_logged() {
        let m = model();
        let mut log = AuditLog::new();
        assert!(log.check(&m, "nobody", "report", "read").is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn jsonl_round_trip() {
        let m = model();
        let mut log = AuditLog::new();
        log.check(&m, "alice", "report", "read").unwrap();
        log.check_with(&m, "alice", "report", "read", "D+GP+".parse().unwrap())
            .unwrap();
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = AuditLog::from_jsonl(&text).unwrap();
        assert_eq!(back, log);
        assert!(AuditLog::from_jsonl("{broken").is_err());
        assert!(AuditLog::from_jsonl("").unwrap().is_empty());
    }
}
