//! A line-oriented **edit-script** format: the daemon's edit vocabulary
//! (subject / membership / authorization / revoke / strategy) as a
//! reviewable text artifact, for dry-run impact analysis.
//!
//! ```text
//! # Stage: give contractors read access, retire the old deny.
//! subject contractors          # declare (idempotent if present)
//! member  staff contractors
//! grant   contractors report read
//! revoke  bob report read
//! strategy D-LP-
//! ```
//!
//! Directives are the policy format's (`subject`, `member`, `grant`,
//! `deny`, `strategy`) plus `revoke <subject> <object> <right>`; `#`
//! comments and blank lines as usual. [`parse_edits`] keeps names and
//! line numbers; [`resolve_edits`] lowers them to a dense-id
//! [`ucra_core::EditScript`] against the caller's interners, following
//! the daemon's semantics: unknown subjects in `member`/`grant`/`deny`
//! are created implicitly (an [`EditOp::AddSubject`] is synthesised,
//! carrying the referencing line), `subject` on a known name is a no-op,
//! and `revoke` of an unknown name is an error — a revoke that cannot
//! name its target is a typo, not a no-op.

use crate::interner::Interner;
use crate::model::StoreError;
use ucra_core::{EditOp, EditScript, ObjectId, RightId, Sign, Strategy, SubjectId};

/// One parsed edit, still name-based, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedEdit {
    /// The directive.
    pub op: NamedEditOp,
    /// 1-based line in the script text.
    pub line: usize,
}

/// The name-based edit vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedEditOp {
    /// `subject <name>` — ensure a subject exists.
    Subject(String),
    /// `member <group> <member>`.
    Member {
        /// The group gaining a member.
        group: String,
        /// The new member.
        member: String,
    },
    /// `grant <subject> <object> <right>` / `deny …`.
    Authorize {
        /// The labeled subject.
        subject: String,
        /// The labeled object.
        object: String,
        /// The labeled right.
        right: String,
        /// `+` for grant, `-` for deny.
        sign: Sign,
    },
    /// `revoke <subject> <object> <right>`.
    Revoke {
        /// The target subject.
        subject: String,
        /// The target object.
        object: String,
        /// The target right.
        right: String,
    },
    /// `strategy <mnemonic>`.
    Strategy(Strategy),
}

impl NamedEditOp {
    /// The source-line rendering (for diagnostics spans).
    pub fn describe(&self) -> String {
        match self {
            NamedEditOp::Subject(name) => format!("subject {name}"),
            NamedEditOp::Member { group, member } => format!("member {group} {member}"),
            NamedEditOp::Authorize {
                subject,
                object,
                right,
                sign,
            } => format!(
                "{} {subject} {object} {right}",
                if *sign == Sign::Pos { "grant" } else { "deny" }
            ),
            NamedEditOp::Revoke {
                subject,
                object,
                right,
            } => format!("revoke {subject} {object} {right}"),
            NamedEditOp::Strategy(s) => format!("strategy {s}"),
        }
    }
}

/// Parses an edit-script text. Errors carry 1-based line numbers.
pub fn parse_edits(input: &str) -> Result<Vec<NamedEdit>, StoreError> {
    let mut edits = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line has a first word");
        let args: Vec<&str> = words.collect();
        let wrong_arity = |expected: usize| {
            StoreError::Malformed(format!(
                "line {}: `{directive}` takes {expected} argument(s), got {}",
                lineno + 1,
                args.len()
            ))
        };
        let op = match directive {
            "subject" => {
                if args.len() != 1 {
                    return Err(wrong_arity(1));
                }
                NamedEditOp::Subject(args[0].to_string())
            }
            "member" => {
                if args.len() != 2 {
                    return Err(wrong_arity(2));
                }
                NamedEditOp::Member {
                    group: args[0].to_string(),
                    member: args[1].to_string(),
                }
            }
            "grant" | "deny" => {
                if args.len() != 3 {
                    return Err(wrong_arity(3));
                }
                NamedEditOp::Authorize {
                    subject: args[0].to_string(),
                    object: args[1].to_string(),
                    right: args[2].to_string(),
                    sign: if directive == "grant" {
                        Sign::Pos
                    } else {
                        Sign::Neg
                    },
                }
            }
            "revoke" => {
                if args.len() != 3 {
                    return Err(wrong_arity(3));
                }
                NamedEditOp::Revoke {
                    subject: args[0].to_string(),
                    object: args[1].to_string(),
                    right: args[2].to_string(),
                }
            }
            "strategy" => {
                if args.len() != 1 {
                    return Err(wrong_arity(1));
                }
                let strategy = args[0]
                    .parse()
                    .map_err(|e| StoreError::Malformed(format!("line {}: {e}", lineno + 1)))?;
                NamedEditOp::Strategy(strategy)
            }
            other => {
                return Err(StoreError::Malformed(format!(
                    "line {}: unknown edit directive `{other}` \
                     (expected subject/member/grant/deny/revoke/strategy)",
                    lineno + 1
                )));
            }
        };
        edits.push(NamedEdit {
            op,
            line: lineno + 1,
        });
    }
    Ok(edits)
}

/// A lowered script: dense-id ops plus, per op, the 1-based source line
/// it came from (synthesised `AddSubject` ops carry the line of the
/// directive that first named the subject).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedScript {
    /// The dense-id script, ready for `ImpactAnalysis::analyze`.
    pub script: EditScript,
    /// `lines[i]` is the source line of `script.ops[i]`.
    pub lines: Vec<usize>,
}

/// Lowers named edits against the caller's interners (the base model's
/// name tables, or clones of the daemon's). New subject, object and
/// right names are interned **into the passed interners** — pass clones
/// when the originals must stay pristine. The interners must be
/// id-aligned with the base hierarchy/matrix (subject `i` in the
/// interner is `SubjectId::from_index(i)`), which holds for both
/// [`crate::AccessModel`] name tables and the daemon's.
pub fn resolve_edits(
    edits: &[NamedEdit],
    subjects: &mut Interner,
    objects: &mut Interner,
    rights: &mut Interner,
) -> Result<ResolvedScript, StoreError> {
    let mut ops = Vec::new();
    let mut lines = Vec::new();
    // Interner ids are dense, so a name is new exactly when interning
    // grows the table; every growth synthesises one `AddSubject`.
    let intern_subject = |subjects: &mut Interner,
                          name: &str,
                          line: usize,
                          ops: &mut Vec<EditOp>,
                          lines: &mut Vec<usize>| {
        let before = subjects.len();
        let id = subjects.intern(name);
        if subjects.len() > before {
            ops.push(EditOp::AddSubject);
            lines.push(line);
        }
        SubjectId::from_index(id as usize)
    };
    for edit in edits {
        match &edit.op {
            NamedEditOp::Subject(name) => {
                // Idempotent, like the daemon's `/edit/subject`.
                intern_subject(subjects, name, edit.line, &mut ops, &mut lines);
            }
            NamedEditOp::Member { group, member } => {
                let g = intern_subject(subjects, group, edit.line, &mut ops, &mut lines);
                let m = intern_subject(subjects, member, edit.line, &mut ops, &mut lines);
                ops.push(EditOp::AddMembership {
                    group: g,
                    member: m,
                });
                lines.push(edit.line);
            }
            NamedEditOp::Authorize {
                subject,
                object,
                right,
                sign,
            } => {
                let s = intern_subject(subjects, subject, edit.line, &mut ops, &mut lines);
                let o = ObjectId(objects.intern(object));
                let r = RightId(rights.intern(right));
                ops.push(EditOp::SetAuthorization {
                    subject: s,
                    object: o,
                    right: r,
                    sign: *sign,
                });
                lines.push(edit.line);
            }
            NamedEditOp::Revoke {
                subject,
                object,
                right,
            } => {
                let unknown = |kind: &str, name: &str| {
                    StoreError::Malformed(format!(
                        "line {}: revoke names unknown {kind} `{name}`",
                        edit.line
                    ))
                };
                let s = subjects
                    .get(subject)
                    .ok_or_else(|| unknown("subject", subject))?;
                let o = objects
                    .get(object)
                    .ok_or_else(|| unknown("object", object))?;
                let r = rights.get(right).ok_or_else(|| unknown("right", right))?;
                ops.push(EditOp::Revoke {
                    subject: SubjectId::from_index(s as usize),
                    object: ObjectId(o),
                    right: RightId(r),
                });
                lines.push(edit.line);
            }
            NamedEditOp::Strategy(strategy) => {
                ops.push(EditOp::SetStrategy {
                    strategy: *strategy,
                });
                lines.push(edit.line);
            }
        }
    }
    Ok(ResolvedScript {
        script: EditScript::new(ops),
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interners(
        subjects: &[&str],
        objects: &[&str],
        rights: &[&str],
    ) -> (Interner, Interner, Interner) {
        let mut s = Interner::new();
        let mut o = Interner::new();
        let mut r = Interner::new();
        for n in subjects {
            s.intern(n);
        }
        for n in objects {
            o.intern(n);
        }
        for n in rights {
            r.intern(n);
        }
        (s, o, r)
    }

    #[test]
    fn parses_and_lowers_every_directive() {
        let text = "
            # staged change
            subject contractors
            member staff contractors
            grant contractors report read
            revoke bob report read
            deny bob report write
            strategy D-LP-
        ";
        let edits = parse_edits(text).unwrap();
        assert_eq!(edits.len(), 6);
        let (mut s, mut o, mut r) = interners(&["staff", "bob"], &["report"], &["read"]);
        let resolved = resolve_edits(&edits, &mut s, &mut o, &mut r).unwrap();
        // `subject contractors` is new → AddSubject; the later mentions
        // reuse it. `write` is a new right, interned silently.
        assert_eq!(
            resolved.script.ops,
            vec![
                EditOp::AddSubject,
                EditOp::AddMembership {
                    group: SubjectId::from_index(0),
                    member: SubjectId::from_index(2),
                },
                EditOp::SetAuthorization {
                    subject: SubjectId::from_index(2),
                    object: ObjectId(0),
                    right: RightId(0),
                    sign: Sign::Pos,
                },
                EditOp::Revoke {
                    subject: SubjectId::from_index(1),
                    object: ObjectId(0),
                    right: RightId(0),
                },
                EditOp::SetAuthorization {
                    subject: SubjectId::from_index(1),
                    object: ObjectId(0),
                    right: RightId(1),
                    sign: Sign::Neg,
                },
                EditOp::SetStrategy {
                    strategy: "D-LP-".parse().unwrap(),
                },
            ]
        );
        assert_eq!(resolved.lines, vec![3, 4, 5, 6, 7, 8]);
        assert_eq!(s.resolve(2), Some("contractors"));
        assert_eq!(r.resolve(1), Some("write"));
    }

    #[test]
    fn implicit_subjects_synthesise_add_ops_on_the_naming_line() {
        let edits = parse_edits("member newgroup newmember").unwrap();
        let (mut s, mut o, mut r) = interners(&[], &[], &[]);
        let resolved = resolve_edits(&edits, &mut s, &mut o, &mut r).unwrap();
        assert_eq!(
            resolved.script.ops,
            vec![
                EditOp::AddSubject,
                EditOp::AddSubject,
                EditOp::AddMembership {
                    group: SubjectId::from_index(0),
                    member: SubjectId::from_index(1),
                },
            ]
        );
        assert_eq!(resolved.lines, vec![1, 1, 1]);
    }

    #[test]
    fn revoke_of_unknown_name_is_an_error() {
        let edits = parse_edits("revoke ghost report read").unwrap();
        let (mut s, mut o, mut r) = interners(&["staff"], &["report"], &["read"]);
        let err = resolve_edits(&edits, &mut s, &mut o, &mut r).unwrap_err();
        assert!(err.to_string().contains("unknown subject `ghost`"));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_edits("grant a b").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_edits("\nfrobnicate x").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("frobnicate"));
        let err = parse_edits("strategy NOPE").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
