//! String interning: names ↔ dense `u32` ids.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional name table. Ids are dense and assigned in first-seen
/// order, which makes them directly usable as `ObjectId`/`RightId`
/// payloads and as subject indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the id of `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        self.ensure_index();
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if already interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        if self.index.is_empty() && !self.names.is_empty() {
            // Deserialised without the index; fall back to a scan. Call
            // sites that mutate will rebuild the map via `intern`.
            return self.names.iter().position(|n| n == name).map(|i| i as u32);
        }
        self.index.get(name).copied()
    }

    /// The name behind `id`, if in range.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    fn ensure_index(&mut self) {
        if self.index.len() != self.names.len() {
            self.index = self
                .names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i as u32))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = Interner::new();
        let a = t.intern("alice");
        let b = t.intern("bob");
        assert_eq!(t.intern("alice"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(0), Some("alice"));
        assert_eq!(t.resolve(2), None);
        assert_eq!(t.get("bob"), Some(1));
        assert_eq!(t.get("carol"), None);
    }

    #[test]
    fn serde_round_trip_rebuilds_lookup() {
        let mut t = Interner::new();
        t.intern("x");
        t.intern("y");
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        // Read path works without mutation…
        assert_eq!(back.get("y"), Some(1));
        // …and mutation rebuilds the index consistently.
        assert_eq!(back.intern("y"), 1);
        assert_eq!(back.intern("z"), 2);
    }

    #[test]
    fn names_iterates_in_id_order() {
        let mut t = Interner::new();
        t.intern("b");
        t.intern("a");
        assert_eq!(t.names().collect::<Vec<_>>(), vec!["b", "a"]);
    }
}
