//! # `ucra-store` — named models, interning and persistence
//!
//! `ucra-core` works with dense ids. Real deployments (and the paper's
//! Livelink case study) work with *names*: group and user names, document
//! paths, right names. This crate supplies
//!
//! * [`Interner`] — a simple name ↔ dense-id table;
//! * [`AccessModel`] — a named façade over [`ucra_core::SubjectDag`] +
//!   [`ucra_core::Eacm`], with name-based mutation and queries and a
//!   default strategy slot (the paper's pitch is precisely that the
//!   strategy is a *configuration value*, not code);
//! * [`text`] — a line-oriented policy format for humans and tests;
//! * JSON persistence via `serde_json` ([`AccessModel::to_json`] /
//!   [`AccessModel::from_json`]).
//!
//! ```
//! use ucra_store::AccessModel;
//!
//! let mut model = AccessModel::new();
//! model.add_membership("staff", "alice").unwrap();
//! model.grant("staff", "report", "read").unwrap();
//! model.set_default_strategy("D-LP-".parse().unwrap());
//!
//! assert_eq!(
//!     model.check("alice", "report", "read").unwrap(),
//!     ucra_core::Sign::Pos
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod edits;
mod interner;
mod model;
pub mod text;

pub use audit::{AuditEntry, AuditLog};
pub use edits::{parse_edits, resolve_edits, NamedEdit, NamedEditOp, ResolvedScript};
pub use interner::Interner;
pub use model::{AccessModel, NamedConstraint, NamedViolation, StoreError};
