//! The named access-control model.

use crate::interner::Interner;
use serde::{Deserialize, Serialize};
use std::fmt;
use ucra_core::constraints::{check_sod, SodConstraint};
use ucra_core::{
    CoreError, Eacm, EffectiveMatrix, MemoResolver, ObjectId, Resolution, Resolver, RightId, Sign,
    Strategy, SubjectDag, SubjectId,
};

/// A separation-of-duty constraint over *named* privileges, as stored in
/// a model file: "of these ⟨object, right⟩ pairs, no subject may
/// effectively hold more than `at_most`".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedConstraint {
    /// The constraint's name, used in reports.
    pub name: String,
    /// The mutually exclusive privileges, as `(object, right)` names.
    pub privileges: Vec<(String, String)>,
    /// How many of them one subject may hold.
    pub at_most: usize,
}

/// A named violation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedViolation {
    /// The violated constraint.
    pub constraint: String,
    /// The offending subject's name.
    pub subject: String,
    /// The privileges the subject effectively holds, as names.
    pub held: Vec<(String, String)>,
    /// The constraint's bound.
    pub at_most: usize,
}

/// Errors from the named-model layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying core operation failed.
    Core(CoreError),
    /// A name was used in a query but never defined.
    UnknownName {
        /// Which namespace the lookup was in.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// No strategy was configured and none was supplied.
    NoStrategy,
    /// A persisted model failed to parse.
    Malformed(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "{e}"),
            StoreError::UnknownName { kind, name } => write!(f, "unknown {kind} `{name}`"),
            StoreError::NoStrategy => {
                write!(
                    f,
                    "no strategy configured; call set_default_strategy or pass one"
                )
            }
            StoreError::Malformed(msg) => write!(f, "malformed model: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

/// A complete access-control installation: subject hierarchy, explicit
/// matrix, name tables, and the configured conflict-resolution strategy.
///
/// This is the artifact an administrator edits and persists; the paper's
/// central claim — switch strategies without reinstalling the system — is
/// the [`AccessModel::set_default_strategy`] call.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessModel {
    subjects: Interner,
    objects: Interner,
    rights: Interner,
    hierarchy: SubjectDag,
    eacm: Eacm,
    default_strategy: Option<Strategy>,
    #[serde(default)]
    constraints: Vec<NamedConstraint>,
}

impl AccessModel {
    /// An empty model.
    pub fn new() -> Self {
        AccessModel::default()
    }

    /// Interns (creating if needed) a subject and returns its id.
    pub fn subject(&mut self, name: &str) -> SubjectId {
        let id = self.subjects.intern(name);
        while self.hierarchy.subject_count() <= id as usize {
            self.hierarchy.add_subject();
        }
        SubjectId::from_index(id as usize)
    }

    /// Interns an object name.
    pub fn object(&mut self, name: &str) -> ObjectId {
        ObjectId(self.objects.intern(name))
    }

    /// Interns a right name.
    pub fn right(&mut self, name: &str) -> RightId {
        RightId(self.rights.intern(name))
    }

    /// Looks a subject up without creating it.
    pub fn subject_id(&self, name: &str) -> Result<SubjectId, StoreError> {
        self.subjects
            .get(name)
            .map(|id| SubjectId::from_index(id as usize))
            .ok_or_else(|| StoreError::UnknownName {
                kind: "subject",
                name: name.into(),
            })
    }

    /// Looks an object up without creating it.
    pub fn object_id(&self, name: &str) -> Result<ObjectId, StoreError> {
        self.objects
            .get(name)
            .map(ObjectId)
            .ok_or_else(|| StoreError::UnknownName {
                kind: "object",
                name: name.into(),
            })
    }

    /// Looks a right up without creating it.
    pub fn right_id(&self, name: &str) -> Result<RightId, StoreError> {
        self.rights
            .get(name)
            .map(RightId)
            .ok_or_else(|| StoreError::UnknownName {
                kind: "right",
                name: name.into(),
            })
    }

    /// The name of a subject id.
    pub fn subject_name(&self, id: SubjectId) -> Option<&str> {
        self.subjects.resolve(id.index() as u32)
    }

    /// Declares that `member` belongs to `group` (both created if new).
    pub fn add_membership(&mut self, group: &str, member: &str) -> Result<(), StoreError> {
        let g = self.subject(group);
        let m = self.subject(member);
        self.hierarchy
            .add_membership(g, m)
            .map_err(StoreError::from)
    }

    /// Grants `right` on `object` to `subject` explicitly.
    pub fn grant(&mut self, subject: &str, object: &str, right: &str) -> Result<(), StoreError> {
        let (s, o, r) = (
            self.subject(subject),
            self.object(object),
            self.right(right),
        );
        self.eacm.grant(s, o, r).map_err(StoreError::from)
    }

    /// Denies `right` on `object` to `subject` explicitly.
    pub fn deny(&mut self, subject: &str, object: &str, right: &str) -> Result<(), StoreError> {
        let (s, o, r) = (
            self.subject(subject),
            self.object(object),
            self.right(right),
        );
        self.eacm.deny(s, o, r).map_err(StoreError::from)
    }

    /// Sets the installation's conflict-resolution strategy — the paper's
    /// "trigger a chosen strategy, among many, without needing to
    /// reinstall the whole system".
    pub fn set_default_strategy(&mut self, strategy: Strategy) {
        self.default_strategy = Some(strategy);
    }

    /// The configured strategy, if any.
    pub fn default_strategy(&self) -> Option<Strategy> {
        self.default_strategy
    }

    /// The effective authorization of a named triple under the configured
    /// strategy.
    pub fn check(&self, subject: &str, object: &str, right: &str) -> Result<Sign, StoreError> {
        let strategy = self.default_strategy.ok_or(StoreError::NoStrategy)?;
        self.check_with(subject, object, right, strategy)
    }

    /// The effective authorization under an explicit strategy.
    pub fn check_with(
        &self,
        subject: &str,
        object: &str,
        right: &str,
        strategy: Strategy,
    ) -> Result<Sign, StoreError> {
        Ok(self.check_traced(subject, object, right, strategy)?.sign)
    }

    /// Like [`AccessModel::check_with`], with the Table-3 trace.
    pub fn check_traced(
        &self,
        subject: &str,
        object: &str,
        right: &str,
        strategy: Strategy,
    ) -> Result<Resolution, StoreError> {
        let s = self.subject_id(subject)?;
        let o = self.object_id(object)?;
        let r = self.right_id(right)?;
        Resolver::new(&self.hierarchy, &self.eacm)
            .resolve_traced(s, o, r, strategy)
            .map_err(StoreError::from)
    }

    /// Declares a separation-of-duty constraint over named privileges
    /// (interning any new object/right names).
    pub fn add_mutex(
        &mut self,
        name: impl Into<String>,
        privileges: &[(&str, &str)],
        at_most: usize,
    ) {
        for &(o, r) in privileges {
            self.object(o);
            self.right(r);
        }
        self.constraints.push(NamedConstraint {
            name: name.into(),
            privileges: privileges
                .iter()
                .map(|&(o, r)| (o.to_string(), r.to_string()))
                .collect(),
            at_most,
        });
    }

    /// The declared constraints.
    pub fn constraints(&self) -> &[NamedConstraint] {
        &self.constraints
    }

    /// Checks every declared constraint against the effective matrix
    /// under `strategy`, returning named violation reports.
    pub fn check_constraints(&self, strategy: Strategy) -> Result<Vec<NamedViolation>, StoreError> {
        let mut reports = Vec::new();
        for c in &self.constraints {
            let pairs: Vec<(ObjectId, RightId)> = c
                .privileges
                .iter()
                .map(|(o, r)| Ok((self.object_id(o)?, self.right_id(r)?)))
                .collect::<Result<_, StoreError>>()?;
            let matrix =
                EffectiveMatrix::compute_for_pairs(&self.hierarchy, &self.eacm, strategy, &pairs)?;
            let constraint = SodConstraint {
                name: c.name.clone(),
                privileges: pairs.clone(),
                at_most: c.at_most,
            };
            for v in check_sod(&self.hierarchy, &matrix, std::slice::from_ref(&constraint)) {
                let held = v
                    .held
                    .iter()
                    .map(|&(o, r)| {
                        (
                            self.objects
                                .resolve(o.0)
                                .map_or_else(|| format!("object#{}", o.0), str::to_string),
                            self.rights
                                .resolve(r.0)
                                .map_or_else(|| format!("right#{}", r.0), str::to_string),
                        )
                    })
                    .collect();
                reports.push(NamedViolation {
                    constraint: v.constraint,
                    subject: self
                        .subject_name(v.subject)
                        .map_or_else(|| format!("subject#{}", v.subject.index()), str::to_string),
                    held,
                    at_most: v.at_most,
                });
            }
        }
        Ok(reports)
    }

    /// A memoising resolver borrowing this model (for query batches).
    pub fn memo_resolver(&self) -> MemoResolver<'_> {
        MemoResolver::new(&self.hierarchy, &self.eacm)
    }

    /// A human-readable explanation of a decision, with subject names
    /// substituted (see the `ucra_core::explain` module).
    pub fn explain(
        &self,
        subject: &str,
        object: &str,
        right: &str,
        strategy: Strategy,
    ) -> Result<String, StoreError> {
        let s = self.subject_id(subject)?;
        let o = self.object_id(object)?;
        let r = self.right_id(right)?;
        let explanation = ucra_core::explain(&self.hierarchy, &self.eacm, s, o, r, strategy)?;
        Ok(explanation.narrative(|id| {
            self.subject_name(id)
                .map(str::to_string)
                .unwrap_or_else(|| id.to_string())
        }))
    }

    /// The hierarchy rendered as Graphviz DOT, labeling each subject with
    /// its name and any explicit signs for the given object/right.
    pub fn to_dot(&self, object: &str, right: &str) -> Result<String, StoreError> {
        let o = self.object_id(object)?;
        let r = self.right_id(right)?;
        Ok(ucra_graph::dot::to_dot(self.hierarchy.graph(), |id| {
            let name = self
                .subject_name(id)
                .map_or_else(|| format!("subject#{}", id.index()), str::to_string);
            match self.eacm.label(id, o, r) {
                Some(sign) => format!("{name} [{sign}]"),
                None => name,
            }
        }))
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &SubjectDag {
        &self.hierarchy
    }

    /// The underlying explicit matrix.
    pub fn eacm(&self) -> &Eacm {
        &self.eacm
    }

    /// Number of named subjects.
    pub fn subject_count(&self) -> usize {
        self.subjects.len()
    }

    /// All subject names in id order.
    pub fn subject_names(&self) -> impl Iterator<Item = &str> {
        self.subjects.names()
    }

    /// All object names in id order.
    pub fn object_names(&self) -> impl Iterator<Item = &str> {
        self.objects.names()
    }

    /// All right names in id order.
    pub fn right_names(&self) -> impl Iterator<Item = &str> {
        self.rights.names()
    }

    /// Serialises the model to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model serialisation cannot fail")
    }

    /// Restores a model from [`AccessModel::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, StoreError> {
        serde_json::from_str(json).map_err(|e| StoreError::Malformed(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn motivating_model() -> AccessModel {
        let mut m = AccessModel::new();
        for (g, c) in [
            ("S1", "S3"),
            ("S2", "S3"),
            ("S2", "User"),
            ("S3", "S5"),
            ("S5", "User"),
            ("S6", "S5"),
            ("S6", "User"),
        ] {
            m.add_membership(g, c).unwrap();
        }
        m.grant("S2", "obj", "read").unwrap();
        m.deny("S5", "obj", "read").unwrap();
        m
    }

    #[test]
    fn named_resolution_matches_paper_table_2() {
        let m = motivating_model();
        assert_eq!(
            m.check_with("User", "obj", "read", "D+LMP+".parse().unwrap())
                .unwrap(),
            Sign::Pos
        );
        assert_eq!(
            m.check_with("User", "obj", "read", "D-LP-".parse().unwrap())
                .unwrap(),
            Sign::Neg
        );
    }

    #[test]
    fn default_strategy_is_required_for_check() {
        let mut m = motivating_model();
        assert_eq!(
            m.check("User", "obj", "read").unwrap_err(),
            StoreError::NoStrategy
        );
        m.set_default_strategy("P+".parse().unwrap());
        assert_eq!(m.check("User", "obj", "read").unwrap(), Sign::Pos);
    }

    #[test]
    fn switching_strategy_requires_no_rebuild() {
        let mut m = motivating_model();
        m.set_default_strategy("D+LMP+".parse().unwrap());
        assert_eq!(m.check("User", "obj", "read").unwrap(), Sign::Pos);
        m.set_default_strategy("D-LP-".parse().unwrap());
        assert_eq!(m.check("User", "obj", "read").unwrap(), Sign::Neg);
    }

    #[test]
    fn unknown_names_error_without_creating() {
        let m = motivating_model();
        let before = m.subject_count();
        assert!(matches!(
            m.check_with("nobody", "obj", "read", "P+".parse().unwrap()),
            Err(StoreError::UnknownName {
                kind: "subject",
                ..
            })
        ));
        assert!(matches!(
            m.check_with("User", "ghost", "read", "P+".parse().unwrap()),
            Err(StoreError::UnknownName { kind: "object", .. })
        ));
        assert!(matches!(
            m.check_with("User", "obj", "ghost", "P+".parse().unwrap()),
            Err(StoreError::UnknownName { kind: "right", .. })
        ));
        assert_eq!(m.subject_count(), before);
    }

    #[test]
    fn contradiction_surfaces_from_core() {
        let mut m = motivating_model();
        assert!(matches!(
            m.deny("S2", "obj", "read"),
            Err(StoreError::Core(
                CoreError::ContradictoryAuthorization { .. }
            ))
        ));
    }

    #[test]
    fn json_round_trip_preserves_resolutions() {
        let mut m = motivating_model();
        m.set_default_strategy("D-GMP-".parse().unwrap());
        let json = m.to_json();
        let back = AccessModel::from_json(&json).unwrap();
        assert_eq!(back.default_strategy(), m.default_strategy());
        for strategy in ucra_core::Strategy::all_instances() {
            assert_eq!(
                back.check_with("User", "obj", "read", strategy).unwrap(),
                m.check_with("User", "obj", "read", strategy).unwrap(),
                "strategy {strategy}"
            );
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            AccessModel::from_json("{not json"),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn memo_resolver_over_model() {
        let mut m = motivating_model();
        m.set_default_strategy("D-LP-".parse().unwrap());
        let memo = m.memo_resolver();
        let s = m.subject_id("User").unwrap();
        let o = m.object_id("obj").unwrap();
        let r = m.right_id("read").unwrap();
        assert_eq!(
            memo.resolve(s, o, r, "D-LP-".parse().unwrap()).unwrap(),
            Sign::Neg
        );
    }
}
