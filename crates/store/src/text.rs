//! A line-oriented, human-editable policy format.
//!
//! ```text
//! # The paper's motivating example.
//! member S1 S3          # group S1 has member S3
//! member S2 S3
//! member S2 User
//! member S3 S5
//! member S5 User
//! member S6 S5
//! member S6 User
//! subject S4            # declares a subject without membership
//! grant S2 obj read
//! deny  S5 obj read
//! strategy D+LMP-
//! ```
//!
//! Directives: `subject <name>`, `member <group> <member>`,
//! `grant <subject> <object> <right>`, `deny <subject> <object> <right>`,
//! `strategy <mnemonic>`. `#` starts a comment; blank lines are ignored.

use crate::model::{AccessModel, StoreError};
use std::fmt::Write as _;

/// Parses a policy text into a model.
pub fn parse(input: &str) -> Result<AccessModel, StoreError> {
    let mut model = AccessModel::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line has a first word");
        let args: Vec<&str> = words.collect();
        let wrong_arity = |expected: usize| {
            StoreError::Malformed(format!(
                "line {}: `{directive}` takes {expected} argument(s), got {}",
                lineno + 1,
                args.len()
            ))
        };
        match directive {
            "subject" => {
                if args.len() != 1 {
                    return Err(wrong_arity(1));
                }
                model.subject(args[0]);
            }
            "member" => {
                if args.len() != 2 {
                    return Err(wrong_arity(2));
                }
                model.add_membership(args[0], args[1])?;
            }
            "grant" | "deny" => {
                if args.len() != 3 {
                    return Err(wrong_arity(3));
                }
                if directive == "grant" {
                    model.grant(args[0], args[1], args[2])?;
                } else {
                    model.deny(args[0], args[1], args[2])?;
                }
            }
            "strategy" => {
                if args.len() != 1 {
                    return Err(wrong_arity(1));
                }
                let strategy = args[0]
                    .parse()
                    .map_err(|e| StoreError::Malformed(format!("line {}: {e}", lineno + 1)))?;
                model.set_default_strategy(strategy);
            }
            // mutex <name> <at_most> <object>/<right> <object>/<right> …
            "mutex" => {
                if args.len() < 4 {
                    return Err(StoreError::Malformed(format!(
                        "line {}: `mutex` takes a name, a bound and at least two \
                         object/right privileges",
                        lineno + 1
                    )));
                }
                let at_most: usize = args[1].parse().map_err(|_| {
                    StoreError::Malformed(format!(
                        "line {}: `{}` is not a valid bound",
                        lineno + 1,
                        args[1]
                    ))
                })?;
                let privileges: Vec<(&str, &str)> = args[2..]
                    .iter()
                    .map(|p| {
                        p.split_once('/').ok_or_else(|| {
                            StoreError::Malformed(format!(
                                "line {}: privilege `{p}` must be object/right",
                                lineno + 1
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                model.add_mutex(args[0], &privileges, at_most);
            }
            other => {
                return Err(StoreError::Malformed(format!(
                    "line {}: unknown directive `{other}`",
                    lineno + 1
                )));
            }
        }
    }
    Ok(model)
}

/// Renders a model back to the policy format.
///
/// Lines are sorted **by name** within each section (memberships, then
/// isolated subjects, then authorizations, then constraints, then the
/// strategy): internal ids depend on interning order, which changes when
/// the output is re-parsed, so name order is the only choice that makes
/// `render` a one-round fixed point — a property the format fuzz tests
/// pin down.
pub fn render(model: &AccessModel) -> String {
    let mut out = String::new();
    let h = model.hierarchy();
    // Unnamed ids render as stable `subject#<n>` handles rather than an
    // ambiguous `?` (which would also collide across subjects on
    // re-parse).
    let name = |s: ucra_core::SubjectId| {
        model
            .subject_name(s)
            .map_or_else(|| format!("subject#{}", s.index()), str::to_string)
    };
    let mut memberships: Vec<(String, String)> = h
        .subjects()
        .flat_map(|g| h.members_of(g).iter().map(move |&m| (name(g), name(m))))
        .collect();
    memberships.sort();
    for (g, m) in memberships {
        let _ = writeln!(out, "member {g} {m}");
    }
    let mut isolated: Vec<String> = h
        .subjects()
        .filter(|&s| h.members_of(s).is_empty() && h.groups_of(s).is_empty())
        .map(name)
        .collect();
    isolated.sort_unstable();
    for s in isolated {
        let _ = writeln!(out, "subject {s}");
    }
    let mut auths: Vec<(String, String, String, ucra_core::Sign)> = model
        .eacm()
        .iter()
        .map(|(s, o, r, sign)| (name(s), object_name(model, o), right_name(model, r), sign))
        .collect();
    auths.sort();
    for (s, o, r, sign) in auths {
        let verb = match sign {
            ucra_core::Sign::Pos => "grant",
            ucra_core::Sign::Neg => "deny",
        };
        let _ = writeln!(out, "{verb} {s} {o} {r}");
    }
    for c in model.constraints() {
        let privileges: Vec<String> = c
            .privileges
            .iter()
            .map(|(o, r)| format!("{o}/{r}"))
            .collect();
        let _ = writeln!(
            out,
            "mutex {} {} {}",
            c.name,
            c.at_most,
            privileges.join(" ")
        );
    }
    if let Some(strategy) = model.default_strategy() {
        let _ = writeln!(out, "strategy {strategy}");
    }
    out
}

fn object_name(model: &AccessModel, o: ucra_core::ObjectId) -> String {
    // Objects/rights have no direct reverse lookup on AccessModel; go via
    // the known id space.
    model
        .object_names()
        .nth(o.0 as usize)
        .map_or_else(|| format!("object#{}", o.0), str::to_string)
}

fn right_name(model: &AccessModel, r: ucra_core::RightId) -> String {
    model
        .right_names()
        .nth(r.0 as usize)
        .map_or_else(|| format!("right#{}", r.0), str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucra_core::Sign;

    const MOTIVATING: &str = r"
# The paper's motivating example.
member S1 S3
member S2 S3
member S2 User
member S3 S5
member S5 User
member S6 S5
member S6 User
grant S2 obj read
deny  S5 obj read   # most specific denial
strategy D+LMP+
";

    #[test]
    fn parses_the_motivating_example() {
        let model = parse(MOTIVATING).unwrap();
        assert_eq!(model.subject_count(), 6); // S1, S2, S3, S5, S6, User
        assert_eq!(model.eacm().len(), 2);
        assert_eq!(model.check("User", "obj", "read").unwrap(), Sign::Pos);
    }

    #[test]
    fn round_trips_through_render() {
        let model = parse(MOTIVATING).unwrap();
        let text = render(&model);
        let back = parse(&text).unwrap();
        assert_eq!(back.subject_count(), model.subject_count());
        assert_eq!(back.eacm().len(), model.eacm().len());
        assert_eq!(back.default_strategy(), model.default_strategy());
        assert_eq!(
            back.check("User", "obj", "read").unwrap(),
            model.check("User", "obj", "read").unwrap()
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let model = parse("# nothing\n\n   # still nothing\nsubject lonely\n").unwrap();
        assert_eq!(model.subject_count(), 1);
    }

    #[test]
    fn isolated_subjects_survive_round_trip() {
        let model = parse("subject hermit\n").unwrap();
        let text = render(&model);
        assert!(text.contains("subject hermit"));
        let back = parse(&text).unwrap();
        assert_eq!(back.subject_count(), 1);
    }

    #[test]
    fn reports_unknown_directive_with_line_number() {
        let err = parse("member a b\nfrobnicate x\n").unwrap_err();
        match err {
            StoreError::Malformed(msg) => {
                assert!(msg.contains("line 2"), "{msg}");
                assert!(msg.contains("frobnicate"), "{msg}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_wrong_arity() {
        let err = parse("grant a b\n").unwrap_err();
        assert!(matches!(err, StoreError::Malformed(msg) if msg.contains("3 argument")));
    }

    #[test]
    fn reports_bad_strategy() {
        let err = parse("strategy XYZ\n").unwrap_err();
        assert!(matches!(err, StoreError::Malformed(msg) if msg.contains("line 1")));
    }

    #[test]
    fn mutex_directive_parses_checks_and_round_trips() {
        let text = "\
member clerks alice
member approvers alice
grant clerks pay issue
grant approvers pay approve
mutex pay-sod 1 pay/issue pay/approve
strategy LP-
";
        let model = parse(text).unwrap();
        assert_eq!(model.constraints().len(), 1);
        let violations = model.check_constraints("LP-".parse().unwrap()).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].subject, "alice");
        assert_eq!(violations[0].constraint, "pay-sod");
        assert_eq!(violations[0].held.len(), 2);
        // Round trip keeps the constraint.
        let rendered = render(&model);
        assert!(rendered.contains("mutex pay-sod 1 pay/issue pay/approve"));
        let back = parse(&rendered).unwrap();
        assert_eq!(back.constraints(), model.constraints());
    }

    #[test]
    fn malformed_mutex_is_rejected() {
        for bad in [
            "mutex only-name\n",
            "mutex name x pay/issue pay/approve\n",
            "mutex name 1 payissue pay/approve\n",
        ] {
            assert!(
                matches!(parse(bad), Err(StoreError::Malformed(_))),
                "`{bad}` should be malformed"
            );
        }
    }

    #[test]
    fn cyclic_membership_surfaces_core_error() {
        let err = parse("member a b\nmember b a\n").unwrap_err();
        assert!(matches!(err, StoreError::Core(_)));
    }
}
