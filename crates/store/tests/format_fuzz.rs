//! Robustness of the policy text format: arbitrary input never panics,
//! and well-formed random models survive render → parse → render fixed
//! points.

use proptest::prelude::*;
use ucra_store::{text, AccessModel};

/// Random well-formed policy programs built from generated names.
fn name_strategy() -> impl proptest::strategy::Strategy<Value = String> {
    "[a-z]{1,6}".prop_map(|s| s)
}

#[derive(Debug, Clone)]
enum Directive {
    Subject(String),
    Member(String, String),
    Grant(String, String, String),
    Deny(String, String, String),
    Mutex(String, Vec<(String, String)>),
    Strategy(usize),
}

fn directive() -> impl proptest::strategy::Strategy<Value = Directive> {
    prop_oneof![
        name_strategy().prop_map(Directive::Subject),
        (name_strategy(), name_strategy()).prop_map(|(a, b)| Directive::Member(a, b)),
        (name_strategy(), name_strategy(), name_strategy())
            .prop_map(|(s, o, r)| Directive::Grant(s, o, r)),
        (name_strategy(), name_strategy(), name_strategy())
            .prop_map(|(s, o, r)| Directive::Deny(s, o, r)),
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), name_strategy()), 2..4)
        )
            .prop_map(|(n, ps)| Directive::Mutex(n, ps)),
        (0usize..48).prop_map(Directive::Strategy),
    ]
}

fn render_program(directives: &[Directive]) -> String {
    use std::fmt::Write as _;
    let strategies = ucra_core::Strategy::all_instances();
    let mut out = String::new();
    for d in directives {
        match d {
            Directive::Subject(s) => {
                let _ = writeln!(out, "subject {s}");
            }
            Directive::Member(g, m) => {
                let _ = writeln!(out, "member {g} {m}");
            }
            Directive::Grant(s, o, r) => {
                let _ = writeln!(out, "grant {s} {o} {r}");
            }
            Directive::Deny(s, o, r) => {
                let _ = writeln!(out, "deny {s} {o} {r}");
            }
            Directive::Mutex(n, ps) => {
                let privileges: Vec<String> = ps.iter().map(|(o, r)| format!("{o}/{r}")).collect();
                let _ = writeln!(out, "mutex {n} 1 {}", privileges.join(" "));
            }
            Directive::Strategy(ix) => {
                let _ = writeln!(out, "strategy {}", strategies[*ix]);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary text never panics the parser (errors are fine).
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = text::parse(&input);
    }

    /// Arbitrary *line-shaped* text with plausible directive words never
    /// panics either.
    #[test]
    fn directive_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("member".to_string()),
                Just("grant".to_string()),
                Just("deny".to_string()),
                Just("mutex".to_string()),
                Just("strategy".to_string()),
                Just("subject".to_string()),
                Just("#".to_string()),
                "[a-zA-Z0-9/+-]{0,8}".prop_map(|s| s),
            ],
            0..60,
        ),
        breaks in proptest::collection::vec(any::<bool>(), 0..60),
    ) {
        let mut input = String::new();
        for (w, b) in words.iter().zip(breaks.iter().chain(std::iter::repeat(&false))) {
            input.push_str(w);
            input.push(if *b { '\n' } else { ' ' });
        }
        let _ = text::parse(&input);
    }

    /// Well-formed programs that parse successfully reach a render/parse
    /// fixed point, preserving every decision.
    #[test]
    fn render_parse_fixed_point(directives in proptest::collection::vec(directive(), 0..20)) {
        let program = render_program(&directives);
        // Random memberships may cycle or authorizations contradict; only
        // successful parses are subject to the fixed-point law.
        let Ok(model) = text::parse(&program) else { return Ok(()); };
        let once = text::render(&model);
        let reparsed = text::parse(&once).expect("render output must parse");
        let twice = text::render(&reparsed);
        prop_assert_eq!(&once, &twice, "render is a fixed point after one round");
        // Decisions agree between the two models for a sample strategy.
        let strategy: ucra_core::Strategy = "D-LP-".parse().unwrap();
        let names: Vec<String> = model.subject_names().map(str::to_string).collect();
        let objects: Vec<String> = model.object_names().map(str::to_string).collect();
        let rights: Vec<String> = model.right_names().map(str::to_string).collect();
        for s in names.iter().take(4) {
            for o in objects.iter().take(2) {
                for r in rights.iter().take(2) {
                    prop_assert_eq!(
                        model.check_with(s, o, r, strategy).ok(),
                        reparsed.check_with(s, o, r, strategy).ok()
                    );
                }
            }
        }
        // Constraint checks agree too.
        prop_assert_eq!(
            model.check_constraints(strategy).ok().map(|v| v.len()),
            reparsed.check_constraints(strategy).ok().map(|v| v.len())
        );
    }
}

/// AccessModel JSON round-trips arbitrary (valid) models including
/// constraints and strategy.
#[test]
fn json_round_trip_with_constraints() {
    let mut m = AccessModel::new();
    m.add_membership("g", "u").unwrap();
    m.grant("g", "o", "read").unwrap();
    m.add_mutex("pair", &[("o", "read"), ("o", "write")], 1);
    m.set_default_strategy("GMP+".parse().unwrap());
    let back = AccessModel::from_json(&m.to_json()).unwrap();
    assert_eq!(back.constraints(), m.constraints());
    assert_eq!(back.default_strategy(), m.default_strategy());
    assert_eq!(
        back.check("u", "o", "read").unwrap(),
        m.check("u", "o", "read").unwrap()
    );
}
