//! What a lint rule sees: the loaded policy plus optional name tables and
//! source positions.

use crate::diagnostics::{RuleSweepStats, Span, SpanItem};
use crate::source_map::SourceMap;
use std::cell::RefCell;
use ucra_core::{Eacm, ObjectId, RightId, Strategy, SubjectDag, SubjectId};
use ucra_store::AccessModel;

/// The input to every [`crate::LintRule`]: hierarchy, explicit matrix and
/// configured strategy, with optional name tables (from an
/// [`AccessModel`]) and source positions (from a [`SourceMap`]).
///
/// Rules run equally over named models loaded from files and over raw
/// [`ucra_core::AccessSession`] parts; names and lines degrade gracefully
/// to id-based placeholders.
pub struct LintContext<'a> {
    hierarchy: &'a SubjectDag,
    eacm: &'a Eacm,
    strategy: Option<Strategy>,
    model: Option<&'a AccessModel>,
    source: Option<&'a SourceMap>,
    sweeps: RefCell<Vec<RuleSweepStats>>,
}

impl<'a> LintContext<'a> {
    /// Context over a named model.
    pub fn from_model(model: &'a AccessModel, source: Option<&'a SourceMap>) -> LintContext<'a> {
        LintContext {
            hierarchy: model.hierarchy(),
            eacm: model.eacm(),
            strategy: model.default_strategy(),
            model: Some(model),
            source,
            sweeps: RefCell::new(Vec::new()),
        }
    }

    /// Context over raw core parts (no names, no source positions).
    pub fn from_parts(
        hierarchy: &'a SubjectDag,
        eacm: &'a Eacm,
        strategy: Option<Strategy>,
    ) -> LintContext<'a> {
        LintContext {
            hierarchy,
            eacm,
            strategy,
            model: None,
            source: None,
            sweeps: RefCell::new(Vec::new()),
        }
    }

    /// Records one rule's sweep-kernel statistics (its pruned-probe
    /// active-set sizes), surfaced by the report's JSON renderer.
    pub fn record_sweep_stats(&self, stats: RuleSweepStats) {
        self.sweeps.borrow_mut().push(stats);
    }

    /// Drains the recorded sweep statistics (called once per lint run,
    /// after every rule has checked).
    pub fn take_sweep_stats(&self) -> Vec<RuleSweepStats> {
        std::mem::take(&mut self.sweeps.borrow_mut())
    }

    /// The subject hierarchy.
    pub fn hierarchy(&self) -> &'a SubjectDag {
        self.hierarchy
    }

    /// The explicit matrix.
    pub fn eacm(&self) -> &'a Eacm {
        self.eacm
    }

    /// The configured strategy, if any, exactly as stored (possibly
    /// non-canonical when deserialised).
    pub fn strategy(&self) -> Option<Strategy> {
        self.strategy
    }

    /// The configured strategy in canonical form — safe to display and
    /// to match against [`Strategy::all_instances`].
    pub fn canonical_strategy(&self) -> Option<Strategy> {
        self.strategy.map(|s| s.canonicalized())
    }

    /// The subject's name, or `s<index>` without name tables.
    pub fn subject_name(&self, id: SubjectId) -> String {
        self.model
            .and_then(|m| m.subject_name(id))
            .map_or_else(|| format!("s{}", id.index()), str::to_string)
    }

    /// The object's name, or its id rendering (`o<n>`).
    pub fn object_name(&self, id: ObjectId) -> String {
        self.model
            .and_then(|m| m.object_names().nth(id.0 as usize))
            .map_or_else(|| id.to_string(), str::to_string)
    }

    /// The right's name, or its id rendering (`r<n>`).
    pub fn right_name(&self, id: RightId) -> String {
        self.model
            .and_then(|m| m.right_names().nth(id.0 as usize))
            .map_or_else(|| id.to_string(), str::to_string)
    }

    /// A subject span, with its source line when known.
    pub fn subject_span(&self, id: SubjectId) -> Span {
        let name = self.subject_name(id);
        let line = self.source.and_then(|s| s.subject_line(&name));
        Span {
            item: SpanItem::Subject(name),
            line,
        }
    }

    /// A label span, with its `grant`/`deny` line when known.
    pub fn label_span(&self, subject: SubjectId, object: ObjectId, right: RightId) -> Span {
        let s = self.subject_name(subject);
        let o = self.object_name(object);
        let r = self.right_name(right);
        let line = self.source.and_then(|m| m.label_line(&s, &o, &r));
        Span {
            item: SpanItem::Label {
                subject: s,
                object: o,
                right: r,
            },
            line,
        }
    }

    /// A pair span (no line: pairs are not single directives).
    pub fn pair_span(&self, object: ObjectId, right: RightId) -> Span {
        Span::item(SpanItem::Pair {
            object: self.object_name(object),
            right: self.right_name(right),
        })
    }

    /// A strategy span, pointing at the `strategy` directive when known.
    pub fn strategy_span(&self, spelling: String) -> Span {
        Span {
            item: SpanItem::Strategy(spelling),
            line: self.source.and_then(SourceMap::strategy_line),
        }
    }
}
