//! The rule registry.
//!
//! Every rule is one module implementing [`LintRule`]; [`registry`]
//! enumerates them in code order. Codes are stable: they never change
//! meaning, and retired codes are not reused. `UCRA000` (parse failure)
//! and `UCRA001` (illegitimate strategy mnemonic) are emitted by the
//! text front end in [`crate::lint_policy_text`] — they concern policies
//! that cannot be loaded into a model at all, so no model-level rule can
//! observe them — but are listed in [`codes`] alongside the rest.

use crate::context::LintContext;
use crate::diagnostics::{Diagnostic, Severity};
use ucra_core::CoreError;

mod dead;
mod redundancy;
mod shadowing;
mod strategy;
mod structure;

/// Identity card of a rule (or text-phase check): stable code, name,
/// default severity, a one-line summary, and the full documentation
/// shown by `ucra lint --explain <code>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable diagnostic code, e.g. `UCRA020`.
    pub code: &'static str,
    /// Kebab-case rule name, e.g. `redundant-label`.
    pub name: &'static str,
    /// Severity of this rule's findings.
    pub severity: Severity,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// The full explanation: what the rule detects, why it matters, and
    /// what to do about it.
    pub doc: &'static str,
}

/// A static analysis over one loaded policy.
pub trait LintRule {
    /// The rule's identity card.
    fn info(&self) -> RuleInfo;

    /// Runs the rule. A `CoreError` here means the analysis itself could
    /// not run (e.g. propagation overflow), not that the policy is clean;
    /// the driver surfaces it as an error diagnostic.
    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError>;
}

/// Text-phase check: the policy text failed to parse.
pub const PARSE_ERROR: RuleInfo = RuleInfo {
    code: "UCRA000",
    name: "parse-error",
    severity: Severity::Error,
    summary: "the policy text cannot be parsed",
    doc: "The policy text is not valid in the line-oriented format, so no \
          model could be built and no other rule could run. The message \
          carries the offending line and directive; the accepted directives \
          are `subject`, `member`, `grant`, `deny`, `strategy` and `mutex`, \
          with `#` starting a comment.",
};

/// Text-phase check: a `strategy` directive names none of the 48
/// legitimate instances.
pub const UNKNOWN_STRATEGY: RuleInfo = RuleInfo {
    code: "UCRA001",
    name: "unknown-strategy",
    severity: Severity::Error,
    summary: "the strategy mnemonic is not one of the 48 legitimate instances",
    doc: "A `strategy` directive names a mnemonic that is not one of the 48 \
          legitimate instances the paper derives in §2.2 (54 raw parameter \
          combinations minus the 6 that are unsatisfiable or equivalent). \
          The directive is ignored so the structural rules still run, and \
          the diagnostic suggests the nearest legitimate mnemonic by edit \
          distance.",
};

/// Text/instance-phase check: the strategy is legitimate but not written
/// (or not represented) in canonical form.
pub const NON_CANONICAL_STRATEGY: RuleInfo = RuleInfo {
    code: "UCRA002",
    name: "non-canonical-strategy",
    severity: Severity::Warning,
    summary: "the strategy is legitimate but not in canonical form",
    doc: "The strategy is one of the 48 legitimate instances but is not \
          written (or represented) in canonical form — e.g. Unicode \
          superscript signs in the text, or raw parameter combinations \
          that canonicalise to a different spelling. Two spellings of the \
          same instance resolve identically, so non-canonical forms are \
          pure reading hazards; write the canonical mnemonic the \
          diagnostic suggests.",
};

/// All model-level rules, in code order.
pub fn registry() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(strategy::NonCanonicalInstance),
        Box::new(strategy::NoStrategy),
        Box::new(structure::OrphanSubject),
        Box::new(structure::InertGroup),
        Box::new(structure::FragmentedHierarchy),
        Box::new(redundancy::RedundantLabel),
        Box::new(dead::DeadConflict),
        Box::new(shadowing::DefaultShadowing),
    ]
}

/// Every diagnostic code this crate can emit, with its identity card —
/// the text-phase checks, the registry rules, and the `UCRA1xx`
/// impact-analysis family. (`UCRA002` is shared: the text phase flags
/// non-canonical *spellings*, the registry rule non-canonical
/// *instances*; both are the same finding.)
pub fn codes() -> Vec<RuleInfo> {
    let mut out = vec![PARSE_ERROR, UNKNOWN_STRATEGY];
    for rule in registry() {
        out.push(rule.info());
    }
    out.extend_from_slice(crate::impact::IMPACT_RULES);
    out.sort_by_key(|info| info.code);
    out.dedup_by_key(|info| info.code);
    out
}

/// Looks up a rule's identity card by code (`UCRA020`) or kebab-case
/// name (`redundant-label`); backs `ucra lint --explain`.
pub fn explain(code_or_name: &str) -> Option<RuleInfo> {
    codes()
        .into_iter()
        .find(|info| info.code.eq_ignore_ascii_case(code_or_name) || info.name == code_or_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let codes = codes();
        for pair in codes.windows(2) {
            assert!(pair[0].code < pair[1].code, "duplicate or unsorted codes");
        }
        for info in &codes {
            assert!(info.code.starts_with("UCRA"), "{}", info.code);
            assert_eq!(info.code.len(), 7, "{}", info.code);
            assert!(!info.name.is_empty() && !info.summary.is_empty());
            assert!(!info.doc.is_empty(), "{} has no --explain doc", info.code);
        }
    }

    #[test]
    fn explain_resolves_codes_and_names() {
        assert_eq!(explain("UCRA020").unwrap().name, "redundant-label");
        assert_eq!(explain("ucra020").unwrap().name, "redundant-label");
        assert_eq!(explain("redundant-label").unwrap().code, "UCRA020");
        assert_eq!(explain("UCRA102").unwrap().name, "privilege-escalation");
        assert!(explain("UCRA999").is_none());
    }
}
