//! The rule registry.
//!
//! Every rule is one module implementing [`LintRule`]; [`registry`]
//! enumerates them in code order. Codes are stable: they never change
//! meaning, and retired codes are not reused. `UCRA000` (parse failure)
//! and `UCRA001` (illegitimate strategy mnemonic) are emitted by the
//! text front end in [`crate::lint_policy_text`] — they concern policies
//! that cannot be loaded into a model at all, so no model-level rule can
//! observe them — but are listed in [`codes`] alongside the rest.

use crate::context::LintContext;
use crate::diagnostics::{Diagnostic, Severity};
use ucra_core::CoreError;

mod dead;
mod redundancy;
mod shadowing;
mod strategy;
mod structure;

/// Identity card of a rule (or text-phase check): stable code, name,
/// default severity and a one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable diagnostic code, e.g. `UCRA020`.
    pub code: &'static str,
    /// Kebab-case rule name, e.g. `redundant-label`.
    pub name: &'static str,
    /// Severity of this rule's findings.
    pub severity: Severity,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
}

/// A static analysis over one loaded policy.
pub trait LintRule {
    /// The rule's identity card.
    fn info(&self) -> RuleInfo;

    /// Runs the rule. A `CoreError` here means the analysis itself could
    /// not run (e.g. propagation overflow), not that the policy is clean;
    /// the driver surfaces it as an error diagnostic.
    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError>;
}

/// Text-phase check: the policy text failed to parse.
pub const PARSE_ERROR: RuleInfo = RuleInfo {
    code: "UCRA000",
    name: "parse-error",
    severity: Severity::Error,
    summary: "the policy text cannot be parsed",
};

/// Text-phase check: a `strategy` directive names none of the 48
/// legitimate instances.
pub const UNKNOWN_STRATEGY: RuleInfo = RuleInfo {
    code: "UCRA001",
    name: "unknown-strategy",
    severity: Severity::Error,
    summary: "the strategy mnemonic is not one of the 48 legitimate instances",
};

/// Text/instance-phase check: the strategy is legitimate but not written
/// (or not represented) in canonical form.
pub const NON_CANONICAL_STRATEGY: RuleInfo = RuleInfo {
    code: "UCRA002",
    name: "non-canonical-strategy",
    severity: Severity::Warning,
    summary: "the strategy is legitimate but not in canonical form",
};

/// All model-level rules, in code order.
pub fn registry() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(strategy::NonCanonicalInstance),
        Box::new(strategy::NoStrategy),
        Box::new(structure::OrphanSubject),
        Box::new(structure::InertGroup),
        Box::new(structure::FragmentedHierarchy),
        Box::new(redundancy::RedundantLabel),
        Box::new(dead::DeadConflict),
        Box::new(shadowing::DefaultShadowing),
    ]
}

/// Every diagnostic code this crate can emit, with its identity card —
/// the text-phase checks plus the registry rules. (`UCRA002` is shared:
/// the text phase flags non-canonical *spellings*, the registry rule
/// non-canonical *instances*; both are the same finding.)
pub fn codes() -> Vec<RuleInfo> {
    let mut out = vec![PARSE_ERROR, UNKNOWN_STRATEGY];
    for rule in registry() {
        out.push(rule.info());
    }
    out.sort_by_key(|info| info.code);
    out.dedup_by_key(|info| info.code);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let codes = codes();
        for pair in codes.windows(2) {
            assert!(pair[0].code < pair[1].code, "duplicate or unsorted codes");
        }
        for info in &codes {
            assert!(info.code.starts_with("UCRA"), "{}", info.code);
            assert_eq!(info.code.len(), 7, "{}", info.code);
            assert!(!info.name.is_empty() && !info.summary.is_empty());
        }
    }
}
