//! `UCRA020` — redundant explicit labels.
//!
//! An explicit label is redundant when deleting it changes no subject's
//! effective authorization under **any** of the 48 legitimate strategy
//! instances: propagation already derives everything the label states.
//! The paper's §2 motivation for sparse explicit matrices is exactly
//! that derived authorizations need not be stored; this rule finds the
//! stored ones that needn't be.
//!
//! The check is semantic, not syntactic: for each candidate label the
//! rule recomputes the effective column with the label removed and
//! compares outcomes. [`ucra_core::columns_for_strategies_in`] shares
//! one propagation sweep across all 48 resolutions, so the cost per
//! `(object, right)` pair is `(labels + 1)` sweeps, not `48 × labels` —
//! and every sweep shares one [`ucra_core::SweepContext`], so the
//! traversal setup is paid once per model, not once per probe.

use super::{LintRule, RuleInfo};
use crate::context::LintContext;
use crate::diagnostics::{Diagnostic, RuleSweepStats, Severity};
use ucra_core::{columns_for_strategies_in, CoreError, Strategy, SweepContext};

/// The `UCRA020` rule (see the module docs).
pub struct RedundantLabel;

impl LintRule for RedundantLabel {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            code: "UCRA020",
            name: "redundant-label",
            severity: Severity::Warning,
            summary: "an explicit label is implied by propagation under all 48 strategies",
            doc: "An explicit label can be deleted without changing any \
                  subject's effective authorization under any of the 48 \
                  legitimate strategies — group propagation already derives \
                  it. Redundant labels are proven removable by recomputing \
                  the affected columns with and without the label under \
                  every instance; keeping them bloats the matrix and hides \
                  which records actually carry the policy.",
        }
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        let strategies = Strategy::all_instances();
        let ctx = SweepContext::new(cx.hierarchy());
        let mut out = Vec::new();
        let mut stats = RuleSweepStats {
            rule: self.info().name,
            subjects: ctx.subjects(),
            pairs_probed: 0,
            active_rows_max: 0,
            active_rows_total: 0,
        };
        for (object, right) in cx.eacm().object_right_pairs() {
            let active = ctx.active_set_size(cx.eacm(), &[(object, right)]);
            stats.pairs_probed += 1;
            stats.active_rows_max = stats.active_rows_max.max(active);
            stats.active_rows_total += active;
            let base = columns_for_strategies_in(&ctx, cx.eacm(), object, right, &strategies)?;
            let labels: Vec<_> = cx.eacm().labels_for(object, right).collect();
            for &(subject, sign) in &labels {
                let mut trimmed = cx.eacm().clone();
                trimmed.unset(subject, object, right);
                let without =
                    columns_for_strategies_in(&ctx, &trimmed, object, right, &strategies)?;
                if without == base {
                    out.push(Diagnostic {
                        code: self.info().code,
                        rule: self.info().name,
                        severity: self.info().severity,
                        message: format!(
                            "explicit `{sign}` on `{}` for {}/{} is already derived by \
                             propagation under every one of the 48 strategies",
                            cx.subject_name(subject),
                            cx.object_name(object),
                            cx.right_name(right),
                        ),
                        span: cx.label_span(subject, object, right),
                        help: Some(
                            "remove the label: no subject's effective authorization \
                             changes under any strategy"
                                .to_string(),
                        ),
                    });
                }
            }
        }
        cx.record_sweep_stats(stats);
        Ok(out)
    }
}
