//! `UCRA021` — dead conflicts: contradictory labels the chosen strategy
//! always resolves the same way.
//!
//! A label *participates in a conflict* when an opposite-sign label on
//! the same `(object, right)` pair reaches a shared descendant — the
//! situation Algorithm `Resolve()` (Fig. 4) exists to arbitrate. The
//! conflict is *dead* under the configured strategy when removing the
//! label changes no subject's outcome: the Majority/Preference pipeline
//! resolves every affected subject identically with or without it. The
//! label still matters under *other* strategies (otherwise it would be
//! `UCRA020`), so the policy silently depends on the strategy choice —
//! exactly the configuration drift §2.2 warns about.

use super::{LintRule, RuleInfo};
use crate::context::LintContext;
use crate::diagnostics::{Diagnostic, RuleSweepStats, Severity};
use ucra_core::{columns_for_strategies_in, CoreError, Strategy, SubjectId, SweepContext};
use ucra_graph::traverse::{reachable_set, Direction};

/// The `UCRA021` rule (see the module docs).
pub struct DeadConflict;

impl LintRule for DeadConflict {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            code: "UCRA021",
            name: "dead-conflict",
            severity: Severity::Info,
            summary: "a conflicting label never changes the outcome under the chosen strategy",
            doc: "A pair carries explicit labels of both signs, but under the \
                  configured strategy removing the losing side changes no \
                  subject's effective authorization: the conflict is \
                  decorative. Dead conflicts make a policy look contested \
                  when it is not; either remove the losing labels or switch \
                  to a strategy under which they matter.",
        }
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        let Some(strategy) = cx.canonical_strategy() else {
            return Ok(Vec::new());
        };
        let strategies = Strategy::all_instances();
        let configured = strategies
            .iter()
            .position(|&s| s == strategy)
            .expect("every canonical strategy is one of the 48");
        let graph = cx.hierarchy().graph();
        let descendants = |s: SubjectId| reachable_set(graph, &[s], Direction::Down);
        let ctx = SweepContext::new(cx.hierarchy());
        let mut out = Vec::new();
        let mut stats = RuleSweepStats {
            rule: self.info().name,
            subjects: ctx.subjects(),
            pairs_probed: 0,
            active_rows_max: 0,
            active_rows_total: 0,
        };
        for (object, right) in cx.eacm().object_right_pairs() {
            let labels: Vec<_> = cx.eacm().labels_for(object, right).collect();
            if labels.len() < 2 {
                continue;
            }
            let active = ctx.active_set_size(cx.eacm(), &[(object, right)]);
            stats.pairs_probed += 1;
            stats.active_rows_max = stats.active_rows_max.max(active);
            stats.active_rows_total += active;
            let cones: Vec<Vec<bool>> = labels.iter().map(|&(s, _)| descendants(s)).collect();
            let base = columns_for_strategies_in(&ctx, cx.eacm(), object, right, &strategies)?;
            for (i, &(subject, sign)) in labels.iter().enumerate() {
                let conflicting = labels.iter().enumerate().any(|(j, &(_, other))| {
                    other != sign && cones[i].iter().zip(&cones[j]).any(|(&a, &b)| a && b)
                });
                if !conflicting {
                    continue;
                }
                let mut trimmed = cx.eacm().clone();
                trimmed.unset(subject, object, right);
                let without =
                    columns_for_strategies_in(&ctx, &trimmed, object, right, &strategies)?;
                // Unchanged under *all* strategies is UCRA020's finding,
                // not a strategy-dependent dead conflict.
                if without == base || without[configured] != base[configured] {
                    continue;
                }
                out.push(Diagnostic {
                    code: self.info().code,
                    rule: self.info().name,
                    severity: self.info().severity,
                    message: format!(
                        "the `{sign}` on `{}` for {}/{} conflicts with opposite labels \
                         on shared members, but strategy `{strategy}` resolves every \
                         subject identically without it (dead policy)",
                        cx.subject_name(subject),
                        cx.object_name(object),
                        cx.right_name(right),
                    ),
                    span: cx.label_span(subject, object, right),
                    help: Some(format!(
                        "under `{strategy}` this label is decoration; other strategies \
                         do honour it, so outcomes will shift if the strategy ever \
                         changes"
                    )),
                });
            }
        }
        cx.record_sweep_stats(stats);
        Ok(out)
    }
}
