//! Strategy-configuration rules: the 54→48 canonicalisation surface.
//!
//! §2.2 of the paper derives exactly 48 legitimate strategy instances
//! from a raw 54-point parameter space: with `lRule = identity()` the
//! locality filter is a no-op, so counting the majority before or after
//! it is the same strategy. [`ucra_core::Strategy::new`] canonicalises
//! that case, but deserialised models can smuggle in non-canonical
//! instances, and policy texts can spell legitimate instances in
//! non-canonical ways (the paper's Unicode superscripts). Both are worth
//! flagging before they confuse an audit trail.

use super::{LintRule, RuleInfo, NON_CANONICAL_STRATEGY};
use crate::context::LintContext;
use crate::diagnostics::{Diagnostic, Severity, Span, SpanItem};
use ucra_core::CoreError;

/// `UCRA002` — the configured [`Strategy`] *instance* is not canonical.
///
/// Reachable only through deserialisation (serde fills the fields
/// directly, bypassing [`Strategy::new`]): a majority-after rule paired
/// with no locality policy behaves identically to majority-before, so
/// two spellings of one strategy would compare unequal — poison for
/// caching, diffing and audit logs.
pub struct NonCanonicalInstance;

impl LintRule for NonCanonicalInstance {
    fn info(&self) -> RuleInfo {
        NON_CANONICAL_STRATEGY
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        let Some(strategy) = cx.strategy() else {
            return Ok(Vec::new());
        };
        if strategy.is_canonical() {
            return Ok(Vec::new());
        }
        let mnemonic = strategy.canonicalized().mnemonic();
        Ok(vec![Diagnostic {
            code: self.info().code,
            rule: self.info().name,
            severity: self.info().severity,
            message: format!(
                "configured strategy pairs a majority-after rule with no locality \
                 policy; this is the non-canonical twin of `{mnemonic}`"
            ),
            span: cx.strategy_span(mnemonic.clone()),
            help: Some(format!(
                "re-serialise the model so the strategy reads `{mnemonic}` \
                 (the 54-point raw parameter space collapses to 48 instances)"
            )),
        }])
    }
}

/// `UCRA003` — no strategy is configured.
///
/// The model still loads (per-query strategies work), but `check` calls
/// fail and strategy-dependent lints cannot run.
pub struct NoStrategy;

impl LintRule for NoStrategy {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            code: "UCRA003",
            name: "no-strategy",
            severity: Severity::Info,
            summary: "no conflict-resolution strategy is configured",
            doc: "The policy configures no conflict-resolution strategy, so \
                  every consumer must supply one ad hoc — and two consumers \
                  supplying different instances will disagree about the same \
                  matrix. The paper's pitch is that the strategy is a \
                  configuration value; add a `strategy <mnemonic>` directive \
                  so the policy pins its own semantics.",
        }
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        if cx.strategy().is_some() {
            return Ok(Vec::new());
        }
        Ok(vec![Diagnostic {
            code: self.info().code,
            rule: self.info().name,
            severity: self.info().severity,
            message: "no conflict-resolution strategy is configured; queries must pass \
                      one explicitly, and strategy-dependent lints were skipped"
                .to_string(),
            span: Span::item(SpanItem::Model),
            help: Some("add a `strategy` directive, e.g. `strategy D-LP-`".to_string()),
        }])
    }
}
