//! SDAG structural rules: subjects and components that propagation can
//! never reach the way the administrator probably intended (§2.1 — the
//! whole algorithm is driven by membership paths; a subject outside the
//! hierarchy is outside the algorithm).

use super::{LintRule, RuleInfo};
use crate::context::LintContext;
use crate::diagnostics::{Diagnostic, Severity, Span, SpanItem};
use ucra_core::{CoreError, SubjectId};
use ucra_graph::analysis::weakly_connected_components;

/// `true` when the subject has neither groups nor members.
fn is_isolated(cx: &LintContext<'_>, s: SubjectId) -> bool {
    cx.hierarchy().groups_of(s).is_empty() && cx.hierarchy().members_of(s).is_empty()
}

/// `true` when the subject carries at least one explicit label.
fn has_labels(cx: &LintContext<'_>, s: SubjectId) -> bool {
    cx.eacm().iter().any(|(ls, _, _, _)| ls == s)
}

/// `UCRA010` — an isolated subject with no explicit authorizations.
///
/// It belongs to no group, has no members and labels nothing: every
/// query about it falls straight through to the default/preference
/// fallback. Usually a leftover of a deleted hierarchy branch or a
/// typo'd `member` directive.
pub struct OrphanSubject;

impl LintRule for OrphanSubject {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            code: "UCRA010",
            name: "orphan-subject",
            severity: Severity::Warning,
            summary: "an isolated subject carries no authorizations at all",
            doc: "A subject has no group, no members and no explicit labels: \
                  every check against it falls through to the strategy's \
                  default/preference fallback. Orphans are usually leftovers \
                  from renames or imports; connect them to the hierarchy or \
                  delete them so the fallback surface stays small.",
        }
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        Ok(cx
            .hierarchy()
            .subjects()
            .filter(|&s| is_isolated(cx, s) && !has_labels(cx, s))
            .map(|s| Diagnostic {
                code: self.info().code,
                rule: self.info().name,
                severity: self.info().severity,
                message: format!(
                    "subject `{}` is isolated: no groups, no members, and no \
                     explicit authorizations",
                    cx.subject_name(s)
                ),
                span: cx.subject_span(s),
                help: Some(
                    "connect it with a `member` directive or delete the subject".to_string(),
                ),
            })
            .collect())
    }
}

/// `UCRA011` — an isolated subject that *does* carry explicit labels.
///
/// Its authorizations propagate to nobody: if the subject was meant as a
/// group, its membership edges are missing, and the labels silently
/// apply to exactly one principal.
pub struct InertGroup;

impl LintRule for InertGroup {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            code: "UCRA011",
            name: "inert-group",
            severity: Severity::Warning,
            summary: "a labeled subject is connected to nothing, so its labels propagate nowhere",
            doc: "A subject carries explicit labels but has no members, so \
                  the labels protect only the subject itself and propagate \
                  nowhere. That is legal but usually a mis-modelled group: \
                  either add the intended members or accept that the record \
                  is a per-subject exception and silence the warning by \
                  intent.",
        }
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        Ok(cx
            .hierarchy()
            .subjects()
            .filter(|&s| is_isolated(cx, s) && has_labels(cx, s))
            .map(|s| Diagnostic {
                code: self.info().code,
                rule: self.info().name,
                severity: self.info().severity,
                message: format!(
                    "subject `{}` carries explicit authorizations but belongs to no \
                     hierarchy; they propagate to nobody",
                    cx.subject_name(s)
                ),
                span: cx.subject_span(s),
                help: Some(
                    "add `member` edges if this was meant as a group, or leave it \
                     only if the labels are intentionally personal"
                        .to_string(),
                ),
            })
            .collect())
    }
}

/// `UCRA012` — the hierarchy splits into several multi-subject
/// components.
///
/// Propagation never crosses a component boundary, so labels in one
/// fragment cannot affect subjects in another. One component per
/// administrative domain is normal; several fragments usually mean a
/// bridging `member` edge went missing. Isolated single subjects are
/// reported individually (`UCRA010`/`UCRA011`) and ignored here.
pub struct FragmentedHierarchy;

impl LintRule for FragmentedHierarchy {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            code: "UCRA012",
            name: "fragmented-hierarchy",
            severity: Severity::Info,
            summary: "the hierarchy splits into several disconnected components",
            doc: "The subject hierarchy splits into several weakly-connected \
                  components. Labels never propagate across components, so \
                  each fragment is an independent policy island; that can be \
                  deliberate (tenants) but is often an import artifact. The \
                  diagnostic lists the fragments so you can decide which.",
        }
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        let components = weakly_connected_components(cx.hierarchy().graph());
        let multi: Vec<&Vec<SubjectId>> = components.iter().filter(|c| c.len() >= 2).collect();
        if multi.len() < 2 {
            return Ok(Vec::new());
        }
        let sizes: Vec<String> = multi.iter().map(|c| c.len().to_string()).collect();
        let anchors: Vec<String> = multi.iter().map(|c| cx.subject_name(c[0])).collect();
        Ok(vec![Diagnostic {
            code: self.info().code,
            rule: self.info().name,
            severity: self.info().severity,
            message: format!(
                "the hierarchy splits into {} disconnected components (sizes {}); \
                 authorizations never propagate across components",
                multi.len(),
                sizes.join(", ")
            ),
            span: Span::item(SpanItem::Model),
            help: Some(format!("components anchored at: {}", anchors.join(", "))),
        }])
    }
}
