//! `UCRA030` — default shadowing: outcomes decided by nothing in the
//! policy.
//!
//! Step 2 of the algorithm plants a `d` placeholder on every unlabeled
//! root ancestor (Fig. 4 Lines 2–3); a strategy *with* a default policy
//! turns those into deliberate signs. A strategy **without** one
//! discards them, and any subject whose `allRights` holds only `d` rows
//! falls through the entire pipeline to the preference fallback. Those
//! subjects' authorizations are shadowed: no directive in the policy —
//! not even the default rule — decided them, so the fallback sign
//! silently governs real principals on pairs that do carry labels
//! elsewhere.

use super::{LintRule, RuleInfo};
use crate::context::LintContext;
use crate::diagnostics::{Diagnostic, Severity};
use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::{CoreError, DefaultRule, Mode};

/// The `UCRA030` rule (see the module docs).
pub struct DefaultShadowing;

impl LintRule for DefaultShadowing {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            code: "UCRA030",
            name: "default-shadowing",
            severity: Severity::Warning,
            summary: "subjects whose outcome falls through to the preference fallback",
            doc: "On a labeled pair, some subjects' outcomes are decided by \
                  nothing in the policy: no explicit or propagated label \
                  reaches them and the strategy has no default rule, so the \
                  preference sign alone decides. Such subjects silently \
                  change access when the preference flips; either connect \
                  them to a labeled group or configure a default rule.",
        }
    }

    fn check(&self, cx: &LintContext<'_>) -> Result<Vec<Diagnostic>, CoreError> {
        let Some(strategy) = cx.canonical_strategy() else {
            return Ok(Vec::new());
        };
        if strategy.default_rule() != DefaultRule::NoDefault {
            return Ok(Vec::new());
        }
        let fallback = strategy.preference_rule();
        let mut out = Vec::new();
        for (object, right) in cx.eacm().object_right_pairs() {
            let table = counting::histograms_all(
                cx.hierarchy(),
                cx.eacm(),
                object,
                right,
                PropagationMode::Both,
            )?;
            let mut shadowed = Vec::new();
            for (ix, hist) in table.iter().enumerate() {
                let totals = hist.totals()?;
                if totals.get(Mode::Pos) == 0
                    && totals.get(Mode::Neg) == 0
                    && totals.get(Mode::Default) > 0
                {
                    shadowed.push(cx.subject_name(ucra_core::SubjectId::from_index(ix)));
                }
            }
            if shadowed.is_empty() {
                continue;
            }
            let shown = shadowed.iter().take(5).cloned().collect::<Vec<_>>();
            let more = shadowed.len().saturating_sub(shown.len());
            let listing = if more > 0 {
                format!("{} (and {more} more)", shown.join(", "))
            } else {
                shown.join(", ")
            };
            out.push(Diagnostic {
                code: self.info().code,
                rule: self.info().name,
                severity: self.info().severity,
                message: format!(
                    "{} subject(s) hold neither an explicit nor a propagated \
                     authorization for {}/{}; strategy `{strategy}` has no default \
                     policy, so their access is decided purely by the preference \
                     fallback `{fallback}`",
                    shadowed.len(),
                    cx.object_name(object),
                    cx.right_name(right),
                ),
                span: cx.pair_span(object, right),
                help: Some(format!("affected: {listing}")),
            });
        }
        Ok(out)
    }
}
