//! The diagnostics framework: severities, spans, diagnostics, and the
//! report with its human-readable and JSON renderers.
//!
//! The JSON renderer is hand-rolled (no `serde_json` dependency): the
//! schema is part of the tool's public contract, pinned by a snapshot
//! test, and must not drift with a serialisation library's defaults.

use std::fmt;

/// How serious a finding is.
///
/// Severities drive the exit code of `ucra lint`: errors always fail,
/// warnings fail only under `--deny warnings`, infos never fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious policy that still loads and resolves.
    Warning,
    /// The policy is broken: it cannot load, or cannot mean what it says.
    Error,
}

impl Severity {
    /// Lower-case label used in both renderers (`error`, `warning`,
    /// `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanItem {
    /// The policy as a whole.
    Model,
    /// The strategy directive, with the spelling found in the source.
    Strategy(String),
    /// One subject, by name.
    Subject(String),
    /// One explicit label ⟨subject, object, right⟩.
    Label {
        /// The labeled subject's name.
        subject: String,
        /// The object name.
        object: String,
        /// The right name.
        right: String,
    },
    /// One ⟨object, right⟩ pair.
    Pair {
        /// The object name.
        object: String,
        /// The right name.
        right: String,
    },
    /// One edit of an edit script, rendered as its source directive
    /// (impact analysis, `UCRA1xx`).
    Edit(String),
}

impl fmt::Display for SpanItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanItem::Model => f.write_str("model"),
            SpanItem::Strategy(m) => write!(f, "strategy `{m}`"),
            SpanItem::Subject(s) => write!(f, "subject `{s}`"),
            SpanItem::Label {
                subject,
                object,
                right,
            } => write!(f, "label `{subject}` {object}/{right}"),
            SpanItem::Pair { object, right } => write!(f, "pair {object}/{right}"),
            SpanItem::Edit(edit) => write!(f, "edit `{edit}`"),
        }
    }
}

/// Where a diagnostic points: an item of the model, plus the 1-based
/// source line when the policy came from text with a source map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The offending item.
    pub item: SpanItem,
    /// 1-based line in the policy text, when known.
    pub line: Option<usize>,
}

impl Span {
    /// A span with no line information.
    pub fn item(item: SpanItem) -> Span {
        Span { item, line: None }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `UCRA020`. Codes never change meaning; retired
    /// codes are not reused.
    pub code: &'static str,
    /// The rule's kebab-case name, e.g. `redundant-label`.
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Human-readable statement of the problem.
    pub message: String,
    /// What the finding points at.
    pub span: Span,
    /// Optional remediation hint.
    pub help: Option<String>,
}

/// Sweep-kernel observability for one semantic rule: how much of the
/// hierarchy its label-cone-pruned probes actually visited.
///
/// The semantic rules (`UCRA020`, `UCRA021`) recompute effective columns
/// through the sparsity-pruned sweep kernel; on the sparse matrices they
/// exist to encourage, each probe's active set is the union label cone,
/// not the whole hierarchy. These numbers make that visible in
/// `--format json` so policy authors can see the probe cost scale with
/// label density rather than model size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSweepStats {
    /// The rule's kebab-case name, e.g. `redundant-label`.
    pub rule: &'static str,
    /// Subjects in the linted hierarchy.
    pub subjects: usize,
    /// `(object, right)` pairs the rule probed.
    pub pairs_probed: usize,
    /// Largest single-pair active set over all probes.
    pub active_rows_max: usize,
    /// Active rows summed over all probes (the rule's total sweep work,
    /// in rows; a dense probe would cost `subjects × pairs_probed`).
    pub active_rows_total: usize,
}

/// The outcome of a lint run: every finding, ordered deterministically
/// (by source line where known, then code, then message).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
    sweeps: Vec<RuleSweepStats>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Builds a report, sorting the findings into the stable order.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| {
            let line = |d: &Diagnostic| d.span.line.unwrap_or(usize::MAX);
            line(a)
                .cmp(&line(b))
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| a.message.cmp(&b.message))
        });
        LintReport {
            diagnostics,
            sweeps: Vec::new(),
        }
    }

    /// Attaches per-rule sweep-kernel statistics (sorted by rule name
    /// for a deterministic rendering).
    pub fn with_sweep_stats(mut self, mut sweeps: Vec<RuleSweepStats>) -> LintReport {
        sweeps.sort_by(|a, b| a.rule.cmp(b.rule));
        self.sweeps = sweeps;
        self
    }

    /// Per-rule sweep-kernel statistics, sorted by rule name. Empty when
    /// no semantic rule ran (e.g. the policy failed to parse).
    pub fn sweep_stats(&self) -> &[RuleSweepStats] {
        &self.sweeps
    }

    /// The findings, in report order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when at least one error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The process exit code `ucra lint` maps this report to:
    /// `1` with errors, `2` with warnings under `--deny warnings`,
    /// `0` otherwise.
    pub fn exit_code(&self, deny_warnings: bool) -> u8 {
        if self.has_errors() {
            1
        } else if deny_warnings && self.count(Severity::Warning) > 0 {
            2
        } else {
            0
        }
    }

    /// The human-readable rendering.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
            match d.span.line {
                Some(line) => {
                    let _ = writeln!(out, "  --> line {line}: {}", d.span.item);
                }
                None => {
                    let _ = writeln!(out, "  --> {}", d.span.item);
                }
            }
            if let Some(help) = &d.help {
                let _ = writeln!(out, "  help: {help}");
            }
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s), {} info(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        );
        out
    }

    /// The machine-readable rendering (one stable JSON document; schema
    /// version bumps on any breaking change).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_field(&mut out, "code", d.code);
            out.push(',');
            json_field(&mut out, "rule", d.rule);
            out.push(',');
            json_field(&mut out, "severity", d.severity.label());
            out.push(',');
            json_field(&mut out, "message", &d.message);
            out.push_str(",\"span\":{");
            match &d.span.item {
                SpanItem::Model => json_field(&mut out, "kind", "model"),
                SpanItem::Strategy(m) => {
                    json_field(&mut out, "kind", "strategy");
                    out.push(',');
                    json_field(&mut out, "strategy", m);
                }
                SpanItem::Subject(s) => {
                    json_field(&mut out, "kind", "subject");
                    out.push(',');
                    json_field(&mut out, "subject", s);
                }
                SpanItem::Label {
                    subject,
                    object,
                    right,
                } => {
                    json_field(&mut out, "kind", "label");
                    out.push(',');
                    json_field(&mut out, "subject", subject);
                    out.push(',');
                    json_field(&mut out, "object", object);
                    out.push(',');
                    json_field(&mut out, "right", right);
                }
                SpanItem::Pair { object, right } => {
                    json_field(&mut out, "kind", "pair");
                    out.push(',');
                    json_field(&mut out, "object", object);
                    out.push(',');
                    json_field(&mut out, "right", right);
                }
                SpanItem::Edit(edit) => {
                    json_field(&mut out, "kind", "edit");
                    out.push(',');
                    json_field(&mut out, "edit", edit);
                }
            }
            out.push_str(",\"line\":");
            match d.span.line {
                Some(line) => out.push_str(&line.to_string()),
                None => out.push_str("null"),
            }
            out.push_str("},\"help\":");
            match &d.help {
                Some(help) => json_string(&mut out, help),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        use std::fmt::Write as _;
        out.push_str("],\"kernel\":[");
        for (i, s) in self.sweeps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"subjects\":{},\"pairs_probed\":{},\
                 \"active_rows_max\":{},\"active_rows_total\":{}}}",
                s.rule, s.subjects, s.pairs_probed, s.active_rows_max, s.active_rows_total
            );
        }
        // The complete rule registry, so external tooling can enumerate
        // every check this build can emit without a side-channel.
        out.push_str("],\"rules\":[");
        for (i, info) in crate::rules::codes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_field(&mut out, "code", info.code);
            out.push(',');
            json_field(&mut out, "name", info.name);
            out.push(',');
            json_field(&mut out, "severity", info.severity.label());
            out.push(',');
            json_field(&mut out, "summary", info.summary);
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        );
        out
    }
}

pub(crate) fn json_field(out: &mut String, key: &str, value: &str) {
    json_string(out, key);
    out.push(':');
    json_string(out, value);
}

/// Appends `value` as a JSON string literal, escaping per RFC 8259.
pub(crate) fn json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(code: &'static str, severity: Severity, line: Option<usize>) -> Diagnostic {
        Diagnostic {
            code,
            rule: "sample-rule",
            severity,
            message: format!("finding {code}"),
            span: Span {
                item: SpanItem::Model,
                line,
            },
            help: None,
        }
    }

    #[test]
    fn report_orders_by_line_then_code() {
        let report = LintReport::from_diagnostics(vec![
            sample("UCRA020", Severity::Warning, None),
            sample("UCRA010", Severity::Warning, Some(9)),
            sample("UCRA001", Severity::Error, Some(2)),
        ]);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["UCRA001", "UCRA010", "UCRA020"]);
    }

    #[test]
    fn exit_codes_follow_severity() {
        let clean = LintReport::new();
        assert_eq!(clean.exit_code(false), 0);
        assert_eq!(clean.exit_code(true), 0);
        let warn = LintReport::from_diagnostics(vec![sample("UCRA010", Severity::Warning, None)]);
        assert_eq!(warn.exit_code(false), 0);
        assert_eq!(warn.exit_code(true), 2);
        let err = LintReport::from_diagnostics(vec![
            sample("UCRA001", Severity::Error, None),
            sample("UCRA010", Severity::Warning, None),
        ]);
        assert_eq!(err.exit_code(false), 1);
        assert_eq!(err.exit_code(true), 1);
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut d = sample("UCRA000", Severity::Error, Some(1));
        d.message = "a \"quoted\"\nline\t\\".to_string();
        let json = LintReport::from_diagnostics(vec![d]).render_json();
        assert!(json.contains(r#"a \"quoted\"\nline\t\\"#), "{json}");
    }

    #[test]
    fn text_rendering_shows_line_and_help() {
        let mut d = sample("UCRA010", Severity::Warning, Some(4));
        d.help = Some("connect or remove the subject".into());
        let text = LintReport::from_diagnostics(vec![d]).render_text();
        assert!(text.contains("warning[UCRA010]"), "{text}");
        assert!(text.contains("--> line 4: model"), "{text}");
        assert!(
            text.contains("help: connect or remove the subject"),
            "{text}"
        );
        assert!(
            text.contains("0 error(s), 1 warning(s), 0 info(s)"),
            "{text}"
        );
    }
}
