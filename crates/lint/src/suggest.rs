//! "Did you mean …?" support: nearest legitimate strategy mnemonic by
//! edit distance over the 48 instances.

use ucra_core::Strategy;

/// Levenshtein distance over characters (not bytes — mnemonics may carry
/// the paper's Unicode superscripts).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The legitimate mnemonic closest to `input` (superscripts normalised
/// first), with its distance. Ties break towards the lexicographically
/// smallest mnemonic, so suggestions are deterministic.
pub fn nearest_mnemonic(input: &str) -> (String, usize) {
    let normalised: String = input
        .trim()
        .chars()
        .map(|c| match c {
            '⁺' => '+',
            '⁻' | '−' => '-',
            other => other,
        })
        .collect();
    let mut best: Option<(String, usize)> = None;
    for strategy in Strategy::all_instances() {
        let mnemonic = strategy.mnemonic();
        let d = edit_distance(&normalised, &mnemonic);
        let better = match &best {
            None => true,
            Some((bm, bd)) => d < *bd || (d == *bd && mnemonic < *bm),
        };
        if better {
            best = Some((mnemonic, d));
        }
    }
    best.expect("there are 48 candidate mnemonics")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "axc"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("D+LMP-", "D+LMP+"), 1);
    }

    #[test]
    fn suggests_the_obvious_fix() {
        let (m, d) = nearest_mnemonic("D+LMP");
        assert_eq!(m, "D+LMP+");
        assert_eq!(d, 1);
        // A transposed pair still lands on a legitimate instance.
        let (m, d) = nearest_mnemonic("LPM+");
        assert!(d <= 2, "{m} at distance {d}");
    }

    #[test]
    fn exact_mnemonics_have_distance_zero() {
        for s in Strategy::all_instances() {
            let (m, d) = nearest_mnemonic(&s.mnemonic());
            assert_eq!((m, d), (s.mnemonic(), 0));
        }
    }
}
