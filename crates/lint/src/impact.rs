//! The `UCRA1xx` diagnostic family: static analysis of **edit scripts**
//! against a base policy, on top of [`ucra_core::ImpactAnalysis`].
//!
//! Where the `UCRA0xx` rules judge a *policy*, these judge a *change*:
//! edits that provably do nothing (a revoke whose subject keeps the
//! access via a group), edits a later line overwrites, grant-gains on
//! sensitive objects, strategy swaps that retip a large share of the
//! matrix, and swaps that flip the label-free default sign. Same
//! machinery as the rest of the crate — stable codes, severities,
//! spans (here [`SpanItem::Edit`] with the script's source line), text
//! and JSON renderers — so `ucra impact` and `POST /impact` gate the
//! same way `ucra lint` does.

use crate::diagnostics::{json_field, json_string, Diagnostic, LintReport, Span, SpanItem};
use crate::rules::RuleInfo;
use crate::Severity;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use ucra_core::impact::{EditOp, EditScript, ImpactAnalysis};
use ucra_core::{ObjectId, RightId, Sign, Strategy, SubjectId};
use ucra_store::{parse_edits, resolve_edits, AccessModel, Interner};

/// An edit whose exact outcome is empty: it changes no effective
/// authorization.
pub const NOOP_EDIT: RuleInfo = RuleInfo {
    code: "UCRA100",
    name: "no-op-edit",
    severity: Severity::Warning,
    summary: "an edit changes no effective authorization",
    doc: "The edit's exact effective diff is empty: after applying it, \
          every subject resolves to the same sign as before. The flagship \
          case is a revoke that removes the explicit record while the \
          subject keeps the access because propagation still derives it \
          through a group — the operator believes access was withdrawn \
          when it was not. Also flagged: re-recording an identical label, \
          membership edges that change nothing, and strategy swaps to an \
          equivalent instance. Fix the edit (revoke the deriving group \
          label too) or drop the line.",
};

/// An edit a later line of the same script overwrites.
pub const SHADOWED_EDIT: RuleInfo = RuleInfo {
    code: "UCRA101",
    name: "shadowed-edit",
    severity: Severity::Warning,
    summary: "a later edit in the script overwrites this one",
    doc: "A later line of the same script writes the same cell (or \
          replaces the strategy again), so this edit's effect never \
          survives to the final state. Shadowed edits are usually merge \
          artifacts or leftovers from an edited draft; reviewers read \
          them as intent, so delete the dead line or reorder the script \
          to say what it means.",
};

/// A grant-gain on a (sensitive) object/right.
pub const PRIVILEGE_ESCALATION: RuleInfo = RuleInfo {
    code: "UCRA102",
    name: "privilege-escalation",
    severity: Severity::Warning,
    summary: "the script grants access that the base policy denies",
    doc: "The script flips at least one cell from `-` to `+` (or grants \
          a script-added subject, or flips the label-free default sign \
          to `+`) on an object/right matched by the `--sensitive` \
          pattern — every pair when no pattern is given. Gains are the \
          one direction of change that needs a human sign-off in an \
          approval pipeline; `ucra impact --deny escalation` turns any \
          finding of this rule into a non-zero exit for CI gating.",
};

/// A strategy swap that retips a large share of the matrix.
pub const MASS_STRATEGY_FLIP: RuleInfo = RuleInfo {
    code: "UCRA103",
    name: "mass-strategy-flip",
    severity: Severity::Warning,
    summary: "a strategy swap flips a large share of the matrix",
    doc: "A `strategy` edit flips more than the configured percentage of \
          the tracked matrix cells (default 30%). Strategy swaps are \
          global: unlike a label edit their blast cone spans every \
          labeled subject's descendant cone, so a swap that retips this \
          much of the matrix is rarely a tuning change and should be \
          reviewed as a policy rewrite — stage it separately from \
          ordinary label edits.",
};

/// A strategy swap that flips the label-free default sign.
pub const DEFAULT_FLIP: RuleInfo = RuleInfo {
    code: "UCRA104",
    name: "default-flip",
    severity: Severity::Warning,
    summary: "a strategy swap flips the label-free default sign",
    doc: "A `strategy` edit changes the sign that every pair carrying no \
          explicit authorization resolves to — an impact no enumeration \
          of materialised cells can show, covering the unbounded space \
          of objects the policy never mentions. When a script flips the \
          default and later flips it back (churn), the intermediate \
          state is still what any concurrently-applied script would \
          compose with; keep default-flipping swaps in single-edit \
          scripts.",
};

/// The `UCRA1xx` registry slice, merged into [`crate::codes`].
pub const IMPACT_RULES: &[RuleInfo] = &[
    NOOP_EDIT,
    SHADOWED_EDIT,
    PRIVILEGE_ESCALATION,
    MASS_STRATEGY_FLIP,
    DEFAULT_FLIP,
];

/// Knobs for [`lint_impact`].
#[derive(Debug, Clone)]
pub struct ImpactOptions {
    /// Glob over `object/right` (`*` and `?`) selecting the pairs whose
    /// grant-gains count as escalation; `None` means every pair.
    pub sensitive: Option<String>,
    /// `UCRA103` fires when a strategy swap flips strictly more than
    /// this percentage of the tracked matrix cells.
    pub mass_flip_pct: u32,
}

impl Default for ImpactOptions {
    fn default() -> Self {
        ImpactOptions {
            sensitive: None,
            mass_flip_pct: 30,
        }
    }
}

/// Name tables for rendering ids; ids beyond the tables fall back to
/// the dense spellings (`s3`, `o0`, `r1`) used for nameless sessions.
#[derive(Debug, Clone, Default)]
pub struct ImpactNames {
    /// Subject names, indexed by [`SubjectId::index`].
    pub subjects: Vec<String>,
    /// Object names, indexed by the object id.
    pub objects: Vec<String>,
    /// Right names, indexed by the right id.
    pub rights: Vec<String>,
}

impl ImpactNames {
    /// Builds name tables from interners (the daemon's, or a model's).
    pub fn from_interners(subjects: &Interner, objects: &Interner, rights: &Interner) -> Self {
        ImpactNames {
            subjects: subjects.names().map(str::to_string).collect(),
            objects: objects.names().map(str::to_string).collect(),
            rights: rights.names().map(str::to_string).collect(),
        }
    }

    /// The subject's name, or `s<i>`.
    pub fn subject(&self, id: SubjectId) -> String {
        self.subjects
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| format!("s{}", id.index()))
    }

    /// The object's name, or `o<i>`.
    pub fn object(&self, id: ObjectId) -> String {
        self.objects
            .get(id.0 as usize)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// The right's name, or `r<i>`.
    pub fn right(&self, id: RightId) -> String {
        self.rights
            .get(id.0 as usize)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// `object/right`, the spelling `--sensitive` patterns match.
    pub fn pair(&self, object: ObjectId, right: RightId) -> String {
        format!("{}/{}", self.object(object), self.right(right))
    }

    /// Renders one edit as its source directive.
    pub fn describe(&self, op: &EditOp, new_subject: Option<SubjectId>) -> String {
        match *op {
            EditOp::AddSubject => match new_subject {
                Some(id) => format!("subject {}", self.subject(id)),
                None => "subject".to_string(),
            },
            EditOp::AddMembership { group, member } => {
                format!("member {} {}", self.subject(group), self.subject(member))
            }
            EditOp::SetAuthorization {
                subject,
                object,
                right,
                sign,
            } => format!(
                "{} {} {} {}",
                if sign == Sign::Pos { "grant" } else { "deny" },
                self.subject(subject),
                self.object(object),
                self.right(right)
            ),
            EditOp::Revoke {
                subject,
                object,
                right,
            } => format!(
                "revoke {} {} {}",
                self.subject(subject),
                self.object(object),
                self.right(right)
            ),
            EditOp::SetStrategy { strategy } => format!("strategy {strategy}"),
        }
    }
}

/// Matches a `*`/`?` glob against `text` (classic two-pointer walk with
/// single backtrack point — patterns here are operator-typed and tiny).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0, 0);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Per-op rendering context: the directive text and the source line.
/// `AddSubject` ops synthesised by the resolver are numbered so the
/// describing text can show the new subject's name.
fn edit_labels(script: &EditScript, names: &ImpactNames, base_subjects: usize) -> Vec<String> {
    let mut next = base_subjects;
    script
        .ops
        .iter()
        .map(|op| {
            let label = match op {
                EditOp::AddSubject => {
                    let id = SubjectId::from_index(next);
                    names.describe(op, Some(id))
                }
                _ => names.describe(op, None),
            };
            if matches!(op, EditOp::AddSubject) {
                next += 1;
            }
            label
        })
        .collect()
}

/// Runs the `UCRA1xx` checks over a completed analysis.
///
/// `lines[i]` is the 1-based source line of `script.ops[i]` (from
/// [`ucra_store::ResolvedScript`]); pass `&[]` when the script did not
/// come from text.
pub fn lint_impact(
    script: &EditScript,
    analysis: &ImpactAnalysis,
    names: &ImpactNames,
    lines: &[usize],
    opts: &ImpactOptions,
) -> LintReport {
    let labels = edit_labels(script, names, analysis.base_subjects);
    let span = |ix: usize| Span {
        item: SpanItem::Edit(labels[ix].clone()),
        line: lines.get(ix).copied(),
    };
    let line_ref = |ix: usize| match lines.get(ix) {
        Some(l) => format!("line {l}"),
        None => format!("edit #{}", ix + 1),
    };
    let mut diagnostics = Vec::new();

    // UCRA100: edits whose exact outcome is empty. New subjects are
    // structural, not flips, so `subject` lines are never no-ops here.
    for (ix, (op, outcome)) in script.ops.iter().zip(&analysis.outcomes).enumerate() {
        if !outcome.is_noop() || matches!(op, EditOp::AddSubject) {
            continue;
        }
        let (message, help) = match op {
            EditOp::Revoke { subject, .. } if outcome.removed_label => (
                format!(
                    "revoking this record changes nothing: `{}` still derives \
                     the same sign through the hierarchy",
                    names.subject(*subject)
                ),
                Some(
                    "the access is propagated from a group label; revoke the \
                     deriving label (see `ucra explain`) or accept that this \
                     line only removes a redundant record"
                        .to_string(),
                ),
            ),
            EditOp::Revoke { .. } => (
                "this revoke revokes nothing: no explicit record exists for \
                 the triple"
                    .to_string(),
                Some("check the subject/object/right names for typos".to_string()),
            ),
            EditOp::SetAuthorization { .. } => (
                "this label changes no effective authorization (it re-records \
                 or is already derived)"
                    .to_string(),
                Some(
                    "drop the line, or keep it deliberately as an anchor \
                      against future hierarchy edits"
                        .to_string(),
                ),
            ),
            EditOp::AddMembership { .. } => (
                "this membership edge changes no effective authorization".to_string(),
                None,
            ),
            EditOp::SetStrategy { .. } => (
                if analysis.cones[ix].is_empty() {
                    "this strategy is already in force (same canonical instance)".to_string()
                } else {
                    "this strategy swap resolves every tracked cell identically".to_string()
                },
                None,
            ),
            EditOp::AddSubject => unreachable!("skipped above"),
        };
        diagnostics.push(Diagnostic {
            code: NOOP_EDIT.code,
            rule: NOOP_EDIT.name,
            severity: NOOP_EDIT.severity,
            message,
            span: span(ix),
            help,
        });
    }

    // UCRA101: last-write-wins shadowing, per cell and for the strategy.
    let mut last_cell_write: BTreeMap<(SubjectId, ObjectId, RightId), usize> = BTreeMap::new();
    let mut last_strategy: Option<usize> = None;
    for (ix, op) in script.ops.iter().enumerate() {
        match *op {
            EditOp::SetAuthorization {
                subject,
                object,
                right,
                ..
            }
            | EditOp::Revoke {
                subject,
                object,
                right,
            } => {
                if let Some(prev) = last_cell_write.insert((subject, object, right), ix) {
                    diagnostics.push(Diagnostic {
                        code: SHADOWED_EDIT.code,
                        rule: SHADOWED_EDIT.name,
                        severity: SHADOWED_EDIT.severity,
                        message: format!(
                            "this edit is overwritten by {} before the script ends",
                            line_ref(ix)
                        ),
                        span: span(prev),
                        help: Some("delete the dead line or reorder the script".to_string()),
                    });
                }
            }
            EditOp::SetStrategy { .. } => {
                if let Some(prev) = last_strategy.replace(ix) {
                    diagnostics.push(Diagnostic {
                        code: SHADOWED_EDIT.code,
                        rule: SHADOWED_EDIT.name,
                        severity: SHADOWED_EDIT.severity,
                        message: format!(
                            "this strategy is replaced again by {}; only the last \
                             `strategy` line survives",
                            line_ref(ix)
                        ),
                        span: span(prev),
                        help: Some("delete the dead line or reorder the script".to_string()),
                    });
                }
            }
            _ => {}
        }
    }

    // UCRA102: grant-gains on sensitive pairs, aggregated per pair.
    let is_sensitive = |object: ObjectId, right: RightId| match &opts.sensitive {
        Some(pattern) => glob_match(pattern, &names.pair(object, right)),
        None => true,
    };
    let mut gains: BTreeMap<(ObjectId, RightId), Vec<SubjectId>> = BTreeMap::new();
    for flip in analysis.gains() {
        if is_sensitive(flip.object, flip.right) {
            gains
                .entry((flip.object, flip.right))
                .or_default()
                .push(flip.subject);
        }
    }
    for &(subject, object, right) in &analysis.added_grants {
        if is_sensitive(object, right) {
            gains.entry((object, right)).or_default().push(subject);
        }
    }
    for ((object, right), subjects) in gains {
        let mut sample: Vec<String> = subjects.iter().take(3).map(|&s| names.subject(s)).collect();
        if subjects.len() > sample.len() {
            sample.push(format!("… {} more", subjects.len() - sample.len()));
        }
        diagnostics.push(Diagnostic {
            code: PRIVILEGE_ESCALATION.code,
            rule: PRIVILEGE_ESCALATION.name,
            severity: PRIVILEGE_ESCALATION.severity,
            message: format!(
                "the script grants {} on {} access the base policy denies ({})",
                if subjects.len() == 1 {
                    "1 subject".to_string()
                } else {
                    format!("{} subjects", subjects.len())
                },
                names.pair(object, right),
                sample.join(", ")
            ),
            span: Span::item(SpanItem::Pair {
                object: names.object(object),
                right: names.right(right),
            }),
            help: Some(
                "gains need explicit sign-off; run with `--deny escalation` to \
                 gate on this rule"
                    .to_string(),
            ),
        });
    }
    if analysis.diff.default_signs.1 == Sign::Pos && analysis.diff.default_flip() {
        diagnostics.push(Diagnostic {
            code: PRIVILEGE_ESCALATION.code,
            rule: PRIVILEGE_ESCALATION.name,
            severity: PRIVILEGE_ESCALATION.severity,
            message: "the script flips the label-free default sign to `+`: every \
                      pair the policy never mentions becomes granted"
                .to_string(),
            span: Span::item(SpanItem::Model),
            help: Some(
                "gains need explicit sign-off; run with `--deny escalation` \
                        to gate on this rule"
                    .to_string(),
            ),
        });
    }

    // UCRA103/UCRA104: strategy-swap magnitude and default flips.
    let cells = analysis.final_subjects * analysis.pairs.len();
    let mut default_sign = analysis.base_strategy.default_only_sign();
    for (ix, (op, outcome)) in script.ops.iter().zip(&analysis.outcomes).enumerate() {
        let EditOp::SetStrategy { strategy } = op else {
            continue;
        };
        if let Some(pct) = (outcome.flips.len() * 100).checked_div(cells) {
            if pct > opts.mass_flip_pct as usize {
                diagnostics.push(Diagnostic {
                    code: MASS_STRATEGY_FLIP.code,
                    rule: MASS_STRATEGY_FLIP.name,
                    severity: MASS_STRATEGY_FLIP.severity,
                    message: format!(
                        "this strategy swap flips {} of {} tracked cells ({pct}%, \
                         threshold {}%)",
                        outcome.flips.len(),
                        cells,
                        opts.mass_flip_pct
                    ),
                    span: span(ix),
                    help: Some(
                        "review as a policy rewrite, not a tuning change; \
                                stage it in its own script"
                            .to_string(),
                    ),
                });
            }
        }
        if outcome.default_flip {
            let to = strategy.default_only_sign();
            let churn = to == analysis.base_strategy.default_only_sign()
                && default_sign != analysis.base_strategy.default_only_sign();
            diagnostics.push(Diagnostic {
                code: DEFAULT_FLIP.code,
                rule: DEFAULT_FLIP.name,
                severity: DEFAULT_FLIP.severity,
                message: if churn {
                    format!(
                        "this swap flips the label-free default sign back to \
                         `{to}` — the script churns the default without a net \
                         change"
                    )
                } else {
                    format!(
                        "this swap flips the label-free default sign from \
                         `{default_sign}` to `{to}`, retipping every pair the \
                         policy never mentions"
                    )
                },
                span: span(ix),
                help: Some("keep default-flipping swaps in single-edit scripts".to_string()),
            });
            default_sign = to;
        }
    }

    LintReport::from_diagnostics(diagnostics)
}

/// A complete impact run: the lowered script, the analysis, the name
/// tables that grew with it, and the `UCRA1xx` report.
#[derive(Debug, Clone)]
pub struct ImpactRun {
    /// The dense-id script, in application order.
    pub script: EditScript,
    /// Per-op 1-based source lines.
    pub lines: Vec<usize>,
    /// The core analysis (cones, outcomes, exact diff, overlay stats).
    pub analysis: ImpactAnalysis,
    /// Name tables including script-added names.
    pub names: ImpactNames,
    /// The `UCRA1xx` findings.
    pub report: LintReport,
}

/// End-to-end impact over a named model: parses the edit-script text,
/// lowers it against the model's name tables (clones — the model is
/// untouched), evaluates it on a copy-on-write overlay, and runs the
/// `UCRA1xx` checks. `strategy` overrides the model's default strategy;
/// one of the two must exist.
pub fn run_impact(
    model: &AccessModel,
    edits_text: &str,
    strategy: Option<Strategy>,
    opts: &ImpactOptions,
) -> Result<ImpactRun, String> {
    let strategy = strategy
        .or_else(|| model.default_strategy())
        .ok_or("the policy configures no strategy; pass one explicitly")?;
    let edits = parse_edits(edits_text).map_err(|e| e.to_string())?;
    let mut subjects = Interner::new();
    let mut objects = Interner::new();
    let mut rights = Interner::new();
    for n in model.subject_names() {
        subjects.intern(n);
    }
    for n in model.object_names() {
        objects.intern(n);
    }
    for n in model.right_names() {
        rights.intern(n);
    }
    let resolved = resolve_edits(&edits, &mut subjects, &mut objects, &mut rights)
        .map_err(|e| e.to_string())?;
    let analysis =
        ImpactAnalysis::analyze(model.hierarchy(), model.eacm(), strategy, &resolved.script)
            .map_err(|e| e.to_string())?;
    let names = ImpactNames::from_interners(&subjects, &objects, &rights);
    let report = lint_impact(&resolved.script, &analysis, &names, &resolved.lines, opts);
    Ok(ImpactRun {
        script: resolved.script,
        lines: resolved.lines,
        analysis,
        names,
        report,
    })
}

/// `true` when the report contains a `UCRA102` finding — the class
/// `--deny escalation` gates on.
pub fn has_escalation(report: &LintReport) -> bool {
    report
        .diagnostics()
        .iter()
        .any(|d| d.code == PRIVILEGE_ESCALATION.code)
}

/// The human-readable impact rendering: a summary of the analysis, the
/// exact cell diff, then the `UCRA1xx` findings.
pub fn render_impact_text(run: &ImpactRun) -> String {
    let a = &run.analysis;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "impact: strategy {} -> {}, subjects {} -> {}, {} tracked pair(s)",
        a.base_strategy,
        a.final_strategy,
        a.base_subjects,
        a.final_subjects,
        a.pairs.len()
    );
    let _ = writeln!(
        out,
        "  static cone bound: {} cell(s); exact flips: {}{}",
        a.cone_cell_bound(),
        a.diff.changed.len(),
        if a.diff.default_flip() {
            " (+ label-free default flip)"
        } else {
            ""
        }
    );
    let labels = edit_labels(&run.script, &run.names, a.base_subjects);
    for (ix, outcome) in a.outcomes.iter().enumerate() {
        let line = match run.lines.get(ix) {
            Some(l) => format!("line {l}"),
            None => format!("#{}", ix + 1),
        };
        let _ = writeln!(
            out,
            "  edit {line}: {} — {} flip(s){}{}",
            labels[ix],
            outcome.flips.len(),
            if outcome.default_flip {
                ", flips the default sign"
            } else {
                ""
            },
            if outcome.is_noop() && !matches!(run.script.ops[ix], EditOp::AddSubject) {
                ", no-op"
            } else {
                ""
            }
        );
    }
    if !a.diff.changed.is_empty() {
        let _ = writeln!(out, "cells flipped (before -> after):");
        for flip in &a.diff.changed {
            let _ = writeln!(
                out,
                "  {} {}: {} -> {}",
                run.names.subject(flip.subject),
                run.names.pair(flip.object, flip.right),
                flip.before,
                flip.after
            );
        }
    }
    if a.diff.default_flip() {
        let _ = writeln!(
            out,
            "label-free pairs flip: {} -> {}",
            a.diff.default_signs.0, a.diff.default_signs.1
        );
    }
    if !a.added_grants.is_empty() {
        let _ = writeln!(out, "script-added subjects granted:");
        for &(s, o, r) in &a.added_grants {
            let _ = writeln!(out, "  {} {}", run.names.subject(s), run.names.pair(o, r));
        }
    }
    out.push_str(&run.report.render_text());
    out
}

/// The machine-readable impact rendering: one JSON document with an
/// `impact` section (exact diff + per-edit outcomes + overlay counters)
/// and the full `UCRA1xx` lint report under `report`.
pub fn render_impact_json(run: &ImpactRun) -> String {
    let a = &run.analysis;
    let mut out = String::from("{\"version\":1,\"impact\":{");
    json_field(&mut out, "base_strategy", &a.base_strategy.to_string());
    out.push(',');
    json_field(&mut out, "final_strategy", &a.final_strategy.to_string());
    let _ = write!(
        out,
        ",\"base_subjects\":{},\"final_subjects\":{},\"pairs\":{},\"cone_cells\":{},",
        a.base_subjects,
        a.final_subjects,
        a.pairs.len(),
        a.cone_cell_bound()
    );
    out.push_str("\"flips\":[");
    for (i, flip) in a.diff.changed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json_field(&mut out, "subject", &run.names.subject(flip.subject));
        out.push(',');
        json_field(&mut out, "object", &run.names.object(flip.object));
        out.push(',');
        json_field(&mut out, "right", &run.names.right(flip.right));
        out.push(',');
        json_field(&mut out, "before", &flip.before.to_string());
        out.push(',');
        json_field(&mut out, "after", &flip.after.to_string());
        out.push('}');
    }
    let _ = write!(
        out,
        "],\"default_signs\":[\"{}\",\"{}\"],\"default_flip\":{},",
        a.diff.default_signs.0,
        a.diff.default_signs.1,
        a.diff.default_flip()
    );
    out.push_str("\"added_grants\":[");
    for (i, &(s, o, r)) in a.added_grants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json_field(&mut out, "subject", &run.names.subject(s));
        out.push(',');
        json_field(&mut out, "object", &run.names.object(o));
        out.push(',');
        json_field(&mut out, "right", &run.names.right(r));
        out.push('}');
    }
    out.push_str("],\"edits\":[");
    let labels = edit_labels(&run.script, &run.names, a.base_subjects);
    for (ix, outcome) in a.outcomes.iter().enumerate() {
        if ix > 0 {
            out.push(',');
        }
        out.push('{');
        json_field(&mut out, "edit", &labels[ix]);
        out.push_str(",\"line\":");
        match run.lines.get(ix) {
            Some(l) => out.push_str(&l.to_string()),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"cone_cells\":{},\"flips\":{},\"default_flip\":{},\"noop\":{}}}",
            a.cones[ix].cell_bound(a.final_subjects, a.pairs.len()),
            outcome.flips.len(),
            outcome.default_flip,
            outcome.is_noop() && !matches!(run.script.ops[ix], EditOp::AddSubject)
        );
    }
    let stats = &a.overlay_stats;
    let _ = write!(
        out,
        "],\"overlay\":{{\"full_invalidations\":{},\"sweeps\":{},\"matrix_repairs\":{},\
         \"partial_repairs\":{}}}}},\"report\":",
        stats.full_invalidations, stats.sweeps, stats.matrix_repairs, stats.partial_repairs
    );
    out.push_str(&run.report.render_json());
    out.push('}');
    let _ = json_string; // shared helper kept in one place
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AccessModel {
        let mut m = AccessModel::new();
        m.add_membership("staff", "alice").unwrap();
        m.add_membership("staff", "bob").unwrap();
        m.grant("staff", "report", "read").unwrap();
        m.deny("bob", "report", "write").unwrap();
        m.set_default_strategy("D-LP-".parse().unwrap());
        m
    }

    #[test]
    fn glob_matches_pairs() {
        assert!(glob_match("report/*", "report/read"));
        assert!(glob_match("*/write", "report/write"));
        assert!(glob_match("re?ort/read", "report/read"));
        assert!(!glob_match("report/write", "report/read"));
        assert!(glob_match("*", "anything/at-all"));
    }

    #[test]
    fn derived_revoke_is_flagged_as_noop() {
        // alice's read is derived via staff; revoking her (redundant)
        // explicit grant changes nothing.
        let mut m = model();
        m.grant("alice", "report", "read").unwrap();
        let run =
            run_impact(&m, "revoke alice report read\n", None, &Default::default()).expect("runs");
        let noop = run
            .report
            .diagnostics()
            .iter()
            .find(|d| d.code == "UCRA100")
            .expect("no-op revoke flagged");
        assert!(noop.message.contains("alice"), "{}", noop.message);
        assert_eq!(noop.span.line, Some(1));
        assert!(run.analysis.diff.is_empty());
    }

    #[test]
    fn escalation_is_flagged_and_filtered_by_sensitive() {
        // The explicit `-` must be revoked before the opposite sign can
        // be recorded (the Eacm rejects contradictions).
        let script = "revoke bob report write\ngrant bob report write\n";
        let run = run_impact(&model(), script, None, &Default::default()).expect("runs");
        assert!(has_escalation(&run.report), "{}", run.report.render_text());
        // A non-matching sensitive pattern silences it.
        let opts = ImpactOptions {
            sensitive: Some("payroll/*".to_string()),
            ..Default::default()
        };
        let run = run_impact(&model(), script, None, &opts).expect("runs");
        assert!(!has_escalation(&run.report));
        // A matching one keeps it.
        let opts = ImpactOptions {
            sensitive: Some("report/wr*".to_string()),
            ..Default::default()
        };
        let run = run_impact(&model(), script, None, &opts).expect("runs");
        assert!(has_escalation(&run.report));
    }

    #[test]
    fn shadowed_and_default_flip_and_mass_flip_are_flagged() {
        let script = "\
            grant alice report read\n\
            revoke alice report read\n\
            strategy D+LMP+\n\
            strategy GMP-\n";
        let run = run_impact(&model(), script, None, &Default::default()).expect("runs");
        let codes: Vec<_> = run.report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"UCRA101"), "{codes:?}"); // both shadowed pairs
        assert!(codes.contains(&"UCRA104"), "{codes:?}"); // D- base -> D+ flip
        let shadowed: Vec<_> = run
            .report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "UCRA101")
            .collect();
        assert_eq!(shadowed.len(), 2, "label + strategy shadowing");
        assert_eq!(shadowed[0].span.line, Some(1));
    }

    #[test]
    fn mass_flip_threshold_gates_ucra103() {
        // Swapping D-LP- -> D+LMP+ retips every cell derived only from
        // the default: a mass flip at threshold 0, silent at 100.
        let script = "strategy D+LMP+\n";
        let opts = ImpactOptions {
            mass_flip_pct: 0,
            ..Default::default()
        };
        let run = run_impact(&model(), script, None, &opts).expect("runs");
        assert!(
            run.report.diagnostics().iter().any(|d| d.code == "UCRA103"),
            "{}",
            run.report.render_text()
        );
        let opts = ImpactOptions {
            mass_flip_pct: 100,
            ..Default::default()
        };
        let run = run_impact(&model(), script, None, &opts).expect("runs");
        assert!(!run.report.diagnostics().iter().any(|d| d.code == "UCRA103"));
    }

    #[test]
    fn renderers_are_balanced_and_name_new_subjects() {
        let script = "\
            subject contractors\n\
            member staff contractors\n\
            grant contractors report write\n";
        let run = run_impact(&model(), script, None, &Default::default()).expect("runs");
        let text = render_impact_text(&run);
        assert!(text.contains("contractors"), "{text}");
        let json = render_impact_json(&run);
        let mut depth = 0i32;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "{json}");
        }
        assert_eq!(depth, 0, "{json}");
        assert!(json.contains("\"impact\":{"), "{json}");
        assert!(json.contains("\"report\":{"), "{json}");
        assert!(json.contains("\"rules\":["), "{json}");
        assert!(json.contains("contractors"), "{json}");
        assert!(json.contains("\"full_invalidations\":0"), "{json}");
    }

    #[test]
    fn strategy_is_required_from_model_or_caller() {
        let mut m = AccessModel::new();
        m.add_membership("g", "m").unwrap();
        let err = run_impact(&m, "grant g o r\n", None, &Default::default()).unwrap_err();
        assert!(err.contains("no strategy"), "{err}");
        let run = run_impact(
            &m,
            "grant g o r\n",
            Some("D-LP-".parse().unwrap()),
            &Default::default(),
        )
        .expect("explicit strategy");
        assert_eq!(run.analysis.base_strategy, "D-LP-".parse().unwrap());
    }
}
