//! # `ucra-lint` — static policy analysis for UCRA models
//!
//! Most conflict-resolution mistakes are *configuration* mistakes: an
//! illegitimate strategy mnemonic (only 48 of the 54 raw parameter
//! points are legitimate, §2.2 of the paper), explicit labels that
//! propagation already derives, conflicts the chosen strategy resolves
//! to decoration, or outcomes that fall through every policy to the
//! preference fallback. This crate finds them **before** any query
//! runs: a rule registry with stable codes (`UCRA000`…), severities,
//! per-diagnostic spans, and human + JSON renderers.
//!
//! ## Entry points
//!
//! * [`lint_policy_text`] — lint a policy in the line-oriented text
//!   format, with source-line spans. Bad `strategy` mnemonics are
//!   reported (with a nearest-legitimate-mnemonic suggestion) instead of
//!   aborting the whole analysis.
//! * [`lint_model`] — lint a loaded [`AccessModel`].
//! * [`lint_session`] — lint raw core parts (hierarchy + matrix +
//!   strategy), e.g. an [`AccessSession`] about to be served.
//! * [`load_session`] — build an [`AccessSession`], but refuse (with the
//!   report) when any error-severity finding is present — load-time
//!   validation for services that must reject bad policies up front.
//!
//! ```
//! let report = ucra_lint::lint_policy_text(
//!     "member staff alice\n\
//!      subject ghost\n\
//!      strategy D-LP-\n",
//! );
//! assert_eq!(report.diagnostics().len(), 1); // UCRA010: `ghost` is orphaned
//! assert_eq!(report.diagnostics()[0].code, "UCRA010");
//! assert_eq!(report.exit_code(false), 0);
//! assert_eq!(report.exit_code(true), 2); // --deny warnings
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod diagnostics;
pub mod impact;
mod rules;
mod source_map;
mod suggest;

pub use context::LintContext;
pub use diagnostics::{Diagnostic, LintReport, RuleSweepStats, Severity, Span, SpanItem};
pub use impact::{
    glob_match, has_escalation, lint_impact, render_impact_json, render_impact_text, run_impact,
    ImpactNames, ImpactOptions, ImpactRun,
};
pub use rules::{codes, explain, registry, LintRule, RuleInfo};
pub use source_map::SourceMap;
pub use suggest::{edit_distance, nearest_mnemonic};

use ucra_core::{AccessSession, Eacm, Strategy, SubjectDag};
use ucra_store::{text, AccessModel, StoreError};

/// Lints a loaded model, attaching source lines when a [`SourceMap`] is
/// supplied.
///
/// A rule that cannot run (propagation overflow, malformed ids) does not
/// abort the others: the failure surfaces as an error-severity
/// diagnostic under the rule's own code.
pub fn lint_model(model: &AccessModel, source: Option<&SourceMap>) -> LintReport {
    let cx = LintContext::from_model(model, source);
    run_rules(&cx, Vec::new())
}

/// Lints raw core parts: the load-time entry point for sessions that
/// never had names.
pub fn lint_session(hierarchy: &SubjectDag, eacm: &Eacm, strategy: Option<Strategy>) -> LintReport {
    let cx = LintContext::from_parts(hierarchy, eacm, strategy);
    run_rules(&cx, Vec::new())
}

/// Builds an [`AccessSession`] only when the policy has no
/// error-severity findings; otherwise returns the full report.
///
/// Warnings and infos do not block loading — services that want
/// stricter gates can call [`lint_session`] and apply their own
/// threshold via [`LintReport::exit_code`].
pub fn load_session(
    hierarchy: SubjectDag,
    eacm: Eacm,
    strategy: Strategy,
) -> Result<AccessSession, LintReport> {
    let report = lint_session(&hierarchy, &eacm, Some(strategy));
    if report.has_errors() {
        return Err(report);
    }
    Ok(AccessSession::new(hierarchy, eacm, strategy))
}

/// Lints a policy in the line-oriented text format.
///
/// The text front end runs first: every `strategy` directive is checked
/// against the 48 legitimate mnemonics. Illegitimate ones become
/// `UCRA001` errors (with a nearest-mnemonic suggestion) and are blanked
/// out so the rest of the policy still parses and the model-level rules
/// still run; legitimate-but-non-canonical spellings (the paper's
/// Unicode superscripts) become `UCRA002` warnings. A text that still
/// fails to parse yields a single `UCRA000` error.
pub fn lint_policy_text(input: &str) -> LintReport {
    let source = SourceMap::scan(input);
    let mut diagnostics = Vec::new();
    let mut sanitised: Vec<String> = input.lines().map(str::to_string).collect();
    for &(line, ref spelling) in source.strategies() {
        match spelling.parse::<Strategy>() {
            Ok(strategy) => {
                let canonical = strategy.mnemonic();
                if *spelling != canonical {
                    diagnostics.push(Diagnostic {
                        code: rules::NON_CANONICAL_STRATEGY.code,
                        rule: rules::NON_CANONICAL_STRATEGY.name,
                        severity: rules::NON_CANONICAL_STRATEGY.severity,
                        message: format!(
                            "strategy is spelled `{spelling}`; the canonical mnemonic \
                             is `{canonical}`"
                        ),
                        span: Span {
                            item: SpanItem::Strategy(spelling.clone()),
                            line: Some(line),
                        },
                        help: Some(format!("write `strategy {canonical}`")),
                    });
                }
            }
            Err(err) => {
                let (suggestion, distance) = nearest_mnemonic(spelling);
                let help = if distance <= 2 {
                    format!("did you mean `{suggestion}`?")
                } else {
                    format!(
                        "the nearest legitimate instance is `{suggestion}`; \
                         see §2.2 of the paper for the 48 instances"
                    )
                };
                diagnostics.push(Diagnostic {
                    code: rules::UNKNOWN_STRATEGY.code,
                    rule: rules::UNKNOWN_STRATEGY.name,
                    severity: rules::UNKNOWN_STRATEGY.severity,
                    message: format!(
                        "`{spelling}` is not one of the 48 legitimate strategy \
                         instances: {err}"
                    ),
                    span: Span {
                        item: SpanItem::Strategy(spelling.clone()),
                        line: Some(line),
                    },
                    help: Some(help),
                });
                // Blank the directive so the rest of the policy still
                // parses and the structural rules still run.
                sanitised[line - 1] = String::new();
            }
        }
    }
    match text::parse(&sanitised.join("\n")) {
        Ok(model) => {
            let cx = LintContext::from_model(&model, Some(&source));
            run_rules(&cx, diagnostics)
        }
        Err(err) => {
            let line = match &err {
                StoreError::Malformed(msg) => msg
                    .split("line ")
                    .nth(1)
                    .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|digits| digits.parse().ok()),
                _ => None,
            };
            diagnostics.push(Diagnostic {
                code: rules::PARSE_ERROR.code,
                rule: rules::PARSE_ERROR.name,
                severity: rules::PARSE_ERROR.severity,
                message: format!("the policy text cannot be parsed: {err}"),
                span: Span {
                    item: SpanItem::Model,
                    line,
                },
                help: None,
            });
            LintReport::from_diagnostics(diagnostics)
        }
    }
}

/// Runs every registry rule over `cx`, appending to already-collected
/// text-phase diagnostics.
fn run_rules(cx: &LintContext<'_>, mut diagnostics: Vec<Diagnostic>) -> LintReport {
    for rule in registry() {
        match rule.check(cx) {
            Ok(found) => diagnostics.extend(found),
            Err(err) => diagnostics.push(Diagnostic {
                code: rule.info().code,
                rule: rule.info().name,
                severity: Severity::Error,
                message: format!("rule `{}` could not run: {err}", rule.info().name),
                span: Span::item(SpanItem::Model),
                help: None,
            }),
        }
    }
    LintReport::from_diagnostics(diagnostics).with_sweep_stats(cx.take_sweep_stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "\
member S1 S3
member S2 S3
member S2 User
member S3 S5
member S5 User
member S6 S5
member S6 User
grant S2 obj read
deny S5 obj read
strategy D-LMP+
";

    #[test]
    fn semantic_rules_report_pruned_sweep_stats() {
        let report = lint_policy_text(CLEAN);
        let rules: Vec<_> = report.sweep_stats().iter().map(|s| s.rule).collect();
        assert_eq!(rules, vec!["dead-conflict", "redundant-label"]);
        for s in report.sweep_stats() {
            assert!(s.pairs_probed >= 1, "{}: no pairs probed", s.rule);
            assert!(
                s.active_rows_max <= s.subjects,
                "{}: active set cannot exceed the hierarchy",
                s.rule
            );
            assert!(s.active_rows_total >= s.active_rows_max);
        }
        let json = report.render_json();
        assert!(
            json.contains("\"kernel\":[{\"rule\":\"dead-conflict\""),
            "{json}"
        );
        assert!(json.contains("\"active_rows_max\""), "{json}");
    }

    #[test]
    fn motivating_example_lints_clean() {
        let report = lint_policy_text(CLEAN);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn unknown_mnemonic_is_reported_with_suggestion_and_rules_still_run() {
        let report =
            lint_policy_text("member g m\nsubject lonely\ngrant g obj read\nstrategy D+LMPX\n");
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"UCRA001"), "{codes:?}");
        assert!(codes.contains(&"UCRA010"), "{codes:?}"); // `lonely`
        assert!(codes.contains(&"UCRA003"), "{codes:?}"); // blanked strategy
        let bad = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "UCRA001")
            .unwrap();
        assert_eq!(bad.span.line, Some(4));
        assert!(
            bad.help.as_deref().unwrap_or("").contains("D+LMP"),
            "{:?}",
            bad.help
        );
        assert_eq!(report.exit_code(false), 1);
    }

    #[test]
    fn superscript_spelling_is_non_canonical() {
        let report = lint_policy_text("member g m\ngrant g obj read\nstrategy D⁺LP⁻\n");
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, "UCRA002");
        assert!(d.message.contains("D+LP-"), "{}", d.message);
        assert_eq!(report.diagnostics().len(), 1);
    }

    #[test]
    fn unparseable_text_yields_ucra000_with_line() {
        let report = lint_policy_text("member a b\nfrobnicate x\n");
        assert_eq!(report.diagnostics().len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, "UCRA000");
        assert_eq!(d.span.line, Some(2));
        assert_eq!(report.exit_code(false), 1);
    }

    #[test]
    fn load_session_refuses_nothing_but_errors() {
        use ucra_core::Sign;
        // A warning-only policy (orphan subject) loads fine.
        let mut h = SubjectDag::new();
        let g = h.add_subject();
        let m = h.add_subject();
        h.add_membership(g, m).unwrap();
        h.add_subject(); // orphan
        let mut eacm = Eacm::new();
        eacm.set(g, ucra_core::ObjectId(0), ucra_core::RightId(0), Sign::Pos)
            .unwrap();
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let session = load_session(h.clone(), eacm.clone(), strategy).expect("warnings load");
        assert_eq!(session.strategy(), strategy);
        // And the same parts lint with the orphan warning.
        let report = lint_session(&h, &eacm, Some(strategy));
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(report.diagnostics()[0].code, "UCRA010");
        assert!(report.diagnostics()[0].message.contains("`s2`"));
    }

    #[test]
    fn non_canonical_instance_is_flagged() {
        use ucra_core::{DefaultRule, LocalityRule, MajorityRule, Sign};
        let mut h = SubjectDag::new();
        let g = h.add_subject();
        let m = h.add_subject();
        h.add_membership(g, m).unwrap();
        let mut eacm = Eacm::new();
        eacm.set(g, ucra_core::ObjectId(0), ucra_core::RightId(0), Sign::Pos)
            .unwrap();
        // serde materialises what Strategy::new would canonicalise; the
        // raw constructor mirrors that surface.
        let raw = Strategy::from_raw_parts(
            DefaultRule::Pos,
            LocalityRule::Identity,
            MajorityRule::After,
            Sign::Pos,
        );
        assert!(!raw.is_canonical());
        let report = lint_session(&h, &eacm, Some(raw));
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "UCRA002")
            .expect("non-canonical instance flagged");
        assert!(d.message.contains("D+MP+"), "{}", d.message);
    }
}
