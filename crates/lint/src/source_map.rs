//! Line numbers for the line-oriented policy format.
//!
//! The parser in `ucra_store::text` does not keep positions; this module
//! re-scans the text with the same tokenisation (comments stripped at
//! `#`, whitespace-separated words) and records the first line each
//! subject, label and strategy directive appears on, so diagnostics can
//! point back into the file the administrator edits.

use std::collections::HashMap;

/// First-occurrence line numbers (1-based) for the items of one policy
/// text.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    subjects: HashMap<String, usize>,
    labels: HashMap<(String, String, String), usize>,
    strategies: Vec<(usize, String)>,
}

impl SourceMap {
    /// Scans a policy text. Malformed lines are skipped — the scanner
    /// must survive any input the parser would reject, since diagnostics
    /// about broken files are exactly when positions matter most.
    pub fn scan(text: &str) -> SourceMap {
        let mut map = SourceMap::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let stripped = raw.split('#').next().unwrap_or("");
            let words: Vec<&str> = stripped.split_whitespace().collect();
            let mut subject = |name: &str| {
                map.subjects.entry(name.to_string()).or_insert(line);
            };
            match words.as_slice() {
                ["subject", name] => subject(name),
                ["member", group, member] => {
                    subject(group);
                    subject(member);
                }
                ["grant" | "deny", s, o, r] => {
                    subject(s);
                    map.labels
                        .entry((s.to_string(), o.to_string(), r.to_string()))
                        .or_insert(line);
                }
                ["strategy", mnemonic] => {
                    map.strategies.push((line, mnemonic.to_string()));
                }
                _ => {}
            }
        }
        map
    }

    /// Line of a subject's first mention.
    pub fn subject_line(&self, name: &str) -> Option<usize> {
        self.subjects.get(name).copied()
    }

    /// Line of a `grant`/`deny` directive.
    pub fn label_line(&self, subject: &str, object: &str, right: &str) -> Option<usize> {
        self.labels
            .get(&(subject.to_string(), object.to_string(), right.to_string()))
            .copied()
    }

    /// All `strategy` directives with their raw mnemonic spelling, in
    /// file order.
    pub fn strategies(&self) -> &[(usize, String)] {
        &self.strategies
    }

    /// Line of the last `strategy` directive (the one that wins).
    pub fn strategy_line(&self) -> Option<usize> {
        self.strategies.last().map(|&(line, _)| line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_first_occurrences() {
        let map = SourceMap::scan(
            "# header\n\
             member S1 S3\n\
             member S2 S3\n\
             subject S4\n\
             grant S2 obj read  # trailing comment\n\
             deny S5 obj read\n\
             strategy D+LMP-\n",
        );
        assert_eq!(map.subject_line("S1"), Some(2));
        assert_eq!(map.subject_line("S3"), Some(2));
        assert_eq!(map.subject_line("S4"), Some(4));
        assert_eq!(map.subject_line("S5"), Some(6));
        assert_eq!(map.label_line("S2", "obj", "read"), Some(5));
        assert_eq!(map.label_line("S5", "obj", "read"), Some(6));
        assert_eq!(map.strategy_line(), Some(7));
        assert_eq!(map.subject_line("ghost"), None);
    }

    #[test]
    fn survives_malformed_lines_and_keeps_all_strategies() {
        let map = SourceMap::scan("frobnicate x\nstrategy BAD1\nstrategy D-LP-\n");
        assert_eq!(map.strategies().len(), 2);
        assert_eq!(map.strategies()[0], (2, "BAD1".to_string()));
        assert_eq!(map.strategy_line(), Some(3));
    }
}
