//! The generator's planted smells and the analyser agree: every smell
//! `ucra_workload::smells::inject` plants is flagged under its expected
//! diagnostic code, pointing at the planted subject.

use ucra_core::{Eacm, ObjectId, RightId, SubjectDag};
use ucra_lint::{lint_session, SpanItem};
use ucra_workload::smells;

const PAIR: (ObjectId, RightId) = (ObjectId(0), RightId(0));

fn span_subject(item: &SpanItem) -> Option<&str> {
    match item {
        SpanItem::Subject(name) => Some(name),
        SpanItem::Label { subject, .. } => Some(subject),
        _ => None,
    }
}

#[test]
fn every_planted_smell_is_flagged() {
    // A small clean base: one group granting to one member.
    let mut hierarchy = SubjectDag::new();
    let g = hierarchy.add_subject();
    let u = hierarchy.add_subject();
    hierarchy.add_membership(g, u).unwrap();
    let mut eacm = Eacm::new();
    eacm.grant(g, PAIR.0, PAIR.1).unwrap();

    let (strategy, manifest) = smells::inject(&mut hierarchy, &mut eacm, PAIR.0, PAIR.1);
    let report = lint_session(&hierarchy, &eacm, Some(strategy));

    for planted in &manifest {
        let matched = report.diagnostics().iter().any(|d| {
            d.code == planted.code
                && match planted.subject {
                    // Subject-shaped plants must be attributed to the
                    // planted subject (nameless sessions use `s<i>`).
                    Some(s) => span_subject(&d.span.item) == Some(&format!("s{}", s.index())),
                    None => true,
                }
        });
        assert!(
            matched,
            "planted smell not flagged: {planted:?}\nreport:\n{}",
            report.render_text()
        );
    }

    // And nothing is blamed on the clean base policy.
    for d in report.diagnostics() {
        if let Some(name) = span_subject(&d.span.item) {
            assert_ne!(name, "s0", "false positive on the base group:\n{d:?}");
            assert_ne!(name, "s1", "false positive on the base member:\n{d:?}");
        }
    }
}

#[test]
fn injection_into_an_empty_policy_is_flagged_too() {
    let mut hierarchy = SubjectDag::new();
    let mut eacm = Eacm::new();
    let (strategy, manifest) = smells::inject(&mut hierarchy, &mut eacm, PAIR.0, PAIR.1);
    let report = lint_session(&hierarchy, &eacm, Some(strategy));
    let found: std::collections::BTreeSet<&str> =
        report.diagnostics().iter().map(|d| d.code).collect();
    for planted in &manifest {
        assert!(found.contains(planted.code), "missing {planted:?}");
    }
}
