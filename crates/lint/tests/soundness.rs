//! Soundness of the redundant-label rule (`UCRA020`).
//!
//! The rule claims a flagged label is *derived*: deleting it changes no
//! effective authorization under **any** of the 48 legitimate
//! strategies. This property test re-verifies every flagged label
//! against [`ucra_core::EffectiveMatrix`] — the independent
//! per-strategy resolver, not the shared-sweep fast path the rule uses
//! internally — over randomly generated DAGs and label placements.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use ucra_core::{Eacm, EffectiveMatrix, ObjectId, RightId, Sign, Strategy, SubjectDag, SubjectId};
use ucra_lint::{lint_session, SpanItem};

const PAIR: (ObjectId, RightId) = (ObjectId(0), RightId(0));

#[derive(Debug, Clone)]
struct RandomPolicy {
    subjects: usize,
    /// Edges (parent, child) with parent < child, so the graph is acyclic.
    edges: Vec<(usize, usize)>,
    labels: Vec<(usize, Sign)>,
    strategy_ix: usize,
}

fn arb_policy() -> impl proptest::strategy::Strategy<Value = RandomPolicy> {
    (
        2usize..9,
        proptest::collection::vec((0usize..64, 0usize..64), 0..16),
        proptest::collection::vec((0usize..64, any::<bool>()), 1..9),
        0usize..Strategy::all_instances().len(),
    )
        .prop_map(|(subjects, raw_edges, raw_labels, strategy_ix)| {
            // Orient every raw pair low → high so the graph is acyclic;
            // self-loops are dropped.
            let edges = raw_edges
                .iter()
                .filter_map(|&(a, b)| {
                    let (a, b) = (a % subjects, b % subjects);
                    match a.cmp(&b) {
                        std::cmp::Ordering::Less => Some((a, b)),
                        std::cmp::Ordering::Equal => None,
                        std::cmp::Ordering::Greater => Some((b, a)),
                    }
                })
                .collect();
            let labels = raw_labels
                .iter()
                .map(|&(s, pos)| (s % subjects, if pos { Sign::Pos } else { Sign::Neg }))
                .collect();
            RandomPolicy {
                subjects,
                edges,
                labels,
                strategy_ix,
            }
        })
}

fn build(policy: &RandomPolicy) -> (SubjectDag, Eacm) {
    let mut hierarchy = SubjectDag::new();
    let ids: Vec<SubjectId> = (0..policy.subjects)
        .map(|_| hierarchy.add_subject())
        .collect();
    for &(parent, child) in &policy.edges {
        // Duplicate edges are rejected; that is fine for generation.
        let _ = hierarchy.add_membership(ids[parent], ids[child]);
    }
    let mut eacm = Eacm::new();
    for &(subject, sign) in &policy.labels {
        // A contradictory second label on the same subject is rejected
        // by the matrix; the first one wins.
        let _ = eacm.set(ids[subject], PAIR.0, PAIR.1, sign);
    }
    (hierarchy, eacm)
}

/// The subject index encoded in a nameless-session span (`s<i>`).
fn span_subject(item: &SpanItem) -> Option<usize> {
    match item {
        SpanItem::Label { subject, .. } => subject.strip_prefix('s')?.parse().ok(),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `UCRA020` finding survives independent re-verification:
    /// unsetting the flagged label leaves the effective matrix unchanged
    /// under all 48 strategies.
    #[test]
    fn redundant_label_rule_is_sound(policy in arb_policy()) {
        let (hierarchy, eacm) = build(&policy);
        let strategy = Strategy::all_instances()[policy.strategy_ix];
        let report = lint_session(&hierarchy, &eacm, Some(strategy));
        for diagnostic in report.diagnostics().iter().filter(|d| d.code == "UCRA020") {
            let subject = span_subject(&diagnostic.span.item)
                .expect("UCRA020 always spans a label");
            let mut trimmed = eacm.clone();
            trimmed.unset(SubjectId::from_index(subject), PAIR.0, PAIR.1);
            for &candidate in &Strategy::all_instances() {
                let with =
                    EffectiveMatrix::compute_for_pairs(&hierarchy, &eacm, candidate, &[PAIR])
                        .unwrap();
                let without =
                    EffectiveMatrix::compute_for_pairs(&hierarchy, &trimmed, candidate, &[PAIR])
                        .unwrap();
                prop_assert!(
                    with.diff(&without).is_empty(),
                    "UCRA020 unsound: removing s{subject} changes outcomes under {candidate}"
                );
            }
        }
    }

    /// Dead-conflict findings (`UCRA021`) are sound in the weaker sense:
    /// removal is invariant under the *configured* strategy, and NOT
    /// invariant under all 48 (that would be `UCRA020`).
    #[test]
    fn dead_conflict_rule_is_sound(policy in arb_policy()) {
        let (hierarchy, eacm) = build(&policy);
        let strategy = Strategy::all_instances()[policy.strategy_ix];
        let report = lint_session(&hierarchy, &eacm, Some(strategy));
        for diagnostic in report.diagnostics().iter().filter(|d| d.code == "UCRA021") {
            let subject = span_subject(&diagnostic.span.item)
                .expect("UCRA021 always spans a label");
            let mut trimmed = eacm.clone();
            trimmed.unset(SubjectId::from_index(subject), PAIR.0, PAIR.1);
            let with =
                EffectiveMatrix::compute_for_pairs(&hierarchy, &eacm, strategy, &[PAIR]).unwrap();
            let without =
                EffectiveMatrix::compute_for_pairs(&hierarchy, &trimmed, strategy, &[PAIR])
                    .unwrap();
            prop_assert!(
                with.diff(&without).is_empty(),
                "UCRA021 unsound: removing s{subject} changes outcomes under {strategy}"
            );
            let somewhere_live = Strategy::all_instances().iter().any(|&candidate| {
                let with =
                    EffectiveMatrix::compute_for_pairs(&hierarchy, &eacm, candidate, &[PAIR])
                        .unwrap();
                let without =
                    EffectiveMatrix::compute_for_pairs(&hierarchy, &trimmed, candidate, &[PAIR])
                        .unwrap();
                !with.diff(&without).is_empty()
            });
            prop_assert!(
                somewhere_live,
                "UCRA021 finding for s{subject} is invariant under all 48 (should be UCRA020)"
            );
        }
    }
}
