//! Golden-file tests: each fixture policy is linted and both renderings
//! (human text and JSON) are compared byte-for-byte against checked-in
//! `.expected` / `.json` siblings.
//!
//! Regenerate the goldens with `BLESS=1 cargo test -p ucra-lint --test
//! golden` after an intentional output change, then review the diff.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str) -> ucra_lint::LintReport {
    let path = fixtures_dir().join(format!("{name}.policy"));
    let policy =
        fs::read_to_string(&path).unwrap_or_else(|err| panic!("read {}: {err}", path.display()));
    ucra_lint::lint_policy_text(&policy)
}

fn check_golden(name: &str, expected_codes: &[&str]) {
    let report = lint_fixture(name);
    let found: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
    assert_eq!(found, expected_codes, "diagnostic codes for `{name}`");
    for (ext, rendered) in [
        ("expected", report.render_text()),
        ("json", report.render_json()),
    ] {
        let path = fixtures_dir().join(format!("{name}.{ext}"));
        if std::env::var_os("BLESS").is_some() {
            fs::write(&path, &rendered).unwrap();
        }
        let want = fs::read_to_string(&path).unwrap_or_default();
        assert_eq!(
            rendered, want,
            "golden mismatch for {name}.{ext}; rerun with BLESS=1 and review the diff"
        );
    }
}

#[test]
fn clean_policy_is_silent() {
    check_golden("clean", &[]);
    assert_eq!(lint_fixture("clean").exit_code(true), 0);
}

#[test]
fn smelly_policy_flags_every_planted_smell() {
    check_golden(
        "smelly",
        &[
            "UCRA010", // subject O
            "UCRA011", // subject E
            "UCRA020", // grant A2
            "UCRA021", // deny B
            "UCRA012", // whole-model fragmentation (no line)
            "UCRA030", // obj/read pair (no line)
        ],
    );
    let report = lint_fixture("smelly");
    assert_eq!(report.exit_code(false), 0, "warnings alone exit 0");
    assert_eq!(report.exit_code(true), 2, "--deny warnings exits 2");
}

#[test]
fn unknown_strategy_is_an_error_with_suggestion() {
    check_golden("unknown_strategy", &["UCRA001", "UCRA003"]);
    assert_eq!(lint_fixture("unknown_strategy").exit_code(false), 1);
}

#[test]
fn superscript_spelling_warns() {
    check_golden("superscript", &["UCRA002"]);
}

#[test]
fn missing_strategy_is_informational() {
    check_golden("no_strategy", &["UCRA003"]);
    assert_eq!(
        lint_fixture("no_strategy").exit_code(true),
        0,
        "infos never fail"
    );
}

#[test]
fn unparseable_policy_is_a_single_parse_error() {
    check_golden("parse_error", &["UCRA000"]);
}

/// Every registered diagnostic code must be exercised by at least one
/// golden fixture — a new rule without a fixture fails here.
#[test]
fn fixtures_cover_every_diagnostic_code() {
    let fixtures = [
        "clean",
        "smelly",
        "unknown_strategy",
        "superscript",
        "no_strategy",
        "parse_error",
    ];
    let mut covered = BTreeSet::new();
    for name in fixtures {
        for d in lint_fixture(name).diagnostics() {
            covered.insert(d.code);
        }
    }
    let registered: BTreeSet<&str> = ucra_lint::codes().iter().map(|info| info.code).collect();
    let missing: Vec<&&str> = registered.difference(&covered).collect();
    assert!(missing.is_empty(), "codes without a fixture: {missing:?}");
    let unknown: Vec<&&str> = covered.difference(&registered).collect();
    assert!(
        unknown.is_empty(),
        "fixtures emit unregistered codes: {unknown:?}"
    );
}
