//! Golden-file tests: each fixture policy is linted and both renderings
//! (human text and JSON) are compared byte-for-byte against checked-in
//! `.expected` / `.json` siblings.
//!
//! Regenerate the goldens with `BLESS=1 cargo test -p ucra-lint --test
//! golden` after an intentional output change, then review the diff.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str) -> ucra_lint::LintReport {
    let path = fixtures_dir().join(format!("{name}.policy"));
    let policy =
        fs::read_to_string(&path).unwrap_or_else(|err| panic!("read {}: {err}", path.display()));
    ucra_lint::lint_policy_text(&policy)
}

fn check_golden(name: &str, expected_codes: &[&str]) {
    let report = lint_fixture(name);
    let found: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
    assert_eq!(found, expected_codes, "diagnostic codes for `{name}`");
    compare(name, report.render_text(), report.render_json());
}

fn compare(name: &str, text: String, json: String) {
    for (ext, rendered) in [("expected", text), ("json", json)] {
        let path = fixtures_dir().join(format!("{name}.{ext}"));
        if std::env::var_os("BLESS").is_some() {
            fs::write(&path, &rendered).unwrap();
        }
        let want = fs::read_to_string(&path).unwrap_or_default();
        assert_eq!(
            rendered, want,
            "golden mismatch for {name}.{ext}; rerun with BLESS=1 and review the diff"
        );
    }
}

/// Runs a `<name>.policy` + `<name>.edits` impact fixture through the
/// same text/JSON golden comparison as the policy lints.
fn impact_fixture(name: &str) -> ucra_lint::ImpactRun {
    let policy = fs::read_to_string(fixtures_dir().join(format!("{name}.policy"))).unwrap();
    let edits = fs::read_to_string(fixtures_dir().join(format!("{name}.edits"))).unwrap();
    let model = ucra_store::text::parse(&policy).expect("fixture policy parses");
    ucra_lint::run_impact(&model, &edits, None, &ucra_lint::ImpactOptions::default())
        .expect("fixture impact runs")
}

fn check_impact_golden(name: &str, expected_codes: &[&str]) {
    let run = impact_fixture(name);
    let found: Vec<&str> = run.report.diagnostics().iter().map(|d| d.code).collect();
    assert_eq!(found, expected_codes, "diagnostic codes for `{name}`");
    compare(
        name,
        ucra_lint::render_impact_text(&run),
        ucra_lint::render_impact_json(&run),
    );
}

#[test]
fn clean_policy_is_silent() {
    check_golden("clean", &[]);
    assert_eq!(lint_fixture("clean").exit_code(true), 0);
}

#[test]
fn smelly_policy_flags_every_planted_smell() {
    check_golden(
        "smelly",
        &[
            "UCRA010", // subject O
            "UCRA011", // subject E
            "UCRA020", // grant A2
            "UCRA021", // deny B
            "UCRA012", // whole-model fragmentation (no line)
            "UCRA030", // obj/read pair (no line)
        ],
    );
    let report = lint_fixture("smelly");
    assert_eq!(report.exit_code(false), 0, "warnings alone exit 0");
    assert_eq!(report.exit_code(true), 2, "--deny warnings exits 2");
}

#[test]
fn unknown_strategy_is_an_error_with_suggestion() {
    check_golden("unknown_strategy", &["UCRA001", "UCRA003"]);
    assert_eq!(lint_fixture("unknown_strategy").exit_code(false), 1);
}

#[test]
fn superscript_spelling_warns() {
    check_golden("superscript", &["UCRA002"]);
}

#[test]
fn missing_strategy_is_informational() {
    check_golden("no_strategy", &["UCRA003"]);
    assert_eq!(
        lint_fixture("no_strategy").exit_code(true),
        0,
        "infos never fail"
    );
}

#[test]
fn unparseable_policy_is_a_single_parse_error() {
    check_golden("parse_error", &["UCRA000"]);
}

#[test]
fn noop_edits_are_flagged() {
    check_impact_golden("impact_noop", &["UCRA100", "UCRA100"]);
    let run = impact_fixture("impact_noop");
    assert!(run.analysis.diff.is_empty(), "no-op script has empty diff");
    assert_eq!(run.analysis.overlay_stats.full_invalidations, 0);
}

#[test]
fn shadowed_edits_and_default_churn_are_flagged() {
    check_impact_golden(
        "impact_shadowed",
        &[
            "UCRA100", // grant alice (already derived) — line 1
            "UCRA101", // … and overwritten by the revoke — line 1
            "UCRA100", // the revoke removes that grant, net nothing — line 2
            "UCRA101", // strategy D+LMP+ replaced — line 3
            "UCRA103", // D+LMP+ retips the write column — line 3
            "UCRA104", // … and flips the default — line 3
            "UCRA103", // GMP- retips it back — line 4
            "UCRA104", // … churning the default back too — line 4
        ],
    );
}

#[test]
fn escalation_fixture_trips_the_deny_gate() {
    let run = impact_fixture("impact_escalation");
    assert!(ucra_lint::has_escalation(&run.report));
    check_impact_golden(
        "impact_escalation",
        &["UCRA100", "UCRA101", "UCRA102", "UCRA102"],
    );
}

#[test]
fn mass_strategy_flip_is_flagged() {
    let run = impact_fixture("impact_mass_flip");
    let codes: Vec<&str> = run.report.diagnostics().iter().map(|d| d.code).collect();
    assert!(codes.contains(&"UCRA103"), "{codes:?}");
    // The two `UCRA102`s: the report/write gains, and the default sign
    // flipping to `+` (both spans are line-less, so they sort last).
    check_impact_golden(
        "impact_mass_flip",
        &["UCRA103", "UCRA104", "UCRA102", "UCRA102"],
    );
}

/// Every registered diagnostic code must be exercised by at least one
/// golden fixture — a new rule without a fixture fails here.
#[test]
fn fixtures_cover_every_diagnostic_code() {
    let fixtures = [
        "clean",
        "smelly",
        "unknown_strategy",
        "superscript",
        "no_strategy",
        "parse_error",
    ];
    let impact_fixtures = [
        "impact_noop",
        "impact_shadowed",
        "impact_escalation",
        "impact_mass_flip",
    ];
    let mut covered = BTreeSet::new();
    for name in fixtures {
        for d in lint_fixture(name).diagnostics() {
            covered.insert(d.code);
        }
    }
    for name in impact_fixtures {
        for d in impact_fixture(name).report.diagnostics() {
            covered.insert(d.code);
        }
    }
    let registered: BTreeSet<&str> = ucra_lint::codes().iter().map(|info| info.code).collect();
    let missing: Vec<&&str> = registered.difference(&covered).collect();
    assert!(missing.is_empty(), "codes without a fixture: {missing:?}");
    let unknown: Vec<&&str> = covered.difference(&registered).collect();
    assert!(
        unknown.is_empty(),
        "fixtures emit unregistered codes: {unknown:?}"
    );
}
