//! End-to-end tests over a real socket: boot the daemon on an
//! ephemeral port and drive it with the blocking client. The error
//! cases pin the acceptance bar — no request input may produce a panic
//! or a bare 500.

use std::sync::Arc;
use ucra_service::client::Connection;
use ucra_service::{Server, Service, MAX_BATCH};

fn boot() -> (ucra_service::ServerHandle, Connection) {
    let model = ucra_store::text::parse(
        "member S1 S3\nmember S2 S3\nmember S2 User\nmember S3 S5\nmember S5 User\n\
         member S6 S5\nmember S6 User\ngrant S2 obj read\ndeny S5 obj read\n\
         strategy D+LMP+\n",
    )
    .expect("motivating example parses");
    let service = Arc::new(Service::from_model(&model, "P+".parse().expect("valid")));
    let handle = Server::bind("127.0.0.1:0", service).expect("ephemeral bind");
    let conn = Connection::connect(handle.addr()).expect("connect");
    (handle, conn)
}

#[test]
fn health_check_and_keep_alive() {
    let (_handle, mut conn) = boot();
    // Several requests over ONE connection: keep-alive framing works.
    for _ in 0..3 {
        let (status, body) = conn.get("/health").expect("request");
        assert_eq!(status, 200);
        assert!(body.contains("ok"));
    }
}

#[test]
fn check_and_explain_round_trip() {
    let (_handle, mut conn) = boot();
    let (status, body) = conn
        .post(
            "/check",
            r#"{"subject":"User","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"+\""), "{body}");
    assert!(body.contains("D+LMP+"), "{body}");
    // Strategy override via the same connection.
    let (status, body) = conn
        .post(
            "/check",
            r#"{"subject":"User","object":"obj","right":"read","strategy":"D+LP-"}"#,
        )
        .expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"-\""), "{body}");
    let (status, body) = conn
        .post(
            "/explain",
            r#"{"subject":"User","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("User"), "{body}");
}

#[test]
fn check_many_is_batched_and_ordered() {
    let (_handle, mut conn) = boot();
    let (status, body) = conn
        .post(
            "/check_many",
            r#"{"queries":[
                {"subject":"User","object":"obj","right":"read"},
                {"subject":"S5","object":"obj","right":"read"},
                {"subject":"S2","object":"obj","right":"read"}
            ]}"#,
        )
        .expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#"["+","-","+"]"#), "{body}");
}

#[test]
fn bad_mnemonic_is_400_with_suggestion() {
    let (_handle, mut conn) = boot();
    let (status, body) = conn
        .post(
            "/check",
            r#"{"subject":"User","object":"obj","right":"read","strategy":"D+LMPP+"}"#,
        )
        .expect("request");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_mnemonic"), "{body}");
    assert!(body.contains("\"suggestion\":\"D+LMP+\""), "{body}");
}

#[test]
fn unknown_names_are_404() {
    let (_handle, mut conn) = boot();
    let (status, body) = conn
        .post(
            "/check",
            r#"{"subject":"ghost","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("unknown_name"), "{body}");
    assert!(body.contains("ghost"), "{body}");
}

#[test]
fn oversized_batch_is_400() {
    let (_handle, mut conn) = boot();
    let one = r#"{"subject":"User","object":"obj","right":"read"}"#;
    let queries = vec![one; MAX_BATCH + 1].join(",");
    let (status, body) = conn
        .post("/check_many", &format!(r#"{{"queries":[{queries}]}}"#))
        .expect("request");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("batch_too_large"), "{body}");
}

#[test]
fn malformed_bodies_and_routes_never_500() {
    let (_handle, mut conn) = boot();
    let cases: &[(&str, &str, &str, u16)] = &[
        ("POST", "/check", "{not json", 400),
        ("POST", "/check", "{}", 400),      // missing fields
        ("POST", "/check", "[1,2,3]", 400), // wrong shape
        ("POST", "/edit/strategy", r#"{"strategy":"XYZ"}"#, 400),
        ("GET", "/no/such/route", "", 404),
        ("DELETE", "/check", "", 405),
        ("GET", "/check", "", 405),
    ];
    for &(method, path, body, expected) in cases {
        let (status, resp) = conn.request(method, path, body).expect("request");
        assert_eq!(status, expected, "{method} {path} {body:?} -> {resp}");
        assert!(status < 500, "{method} {path} must not be a server error");
        assert!(resp.contains("\"error\""), "{resp}");
    }
}

#[test]
fn edits_apply_over_http_and_are_visible() {
    let (_handle, mut conn) = boot();
    // A new subject joins a group and inherits its grant.
    let (status, body) = conn
        .post("/edit/membership", r#"{"group":"S2","member":"newcomer"}"#)
        .expect("request");
    assert_eq!(status, 200, "{body}");
    let (status, body) = conn
        .post(
            "/check",
            r#"{"subject":"newcomer","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"+\""), "{body}");
    // Contradicting an explicit record is a 409.
    let (status, body) = conn
        .post(
            "/edit/authorization",
            r#"{"subject":"S2","object":"obj","right":"read","sign":"-"}"#,
        )
        .expect("request");
    assert_eq!(status, 409, "{body}");
    // A membership cycle is a 422.
    let (status, body) = conn
        .post("/edit/membership", r#"{"group":"S3","member":"S2"}"#)
        .expect("request");
    assert_eq!(status, 422, "{body}");
    // Revoke, then the strategy default decides.
    let (status, body) = conn
        .post(
            "/edit/revoke",
            r#"{"subject":"S5","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 200, "{body}");
    let (status, body) = conn
        .post(
            "/check",
            r#"{"subject":"S5","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"+\""), "{body}");
    // Strategy switch via HTTP.
    let (status, body) = conn
        .post("/edit/strategy", r#"{"strategy":"D-P-"}"#)
        .expect("request");
    assert_eq!(status, 200, "{body}");
    let (status, body) = conn
        .post(
            "/check",
            r#"{"subject":"S4x","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 404, "{body}"); // still unknown — edits did not invent it
}

#[test]
fn stats_and_lint_render_json() {
    let (_handle, mut conn) = boot();
    let (status, _) = conn
        .post(
            "/check",
            r#"{"subject":"User","object":"obj","right":"read"}"#,
        )
        .expect("request");
    assert_eq!(status, 200);
    let (status, body) = conn.get("/stats").expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"queries\":"), "{body}");
    assert!(body.contains("\"full_invalidations\":0"), "{body}");
    // The publication-path counters are part of the wire surface.
    assert!(body.contains("\"memo_hits\":"), "{body}");
    assert!(body.contains("\"memo_misses\":"), "{body}");
    assert!(body.contains("\"snapshot_epoch\":"), "{body}");
    assert!(body.contains("\"snapshots_published\":"), "{body}");
    let (status, body) = conn.get("/lint").expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with('{') || body.starts_with('['), "{body}");
}

#[test]
fn concurrent_clients_share_the_warm_cache() {
    let (handle, mut conn) = boot();
    let addr = handle.addr();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = Connection::connect(addr).expect("connect");
                for _ in 0..25 {
                    let (status, body) = conn
                        .post(
                            "/check",
                            r#"{"subject":"User","object":"obj","right":"read"}"#,
                        )
                        .expect("request");
                    assert_eq!(status, 200, "{body}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread must not panic");
    }
    let (status, body) = conn.get("/stats").expect("request");
    assert_eq!(status, 200);
    // 200 checks of one hot pair: everyone shared the cache. Clients
    // that race on the cold miss may each sweep once (the cache keeps
    // the first table), so under heavy scheduler contention up to one
    // sweep per client is benign — but never one per check.
    let sweeps: u64 = body
        .split("\"sweeps\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("stats report sweeps");
    assert!((1..=8).contains(&sweeps), "{body}");
}

#[test]
fn shutdown_is_clean_and_idempotent() {
    let (mut handle, mut conn) = boot();
    let (status, _) = conn.get("/health").expect("request");
    assert_eq!(status, 200);
    handle.shutdown();
    handle.shutdown(); // idempotent
    assert!(
        Connection::connect(handle.addr()).is_err() || {
            // The OS may still accept briefly; a request must then fail.
            let mut c = Connection::connect(handle.addr()).expect("raced accept");
            c.get("/health").is_err()
        }
    );
}
