//! Concurrency oracle for the daemon's read/edit lock discipline
//! (equivalence-oracle pattern of `tests/kernel_equivalence.rs`, lifted
//! to the service layer):
//!
//! * **Atomicity** — with reader threads issuing `check_many` batches
//!   while a writer interleaves edits, every batch response must equal
//!   the serial replay of some *prefix* of the edit script. A response
//!   matching no prefix would mean a batch observed a torn state.
//! * **Convergence** — after the writer finishes, reads equal the full
//!   serial replay.
//! * **Repair correctness** (proptest) — driving random edit scripts
//!   through the service, with reads interleaved so the incremental
//!   repairs act on *warm* caches, must end in the same decisions as an
//!   [`AccessModel`] built from scratch out of the script's net state
//!   and queried through the uncached resolver.

use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use ucra_service::{CheckManyRequest, Service, TripleRequest};
use ucra_store::AccessModel;

const SUBJECTS: usize = 14;
const OBJECTS: usize = 3;
const RIGHTS: usize = 2;
const STRATEGIES: [&str; 4] = ["D+LMP+", "D-LP-", "GP+", "P-"];

fn subject(i: usize) -> String {
    format!("s{i}")
}

fn object(i: usize) -> String {
    format!("o{i}")
}

fn right(i: usize) -> String {
    format!("r{i}")
}

/// One scripted edit, expressed in wire names.
#[derive(Clone, Debug)]
enum Edit {
    Membership {
        group: String,
        member: String,
    },
    Authorize {
        s: String,
        o: String,
        r: String,
        sign: char,
    },
    Revoke {
        s: String,
        o: String,
        r: String,
    },
    Strategy(String),
}

fn apply(svc: &Service, edit: &Edit) {
    match edit {
        Edit::Membership { group, member } => {
            svc.add_membership(group, member)
                .expect("script is acyclic");
        }
        Edit::Authorize { s, o, r, sign } => {
            svc.set_authorization(s, o, r, &sign.to_string())
                .expect("script avoids contradictions");
        }
        Edit::Revoke { s, o, r } => {
            svc.unset_authorization(s, o, r).expect("names exist");
        }
        Edit::Strategy(m) => {
            svc.set_strategy(m).expect("script uses valid mnemonics");
        }
    }
}

/// Net state the script leaves behind, tracked during generation so the
/// generator never emits a contradiction and the proptest oracle can
/// rebuild the final installation from scratch.
#[derive(Default)]
struct Net {
    edges: BTreeSet<(usize, usize)>,
    labels: BTreeMap<(String, String, String), char>,
    strategy: String,
}

/// Deterministic base world + edit script. Membership edges always run
/// low → high subject index, so any interleaving stays acyclic.
fn build(seed: u64, edits: usize) -> (Vec<Edit>, Vec<Edit>, Net) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Net {
        strategy: STRATEGIES[0].to_string(),
        ..Net::default()
    };
    let mut base = Vec::new();
    for i in 0..SUBJECTS {
        for j in (i + 1)..SUBJECTS {
            if rng.gen_bool(0.18) {
                net.edges.insert((i, j));
                base.push(Edit::Membership {
                    group: subject(i),
                    member: subject(j),
                });
            }
        }
    }
    // Deterministic coverage labels: every object and right name is
    // interned by the base, so queries never 404 regardless of what the
    // random labels and later revokes do.
    for o in 0..OBJECTS {
        for r in 0..RIGHTS {
            let key = (subject((o + r) % SUBJECTS), object(o), right(r));
            let sign = if (o + r) % 2 == 0 { '+' } else { '-' };
            net.labels.insert(key.clone(), sign);
            base.push(Edit::Authorize {
                s: key.0,
                o: key.1,
                r: key.2,
                sign,
            });
        }
    }
    for _ in 0..SUBJECTS {
        let key = (
            subject(rng.gen_range(0..SUBJECTS)),
            object(rng.gen_range(0..OBJECTS)),
            right(rng.gen_range(0..RIGHTS)),
        );
        if net.labels.contains_key(&key) {
            continue;
        }
        let sign = if rng.gen_bool(0.5) { '+' } else { '-' };
        net.labels.insert(key.clone(), sign);
        base.push(Edit::Authorize {
            s: key.0,
            o: key.1,
            r: key.2,
            sign,
        });
    }
    let mut script = Vec::new();
    while script.len() < edits {
        match rng.gen_range(0..10) {
            0..=2 => {
                let i = rng.gen_range(0..SUBJECTS - 1);
                let j = rng.gen_range(i + 1..SUBJECTS);
                if net.edges.insert((i, j)) {
                    script.push(Edit::Membership {
                        group: subject(i),
                        member: subject(j),
                    });
                }
            }
            3..=6 => {
                let key = (
                    subject(rng.gen_range(0..SUBJECTS)),
                    object(rng.gen_range(0..OBJECTS)),
                    right(rng.gen_range(0..RIGHTS)),
                );
                if net.labels.contains_key(&key) {
                    continue;
                }
                let sign = if rng.gen_bool(0.5) { '+' } else { '-' };
                net.labels.insert(key.clone(), sign);
                script.push(Edit::Authorize {
                    s: key.0,
                    o: key.1,
                    r: key.2,
                    sign,
                });
            }
            7 | 8 => {
                // Revoke an existing label, if any.
                let Some(key) = net.labels.keys().next().cloned() else {
                    continue;
                };
                net.labels.remove(&key);
                script.push(Edit::Revoke {
                    s: key.0,
                    o: key.1,
                    r: key.2,
                });
            }
            _ => {
                let m = STRATEGIES[rng.gen_range(0..STRATEGIES.len())];
                if net.strategy != m {
                    net.strategy = m.to_string();
                    script.push(Edit::Strategy(m.to_string()));
                }
            }
        }
    }
    (base, script, net)
}

/// Every subject × every (object, right) pair, as one `check_many`
/// batch.
fn all_queries() -> Vec<TripleRequest> {
    let mut q = Vec::new();
    for s in 0..SUBJECTS {
        for o in 0..OBJECTS {
            for r in 0..RIGHTS {
                q.push(TripleRequest {
                    subject: subject(s),
                    object: object(o),
                    right: right(r),
                });
            }
        }
    }
    q
}

/// One atomic observation of the installation: all decisions plus the
/// strategy that produced them (the strategy disambiguates prefixes
/// whose sign vectors coincide).
fn snapshot(svc: &Service, queries: &[TripleRequest]) -> (Vec<String>, String) {
    let resp = svc
        .check_many(&CheckManyRequest {
            queries: queries.to_vec(),
            strategy: None,
        })
        .expect("all names are declared by the base world");
    (resp.signs, resp.strategy)
}

fn fresh_service(base: &[Edit]) -> Service {
    let svc = Service::empty(STRATEGIES[0].parse().expect("valid"));
    // Declare every name up front so queries never 404, even for
    // subjects the random base left isolated.
    for s in 0..SUBJECTS {
        svc.add_subject(&subject(s)).expect("valid name");
    }
    for e in base {
        apply(&svc, e);
    }
    svc
}

#[test]
fn concurrent_batches_observe_only_serial_prefixes() {
    for seed in [3, 11, 42, 99] {
        let (base, script, _) = build(seed, 14);
        let queries = Arc::new(all_queries());

        // Serial replay oracle: the observable state after every prefix.
        let mut prefixes = Vec::new();
        for k in 0..=script.len() {
            let svc = fresh_service(&base);
            for e in &script[..k] {
                apply(&svc, e);
            }
            prefixes.push(snapshot(&svc, &queries));
        }

        let svc = Arc::new(fresh_service(&base));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let queries = Arc::clone(&queries);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        seen.push(snapshot(&svc, &queries));
                    }
                    seen
                })
            })
            .collect();
        for e in &script {
            apply(&svc, e);
            std::thread::yield_now();
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let mut observed = Vec::new();
        for reader in readers {
            observed.extend(reader.join().expect("reader must not panic"));
        }

        assert!(!observed.is_empty());
        for obs in &observed {
            assert!(
                prefixes.contains(obs),
                "seed {seed}: a concurrent batch observed a state matching \
                 no serial prefix of the edit script (torn read)"
            );
        }
        // Convergence: reads after the writer finished equal the full
        // replay.
        assert_eq!(
            snapshot(&svc, &queries),
            prefixes[script.len()],
            "seed {seed}: final state diverged from full serial replay"
        );
        // The cache discipline held throughout: plenty of concurrent
        // reads, zero flushes.
        let stats = svc.stats();
        assert_eq!(stats.full_invalidations, 0, "seed {seed}");
        assert!(stats.cache_hits > 0, "seed {seed}");
    }
}

/// Rebuilds the script's net state as a plain [`AccessModel`] and
/// queries it through the uncached resolver.
fn model_from_net(net: &Net) -> AccessModel {
    let mut model = AccessModel::new();
    for s in 0..SUBJECTS {
        model.subject(&subject(s));
    }
    for &(i, j) in &net.edges {
        model
            .add_membership(&subject(i), &subject(j))
            .expect("acyclic by construction");
    }
    for ((s, o, r), sign) in &net.labels {
        if *sign == '+' {
            model.grant(s, o, r).expect("no contradictions");
        } else {
            model.deny(s, o, r).expect("no contradictions");
        }
    }
    // Revokes can leave an object/right name with no surviving label;
    // intern every name so queries still resolve.
    for o in 0..OBJECTS {
        model.object(&object(o));
    }
    for r in 0..RIGHTS {
        model.right(&right(r));
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental repairs on a warm service equal a from-scratch model
    /// through the uncached resolver, for random edit scripts.
    #[test]
    fn warm_service_equals_from_scratch_model(
        seed in any::<u64>(),
        edits in 1usize..20,
    ) {
        let (base, script, net) = build(seed, edits);
        let queries = all_queries();
        let svc = fresh_service(&base);
        // Interleave reads so every repair acts on warm caches.
        for e in &script {
            snapshot(&svc, &queries);
            apply(&svc, e);
        }
        let (signs, strategy) = snapshot(&svc, &queries);
        prop_assert_eq!(&strategy, &net.strategy);

        let model = model_from_net(&net);
        let strategy = net.strategy.parse().expect("valid mnemonic");
        for (q, sign) in queries.iter().zip(&signs) {
            let expected = model
                .check_with(&q.subject, &q.object, &q.right, strategy)
                .expect("all names declared");
            let expected = match expected {
                ucra_core::Sign::Pos => "+",
                ucra_core::Sign::Neg => "-",
            };
            prop_assert_eq!(
                sign.as_str(), expected,
                "({}, {}, {}) under {}", q.subject, q.object, q.right, net.strategy
            );
        }
    }
}
