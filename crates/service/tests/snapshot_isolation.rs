//! Snapshot isolation and liveness of the published-snapshot read path
//! (DESIGN.md §11), complementing the prefix-atomicity oracle in
//! `tests/concurrent_equivalence.rs`:
//!
//! * **Epoch consistency** — a `check_many` batch that overlaps an edit
//!   must be bit-identical to one of the serially computed before/after
//!   oracle vectors. A mixed vector would mean the batch straddled two
//!   epochs.
//! * **Writer liveness** — edits make bounded progress while reader
//!   threads saturate the read path; the snapshot swap never waits for
//!   readers to drain.
//! * **Lock freedom** — reads complete (with a deadline) while the
//!   writer mutex is deliberately held, proving the read path shares no
//!   lock with the edit path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ucra_service::{CheckManyRequest, Service, TripleRequest};

const MEMBERS: usize = 24;

/// A star: `root` is a group over `m0..mN`, so one label on `root`
/// propagates to every member and a single revoke flips a whole column.
fn star_service() -> Service {
    let svc = Service::empty("D-LP-".parse().expect("valid mnemonic"));
    svc.add_subject("root").expect("valid name");
    for i in 0..MEMBERS {
        let member = format!("m{i}");
        svc.add_subject(&member).expect("valid name");
        svc.add_membership("root", &member).expect("acyclic");
    }
    // Intern the object/right names so queries never 404 even while the
    // label is revoked.
    svc.set_authorization("root", "doc", "read", "+")
        .expect("no contradiction");
    svc
}

fn all_queries() -> Vec<TripleRequest> {
    let mut q = vec![TripleRequest {
        subject: "root".into(),
        object: "doc".into(),
        right: "read".into(),
    }];
    for i in 0..MEMBERS {
        q.push(TripleRequest {
            subject: format!("m{i}"),
            object: "doc".into(),
            right: "read".into(),
        });
    }
    q
}

fn signs(svc: &Service, queries: &[TripleRequest]) -> Vec<String> {
    svc.check_many(&CheckManyRequest {
        queries: queries.to_vec(),
        strategy: None,
    })
    .expect("all names are interned")
    .signs
}

/// A batch overlapping a revoke/grant toggle sees the entirely-granted
/// or the entirely-revoked installation — never a mix of epochs.
#[test]
fn a_batch_spanning_an_edit_observes_one_consistent_epoch() {
    let queries = Arc::new(all_queries());

    // Serial oracles: the granted state and the revoked state.
    let oracle = star_service();
    let granted = signs(&oracle, &queries);
    oracle
        .unset_authorization("root", "doc", "read")
        .expect("label exists");
    let revoked = signs(&oracle, &queries);
    assert_ne!(
        granted, revoked,
        "the toggle must flip answers or the test proves nothing"
    );
    // The star makes the flip wide: every member column changes.
    assert!(granted.iter().all(|s| s == "+"));
    assert!(revoked.iter().all(|s| s == "-"));

    let svc = Arc::new(star_service());
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let queries = Arc::clone(&queries);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut batches = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let got = signs(&svc, &queries);
                    assert!(
                        got.iter().all(|s| s == "+") || got.iter().all(|s| s == "-"),
                        "a batch mixed two epochs: {got:?}"
                    );
                    batches += 1;
                }
                batches
            })
        })
        .collect();

    for _ in 0..24 {
        svc.unset_authorization("root", "doc", "read")
            .expect("label exists");
        std::thread::yield_now();
        svc.set_authorization("root", "doc", "read", "+")
            .expect("no contradiction");
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    let batches: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader must not panic"))
        .sum();
    assert!(batches > 0, "the readers never ran");

    // Convergence + the repair discipline held through every publish.
    assert_eq!(signs(&svc, &queries), granted);
    let stats = svc.stats();
    assert_eq!(stats.full_invalidations, 0);
    // 1 boot + 1 base grant + 24 toggles × 2 publishing edits... plus
    // the subject/membership edits, which publish too. Exact count:
    // boot(1) + 25 subjects + 24 memberships + 1 grant + 48 toggles.
    assert_eq!(stats.snapshot_epoch, 1 + 25 + 24 + 1 + 48);
}

/// Edits keep landing, each within a loose deadline, while reader
/// threads saturate the snapshot path: publication never waits for
/// readers to drain (the grace period is refcounting, not quiescence).
#[test]
fn the_writer_makes_bounded_progress_under_saturating_reads() {
    const EDITS: u64 = 40;
    let svc = Arc::new(star_service());
    let queries = Arc::new(all_queries());
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let queries = Arc::clone(&queries);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    signs(&svc, &queries);
                }
            })
        })
        .collect();

    let before = svc.snapshot_epoch();
    let mut slowest = Duration::ZERO;
    for i in 0..EDITS / 2 {
        for step in 0..2u64 {
            let started = Instant::now();
            if step == 0 {
                svc.unset_authorization("root", "doc", "read")
                    .expect("label exists");
            } else {
                svc.set_authorization("root", "doc", "read", "+")
                    .expect("no contradiction");
            }
            slowest = slowest.max(started.elapsed());
            assert!(
                slowest < Duration::from_secs(5),
                "edit {i}.{step} stalled behind the read traffic for {slowest:?}"
            );
        }
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().expect("reader must not panic");
    }
    assert_eq!(
        svc.snapshot_epoch(),
        before + EDITS,
        "every edit must have published"
    );
}

/// Reads run to completion while the writer mutex is held: the read
/// path acquires no lock an edit could be holding.
#[test]
fn reads_complete_while_the_writer_mutex_is_held() {
    let svc = Arc::new(star_service());
    let queries = Arc::new(all_queries());
    let expected = signs(&svc, &queries);

    let epoch = svc.snapshot_epoch();
    let (tx, rx) = std::sync::mpsc::channel();
    svc.with_edits_paused(|| {
        let svc = Arc::clone(&svc);
        let queries = Arc::clone(&queries);
        std::thread::spawn(move || {
            let mut last = Vec::new();
            for _ in 0..128 {
                last = signs(&svc, &queries);
            }
            tx.send(last).expect("main is waiting");
        });
        let got = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("reads deadlocked against the held writer mutex");
        assert_eq!(got, expected);
    });
    assert_eq!(
        svc.snapshot_epoch(),
        epoch,
        "pausing edits must not publish"
    );
}
