//! Wire types of the HTTP/JSON API: request/response bodies and the
//! typed error surface.
//!
//! Every error carries an HTTP status class and renders as a JSON body
//! of the shape
//!
//! ```json
//! {"error": {"code": 400, "kind": "bad_mnemonic",
//!            "message": "...", "suggestion": "D-LP-"}}
//! ```
//!
//! so clients can branch on `kind` without parsing prose. Input errors
//! are always 4xx; 500 is reserved for caught handler panics (bugs).

use serde::{Deserialize, Serialize};
use std::fmt;
use ucra_core::CoreError;
use ucra_store::StoreError;

/// Upper bound on `/check_many` batch size. Larger batches are rejected
/// with a 400 before any name resolution or sweeping happens — one
/// request must not be able to monopolise the read lock for an
/// arbitrary amount of work.
pub const MAX_BATCH: usize = 4096;

/// One named authorization triple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleRequest {
    /// Subject name.
    pub subject: String,
    /// Object name.
    pub object: String,
    /// Right name.
    pub right: String,
}

/// Body of `POST /check` and `POST /explain`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckRequest {
    /// Subject name.
    pub subject: String,
    /// Object name.
    pub object: String,
    /// Right name.
    pub right: String,
    /// Optional strategy mnemonic; the session strategy when absent.
    #[serde(default)]
    pub strategy: Option<String>,
}

/// Body of `POST /impact` — a dry-run edit script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImpactRequest {
    /// The edit script in the line-oriented format (`subject`, `member`,
    /// `grant`, `deny`, `revoke`, `strategy` directives).
    pub edits: String,
    /// Optional base-strategy override; the session strategy when
    /// absent.
    #[serde(default)]
    pub strategy: Option<String>,
    /// Optional `object/right` glob restricting which grant-gains count
    /// as `UCRA102` escalation; every pair when absent.
    #[serde(default)]
    pub sensitive: Option<String>,
    /// `UCRA103` threshold (percentage of tracked cells); 30 when
    /// absent.
    #[serde(default)]
    pub mass_flip_pct: Option<u32>,
}

/// Body of `POST /check_many`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckManyRequest {
    /// The batch, answered in order.
    pub queries: Vec<TripleRequest>,
    /// Optional strategy mnemonic applied to the whole batch.
    #[serde(default)]
    pub strategy: Option<String>,
}

/// Response of `POST /check`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckResponse {
    /// `"+"` or `"-"`.
    pub sign: String,
    /// The strategy that decided (mnemonic).
    pub strategy: String,
}

/// Response of `POST /check_many`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckManyResponse {
    /// One `"+"`/`"-"` per query, in request order.
    pub signs: Vec<String>,
    /// The strategy that decided the batch (mnemonic).
    pub strategy: String,
}

/// Response of `POST /explain`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplainResponse {
    /// `"+"` or `"-"`.
    pub sign: String,
    /// The strategy that decided (mnemonic).
    pub strategy: String,
    /// The human-readable decision narrative.
    pub narrative: String,
}

/// Response of every `POST /edit/*` endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EditResponse {
    /// What the edit did, e.g. `"membership added"`.
    pub applied: String,
    /// Subjects in the installation after the edit.
    pub subjects: usize,
    /// The session strategy after the edit (mnemonic).
    pub strategy: String,
}

/// Response of `GET /stats`: installation shape plus the session's
/// cache/kernel counters (see [`ucra_core::SessionStats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Named subjects.
    pub subjects: usize,
    /// Named objects.
    pub objects: usize,
    /// Named rights.
    pub rights: usize,
    /// Explicit authorization labels.
    pub labels: usize,
    /// Session strategy (mnemonic).
    pub strategy: String,
    /// Queries answered.
    pub queries: u64,
    /// Queries served from a cached sweep.
    pub cache_hits: u64,
    /// Sweeps computed.
    pub sweeps: u64,
    /// Pairs dropped by failed repairs.
    pub pair_invalidations: u64,
    /// Whole-cache flushes (stays 0; alarm if not).
    pub full_invalidations: u64,
    /// Incremental hierarchy-edit repairs.
    pub partial_repairs: u64,
    /// Rows recomputed by hierarchy-edit repairs.
    pub rows_repaired: u64,
    /// Incremental matrix-edit repairs.
    pub matrix_repairs: u64,
    /// Rows recomputed by matrix-edit repairs.
    pub matrix_repair_rows: u64,
    /// Kernel columns computed.
    pub kernel_columns: u64,
    /// Fused kernel batches executed.
    pub kernel_batches: u64,
    /// Kernel batches counted in the narrow `u64` lane tier.
    pub narrow_sweeps: u64,
    /// Kernel batches escalated to the wide `u128` tier (expected 0 on
    /// realistic workloads).
    pub wide_escalations: u64,
    /// SIMD kernel backend selected for this process
    /// (`scalar`/`sse2`/`avx2`).
    #[serde(default)]
    pub kernel_backend: String,
    /// Narrow sweeps merged by the scalar backend.
    #[serde(default)]
    pub sweeps_scalar: u64,
    /// Narrow sweeps merged by the SSE2 backend.
    #[serde(default)]
    pub sweeps_sse2: u64,
    /// Narrow sweeps merged by the AVX2 backend.
    #[serde(default)]
    pub sweeps_avx2: u64,
    /// Shared sweep-context builds.
    pub context_builds: u64,
    /// Batched rounds dispatched to the pool.
    pub parallel_dispatches: u64,
    /// Rounds run inline on the calling thread.
    pub serial_dispatches: u64,
    /// Queries answered straight from the snapshot decision memo.
    #[serde(default)]
    pub memo_hits: u64,
    /// Snapshot queries that resolved from a histogram and filled the
    /// memo.
    #[serde(default)]
    pub memo_misses: u64,
    /// Epoch of the snapshot that served this response (starts at 1).
    #[serde(default)]
    pub snapshot_epoch: u64,
    /// Snapshots published by edits since boot (`snapshot_epoch - 1`).
    #[serde(default)]
    pub snapshots_published: u64,
}

/// The typed error surface. Input problems are 4xx; [`ApiError::Internal`]
/// (500) is reserved for caught panics and serialisation bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApiError {
    /// Malformed request body (bad JSON, missing fields). 400.
    BadRequest(String),
    /// Unparseable strategy mnemonic, with the nearest legitimate
    /// instance when it is close enough to be a likely typo. 400.
    BadMnemonic {
        /// The parser's message.
        message: String,
        /// Nearest of the 48 legitimate mnemonics, if within typo range.
        suggestion: Option<String>,
    },
    /// Batch exceeds [`MAX_BATCH`]. 400.
    BatchTooLarge {
        /// Queries received.
        got: usize,
        /// The cap.
        max: usize,
    },
    /// A subject/object/right name is not in the installation. 404.
    UnknownName {
        /// Namespace: `"subject"`, `"object"` or `"right"`.
        kind: &'static str,
        /// The unresolved name.
        name: String,
    },
    /// No route at this path. 404.
    NotFound(String),
    /// Route exists, method doesn't. 405.
    MethodNotAllowed(String),
    /// The edit contradicts a recorded explicit authorization (§3.3). 409.
    Conflict(String),
    /// Request framing exceeds the body/header limits. 413.
    PayloadTooLarge {
        /// The limit in bytes.
        limit: usize,
    },
    /// Well-formed input the engine rejected (cycle, overflow, …). 422.
    Unprocessable(String),
    /// A caught handler panic or serialisation failure — a bug. 500.
    Internal(String),
}

impl ApiError {
    /// The HTTP status code.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_)
            | ApiError::BadMnemonic { .. }
            | ApiError::BatchTooLarge { .. } => 400,
            ApiError::UnknownName { .. } | ApiError::NotFound(_) => 404,
            ApiError::MethodNotAllowed(_) => 405,
            ApiError::Conflict(_) => 409,
            ApiError::PayloadTooLarge { .. } => 413,
            ApiError::Unprocessable(_) => 422,
            ApiError::Internal(_) => 500,
        }
    }

    /// Stable machine-readable discriminator for the JSON body.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::BadRequest(_) => "bad_request",
            ApiError::BadMnemonic { .. } => "bad_mnemonic",
            ApiError::BatchTooLarge { .. } => "batch_too_large",
            ApiError::UnknownName { .. } => "unknown_name",
            ApiError::NotFound(_) => "not_found",
            ApiError::MethodNotAllowed(_) => "method_not_allowed",
            ApiError::Conflict(_) => "conflict",
            ApiError::PayloadTooLarge { .. } => "payload_too_large",
            ApiError::Unprocessable(_) => "unprocessable",
            ApiError::Internal(_) => "internal",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            ApiError::BadRequest(m)
            | ApiError::Conflict(m)
            | ApiError::Unprocessable(m)
            | ApiError::Internal(m) => m.clone(),
            ApiError::BadMnemonic { message, .. } => message.clone(),
            ApiError::BatchTooLarge { got, max } => {
                format!("batch of {got} queries exceeds the {max}-query cap")
            }
            ApiError::UnknownName { kind, name } => format!("unknown {kind} `{name}`"),
            ApiError::NotFound(path) => format!("no route at `{path}`"),
            ApiError::MethodNotAllowed(path) => format!("method not allowed on `{path}`"),
            ApiError::PayloadTooLarge { limit } => {
                format!("request exceeds the {limit}-byte limit")
            }
        }
    }

    /// The error as its JSON response body.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Detail {
            code: u16,
            kind: &'static str,
            message: String,
            #[serde(default)]
            suggestion: Option<String>,
        }
        #[derive(Serialize)]
        struct Body {
            error: Detail,
        }
        let suggestion = match self {
            ApiError::BadMnemonic { suggestion, .. } => suggestion.clone(),
            _ => None,
        };
        let body = Body {
            error: Detail {
                code: self.status(),
                kind: self.kind(),
                message: self.message(),
                suggestion,
            },
        };
        serde_json::to_string(&body)
            .unwrap_or_else(|_| "{\"error\":{\"code\":500,\"kind\":\"internal\"}}".to_string())
    }

    /// Parses a strategy mnemonic, attaching the nearest legitimate
    /// instance as a suggestion when the input is within typo range
    /// (mirrors the CLI's behaviour).
    pub fn parse_strategy(text: &str) -> Result<ucra_core::Strategy, ApiError> {
        text.parse::<ucra_core::Strategy>().map_err(|e| {
            let (suggestion, distance) = ucra_lint::nearest_mnemonic(text);
            ApiError::BadMnemonic {
                message: e.to_string(),
                suggestion: (distance <= 2).then_some(suggestion),
            }
        })
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for ApiError {}

impl From<CoreError> for ApiError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::BadMnemonic { ref input, .. } => {
                let (suggestion, distance) = ucra_lint::nearest_mnemonic(input);
                ApiError::BadMnemonic {
                    message: e.to_string(),
                    suggestion: (distance <= 2).then_some(suggestion),
                }
            }
            CoreError::UnknownSubject(s) => ApiError::UnknownName {
                kind: "subject",
                name: s.to_string(),
            },
            CoreError::ContradictoryAuthorization { .. } => ApiError::Conflict(e.to_string()),
            other => ApiError::Unprocessable(other.to_string()),
        }
    }
}

impl From<StoreError> for ApiError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Core(core) => core.into(),
            StoreError::UnknownName { kind, name } => ApiError::UnknownName { kind, name },
            other => ApiError::Unprocessable(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_stay_in_the_4xx_class_for_input_errors() {
        for (e, code) in [
            (ApiError::BadRequest("x".into()), 400),
            (
                ApiError::BadMnemonic {
                    message: "m".into(),
                    suggestion: None,
                },
                400,
            ),
            (ApiError::BatchTooLarge { got: 9, max: 4 }, 400),
            (
                ApiError::UnknownName {
                    kind: "subject",
                    name: "ghost".into(),
                },
                404,
            ),
            (ApiError::NotFound("/x".into()), 404),
            (ApiError::MethodNotAllowed("/check".into()), 405),
            (ApiError::Conflict("c".into()), 409),
            (ApiError::PayloadTooLarge { limit: 1 }, 413),
            (ApiError::Unprocessable("u".into()), 422),
        ] {
            assert_eq!(e.status(), code, "{e:?}");
            assert!(e.status() < 500, "input error {e:?} must not be a 500");
        }
        assert_eq!(ApiError::Internal("bug".into()).status(), 500);
    }

    #[test]
    fn bad_mnemonic_carries_a_close_suggestion() {
        let err = ApiError::parse_strategy("D-LP").unwrap_err();
        let ApiError::BadMnemonic { suggestion, .. } = &err else {
            panic!("expected BadMnemonic, got {err:?}");
        };
        assert!(suggestion.is_some(), "one-edit typo should suggest");
        let json = err.to_json();
        assert!(json.contains("\"bad_mnemonic\""));
        assert!(json.contains("\"suggestion\""));
        // Gibberish far from every mnemonic suggests nothing.
        let err = ApiError::parse_strategy("zzzzzzzz").unwrap_err();
        assert!(matches!(
            err,
            ApiError::BadMnemonic {
                suggestion: None,
                ..
            }
        ));
    }

    #[test]
    fn error_json_is_parseable_and_typed() {
        #[derive(Deserialize)]
        struct Detail {
            code: u16,
            kind: String,
            message: String,
        }
        #[derive(Deserialize)]
        struct Body {
            error: Detail,
        }
        let body: Body = serde_json::from_str(
            &ApiError::UnknownName {
                kind: "object",
                name: "vault".into(),
            }
            .to_json(),
        )
        .unwrap();
        assert_eq!(body.error.code, 404);
        assert_eq!(body.error.kind, "unknown_name");
        assert!(body.error.message.contains("vault"));
    }
}
