//! The shared service state: RCU-style published snapshots for reads,
//! one writer mutex for edits.
//!
//! [`Service`] no longer holds the installation behind a read/write
//! lock. Instead the writer owns the mutable [`AccessSession`] (plus
//! the three name tables) behind a `Mutex`, and after every edit it
//! freezes the session into an immutable snapshot and publishes it
//! through a [`Published`] cell. Query handlers obtain the current
//! snapshot with one atomic epoch load — **zero lock acquisitions on
//! the steady-state read path** — and decide entirely against that
//! frozen state, so a batched `/check_many` still observes one
//! consistent installation (now by construction rather than by holding
//! a lock). In-flight readers keep retired snapshots alive through
//! their `Arc`s; edits never wait for readers and readers never wait
//! for edits.
//!
//! Each snapshot carries a sharded `(subject, object, right, strategy)
//! → sign` decision memo ([`ucra_core::DecisionMemo`]). Because the
//! memo belongs to one immutable snapshot, invalidation is free: edits
//! that can change answers (labels, membership) publish a successor
//! with a fresh memo, while edits that provably cannot (strategy
//! switches — the strategy is part of the key — and pure growth like
//! interning a subject) carry the memo `Arc` forward untouched.
//!
//! Handlers are plain methods returning `Result<_, ApiError>`; the
//! HTTP layer in [`crate::http`] is a thin router over them, which is
//! also what lets the concurrency tests drive the publication protocol
//! directly without sockets.

use crate::api::{
    ApiError, CheckManyRequest, CheckManyResponse, CheckRequest, CheckResponse, EditResponse,
    ExplainResponse, ImpactRequest, StatsResponse, TripleRequest, MAX_BATCH,
};
use crate::publish::Published;
use parking_lot::Mutex;
use std::sync::Arc;
use ucra_core::{
    AccessSession, DecisionMemo, ObjectId, ReadCounters, RightId, SessionSnapshot, Sign, Strategy,
    SubjectId,
};
use ucra_store::{AccessModel, Interner};

/// One published, immutable view of the installation: the frozen
/// session plus the name tables that translate the wire protocol's
/// strings into its dense ids. The interners are `Arc`-shared with the
/// writer and clone-on-write there, so publishing is cheap.
struct ServiceSnapshot {
    session: SessionSnapshot,
    subjects: Arc<Interner>,
    objects: Arc<Interner>,
    rights: Arc<Interner>,
}

/// The writer's private, mutable installation. Only ever touched under
/// [`Service::writer`]; readers see it exclusively through frozen
/// snapshots.
struct Writer {
    session: AccessSession,
    subjects: Arc<Interner>,
    objects: Arc<Interner>,
    rights: Arc<Interner>,
}

/// Whether a successor snapshot keeps the predecessor's decision memo.
#[derive(Clone, Copy)]
enum MemoCarry {
    /// The edit cannot have changed any memoised answer: strategy
    /// switches (the strategy is part of the memo key), pure growth
    /// (new subjects have no memoised decisions), and failed or no-op
    /// edits.
    Keep,
    /// The edit may flip decisions (label or membership change): the
    /// successor starts an empty memo and refills from the repaired
    /// tables.
    Reset,
}

/// The shared, thread-safe service state. Clone-free: wrap it in an
/// `Arc` and hand it to [`crate::Server::bind`].
pub struct Service {
    published: Published<ServiceSnapshot>,
    writer: Mutex<Writer>,
    /// Cross-epoch read counters, shared by every snapshot so `/stats`
    /// stays cumulative when snapshots retire.
    counters: Arc<ReadCounters>,
}

impl ServiceSnapshot {
    fn subject_id(&self, name: &str) -> Result<SubjectId, ApiError> {
        self.subjects
            .get(name)
            .map(|id| SubjectId::from_index(id as usize))
            .ok_or_else(|| ApiError::UnknownName {
                kind: "subject",
                name: name.to_string(),
            })
    }

    fn object_id(&self, name: &str) -> Result<ObjectId, ApiError> {
        self.objects
            .get(name)
            .map(ObjectId)
            .ok_or_else(|| ApiError::UnknownName {
                kind: "object",
                name: name.to_string(),
            })
    }

    fn right_id(&self, name: &str) -> Result<RightId, ApiError> {
        self.rights
            .get(name)
            .map(RightId)
            .ok_or_else(|| ApiError::UnknownName {
                kind: "right",
                name: name.to_string(),
            })
    }

    fn triple(&self, t: &TripleRequest) -> Result<(SubjectId, ObjectId, RightId), ApiError> {
        Ok((
            self.subject_id(&t.subject)?,
            self.object_id(&t.object)?,
            self.right_id(&t.right)?,
        ))
    }

    /// Resolves a strategy override, or falls back to the snapshot's.
    fn strategy(&self, text: Option<&str>) -> Result<Strategy, ApiError> {
        match text {
            Some(t) => ApiError::parse_strategy(t),
            None => Ok(self.session.strategy()),
        }
    }
}

impl Writer {
    /// Interns a subject name, growing the hierarchy so the returned id
    /// is guaranteed to exist in the session.
    fn intern_subject(&mut self, name: &str) -> SubjectId {
        let id = Arc::make_mut(&mut self.subjects).intern(name) as usize;
        while self.session.hierarchy().subject_count() <= id {
            self.session.add_subject();
        }
        SubjectId::from_index(id)
    }

    fn edit_response(&self, applied: impl Into<String>) -> EditResponse {
        EditResponse {
            applied: applied.into(),
            subjects: self.subjects.len(),
            strategy: self.session.strategy().to_string(),
        }
    }
}

fn parse_sign(text: &str) -> Result<Sign, ApiError> {
    match text {
        "+" | "pos" | "grant" | "allow" => Ok(Sign::Pos),
        "-" | "neg" | "deny" | "forbid" => Ok(Sign::Neg),
        other => Err(ApiError::BadRequest(format!(
            "`{other}` is not a sign; use `+`/`grant` or `-`/`deny`"
        ))),
    }
}

impl Service {
    /// A service over an empty installation with the given default
    /// strategy.
    pub fn empty(strategy: Strategy) -> Self {
        Service::boot(Writer {
            session: AccessSession::empty(strategy),
            subjects: Arc::new(Interner::default()),
            objects: Arc::new(Interner::default()),
            rights: Arc::new(Interner::default()),
        })
    }

    /// A service seeded from a persisted [`AccessModel`] (policy text or
    /// JSON). The model's hierarchy, matrix, names, and default strategy
    /// carry over; `fallback` applies when the model names no strategy.
    pub fn from_model(model: &AccessModel, fallback: Strategy) -> Self {
        let strategy = model.default_strategy().unwrap_or(fallback);
        let session = AccessSession::new(model.hierarchy().clone(), model.eacm().clone(), strategy);
        let mut subjects = Interner::default();
        for name in model.subject_names() {
            subjects.intern(name);
        }
        let mut objects = Interner::default();
        for name in model.object_names() {
            objects.intern(name);
        }
        let mut rights = Interner::default();
        for name in model.right_names() {
            rights.intern(name);
        }
        Service::boot(Writer {
            session,
            subjects: Arc::new(subjects),
            objects: Arc::new(objects),
            rights: Arc::new(rights),
        })
    }

    /// Publishes the boot snapshot (epoch 1) around a fresh writer.
    fn boot(writer: Writer) -> Self {
        let counters = Arc::new(ReadCounters::new());
        let snapshot = ServiceSnapshot {
            session: writer.session.freeze_with(
                1,
                Arc::clone(&counters),
                Arc::new(DecisionMemo::new()),
            ),
            subjects: Arc::clone(&writer.subjects),
            objects: Arc::clone(&writer.objects),
            rights: Arc::clone(&writer.rights),
        };
        Service {
            published: Published::new(snapshot),
            writer: Mutex::new(writer),
            counters,
        }
    }

    /// The epoch of the snapshot currently serving reads. Starts at 1;
    /// every publishing edit bumps it.
    pub fn snapshot_epoch(&self) -> u64 {
        self.published.epoch()
    }

    /// Runs `f` while holding the writer mutex, so no edit can begin or
    /// publish until it returns. Reads are unaffected — that is the
    /// point: the concurrency tests use this to prove the read path
    /// never touches the edit path's lock.
    pub fn with_edits_paused<R>(&self, f: impl FnOnce() -> R) -> R {
        let _writer = self.writer.lock();
        f()
    }

    /// Reclaims the current snapshot's overflow sweep tables into the
    /// writer's cache. Must run *before* any mutation: in that window
    /// the writer's model is bit-identical to the published one, so the
    /// tables transfer soundly and the next freeze carries them forward.
    fn absorb(&self, writer: &Writer) {
        let current = self.published.load();
        writer.session.adopt_tables(&current.session);
    }

    /// Freezes the writer's session and publishes it as the next epoch.
    fn republish(&self, writer: &Writer, memo: MemoCarry) {
        let memo = match memo {
            MemoCarry::Keep => Arc::clone(self.published.load().session.memo()),
            MemoCarry::Reset => Arc::new(DecisionMemo::new()),
        };
        let epoch = self.published.epoch() + 1;
        let snapshot = ServiceSnapshot {
            session: writer
                .session
                .freeze_with(epoch, Arc::clone(&self.counters), memo),
            subjects: Arc::clone(&writer.subjects),
            objects: Arc::clone(&writer.objects),
            rights: Arc::clone(&writer.rights),
        };
        let published = self.published.publish(snapshot);
        debug_assert_eq!(published, epoch, "publishes are writer-serialized");
    }

    /// `POST /check` — one decision under the snapshot (or an explicit)
    /// strategy. Lock-free: one atomic snapshot load, then memo/table
    /// lookups on frozen state.
    pub fn check(&self, req: &CheckRequest) -> Result<CheckResponse, ApiError> {
        let snap = self.published.load();
        let strategy = snap.strategy(req.strategy.as_deref())?;
        let s = snap.subject_id(&req.subject)?;
        let o = snap.object_id(&req.object)?;
        let r = snap.right_id(&req.right)?;
        let sign = snap.session.check_with(s, o, r, strategy)?;
        Ok(CheckResponse {
            sign: sign.symbol().to_string(),
            strategy: strategy.to_string(),
        })
    }

    /// `POST /check_many` — a batched decision. The whole batch reads
    /// one frozen snapshot, so it observes a single consistent
    /// installation state by construction — no lock is held, and a
    /// writer publishing mid-batch cannot tear it. Batches over
    /// [`MAX_BATCH`] are rejected before any name resolution.
    pub fn check_many(&self, req: &CheckManyRequest) -> Result<CheckManyResponse, ApiError> {
        if req.queries.len() > MAX_BATCH {
            return Err(ApiError::BatchTooLarge {
                got: req.queries.len(),
                max: MAX_BATCH,
            });
        }
        let snap = self.published.load();
        let strategy = snap.strategy(req.strategy.as_deref())?;
        let triples: Vec<(SubjectId, ObjectId, RightId)> = req
            .queries
            .iter()
            .map(|t| snap.triple(t))
            .collect::<Result<_, _>>()?;
        let signs = snap.session.check_many_with(&triples, strategy)?;
        Ok(CheckManyResponse {
            signs: signs.iter().map(|s| s.symbol().to_string()).collect(),
            strategy: strategy.to_string(),
        })
    }

    /// `POST /explain` — the decision with its Table-3 narrative.
    /// Lock-free snapshot read.
    pub fn explain(&self, req: &CheckRequest) -> Result<ExplainResponse, ApiError> {
        let snap = self.published.load();
        let strategy = snap.strategy(req.strategy.as_deref())?;
        let s = snap.subject_id(&req.subject)?;
        let o = snap.object_id(&req.object)?;
        let r = snap.right_id(&req.right)?;
        // explain() always runs under the snapshot strategy; honour an
        // override by checking it matches (the narrative embeds the
        // strategy, so silently substituting would mislead).
        if strategy != snap.session.strategy() {
            return Err(ApiError::BadRequest(
                "explain uses the session strategy; switch it via /edit/strategy".to_string(),
            ));
        }
        let explanation = snap.session.explain(s, o, r)?;
        let narrative = explanation.narrative(|id| {
            snap.subjects
                .resolve(id.index() as u32)
                .map_or_else(|| format!("subject#{}", id.index()), str::to_string)
        });
        Ok(ExplainResponse {
            sign: explanation.resolution.sign.symbol().to_string(),
            strategy: strategy.to_string(),
            narrative,
        })
    }

    /// `GET /lint` — the policy lint report as JSON. Lock-free snapshot
    /// read.
    pub fn lint(&self) -> String {
        let snap = self.published.load();
        ucra_lint::lint_session(
            snap.session.hierarchy(),
            snap.session.eacm(),
            Some(snap.session.strategy()),
        )
        .render_json()
    }

    /// `GET /stats` — installation shape plus session counters, stamped
    /// with the serving snapshot's epoch. Lock-free snapshot read.
    pub fn stats(&self) -> StatsResponse {
        let snap = self.published.load();
        let s = snap.session.stats();
        StatsResponse {
            subjects: snap.subjects.len(),
            objects: snap.objects.len(),
            rights: snap.rights.len(),
            labels: snap.session.eacm().len(),
            strategy: snap.session.strategy().to_string(),
            queries: s.queries,
            cache_hits: s.cache_hits,
            sweeps: s.sweeps,
            pair_invalidations: s.pair_invalidations,
            full_invalidations: s.full_invalidations,
            partial_repairs: s.partial_repairs,
            rows_repaired: s.rows_repaired,
            matrix_repairs: s.matrix_repairs,
            matrix_repair_rows: s.matrix_repair_rows,
            kernel_columns: s.kernel_columns,
            kernel_batches: s.kernel_batches,
            narrow_sweeps: s.narrow_sweeps,
            wide_escalations: s.wide_escalations,
            kernel_backend: s.kernel_backend.to_string(),
            sweeps_scalar: s.sweeps_scalar,
            sweeps_sse2: s.sweeps_sse2,
            sweeps_avx2: s.sweeps_avx2,
            context_builds: s.context_builds,
            parallel_dispatches: s.parallel_dispatches,
            serial_dispatches: s.serial_dispatches,
            memo_hits: s.memo_hits,
            memo_misses: s.memo_misses,
            snapshot_epoch: s.snapshot_epoch,
            // Epoch 1 is the boot freeze; every later epoch is one
            // writer publish.
            snapshots_published: self.published.epoch() - 1,
        }
    }

    /// `POST /impact` — dry-run an edit script against the published
    /// snapshot without mutating anything. **Lock-free read**: the name
    /// tables are cloned so script-added names resolve, the script is
    /// evaluated on a copy-on-write overlay of the frozen hierarchy and
    /// matrix, and the serving installation — its caches, its counters,
    /// its epoch — is left bit-identical. Returns the combined impact +
    /// `UCRA1xx` report JSON document.
    pub fn impact(&self, req: &ImpactRequest) -> Result<String, ApiError> {
        let edits =
            ucra_store::parse_edits(&req.edits).map_err(|e| ApiError::BadRequest(e.to_string()))?;
        if edits.len() > MAX_BATCH {
            return Err(ApiError::BatchTooLarge {
                got: edits.len(),
                max: MAX_BATCH,
            });
        }
        let snap = self.published.load();
        let strategy = snap.strategy(req.strategy.as_deref())?;
        let mut subjects = (*snap.subjects).clone();
        let mut objects = (*snap.objects).clone();
        let mut rights = (*snap.rights).clone();
        let resolved = ucra_store::resolve_edits(&edits, &mut subjects, &mut objects, &mut rights)
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        let analysis = ucra_core::ImpactAnalysis::analyze(
            snap.session.hierarchy(),
            snap.session.eacm(),
            strategy,
            &resolved.script,
        )?;
        let names = ucra_lint::ImpactNames::from_interners(&subjects, &objects, &rights);
        let opts = ucra_lint::ImpactOptions {
            sensitive: req.sensitive.clone(),
            mass_flip_pct: req
                .mass_flip_pct
                .unwrap_or_else(|| ucra_lint::ImpactOptions::default().mass_flip_pct),
        };
        let report =
            ucra_lint::lint_impact(&resolved.script, &analysis, &names, &resolved.lines, &opts);
        let run = ucra_lint::ImpactRun {
            script: resolved.script,
            lines: resolved.lines,
            analysis,
            names,
            report,
        };
        Ok(ucra_lint::render_impact_json(&run))
    }

    /// `POST /edit/subject` — declares a subject (idempotent). Writer
    /// mutex; publishes a successor snapshot carrying the memo (pure
    /// growth cannot change any memoised decision).
    pub fn add_subject(&self, name: &str) -> Result<EditResponse, ApiError> {
        validate_name(name)?;
        let mut writer = self.writer.lock();
        self.absorb(&writer);
        writer.intern_subject(name);
        self.republish(&writer, MemoCarry::Keep);
        Ok(writer.edit_response(format!("subject `{name}` present")))
    }

    /// `POST /edit/membership` — adds `member` to `group`, interning
    /// both. Cycles are rejected with a 422; the cached sweeps are
    /// cone-repaired, never flushed. Writer mutex; a successful edit
    /// publishes with a fresh memo (membership can flip inherited
    /// decisions), a rejected one still publishes the interned names
    /// with the memo carried.
    pub fn add_membership(&self, group: &str, member: &str) -> Result<EditResponse, ApiError> {
        validate_name(group)?;
        validate_name(member)?;
        let mut writer = self.writer.lock();
        self.absorb(&writer);
        let g = writer.intern_subject(group);
        let m = writer.intern_subject(member);
        match writer.session.add_membership(g, m) {
            Ok(()) => {
                self.republish(&writer, MemoCarry::Reset);
                Ok(writer.edit_response(format!("membership `{group}` ← `{member}` added")))
            }
            Err(e) => {
                // The names were interned (pure growth) even though the
                // edge was rejected; publish them, keep the memo.
                self.republish(&writer, MemoCarry::Keep);
                Err(e.into())
            }
        }
    }

    /// `POST /edit/authorization` — records an explicit grant/denial,
    /// interning all three names. A contradicting record is a 409
    /// (paper §3.3). Writer mutex; cone-repairs the one affected sweep
    /// and publishes with a fresh memo on success.
    pub fn set_authorization(
        &self,
        subject: &str,
        object: &str,
        right: &str,
        sign: &str,
    ) -> Result<EditResponse, ApiError> {
        validate_name(subject)?;
        validate_name(object)?;
        validate_name(right)?;
        let sign = parse_sign(sign)?;
        let mut writer = self.writer.lock();
        self.absorb(&writer);
        let s = writer.intern_subject(subject);
        let o = ObjectId(Arc::make_mut(&mut writer.objects).intern(object));
        let r = RightId(Arc::make_mut(&mut writer.rights).intern(right));
        match writer.session.set_authorization(s, o, r, sign) {
            Ok(()) => {
                self.republish(&writer, MemoCarry::Reset);
                let verb = match sign {
                    Sign::Pos => "granted",
                    Sign::Neg => "denied",
                };
                Ok(writer.edit_response(format!("`{subject}` {verb} `{right}` on `{object}`")))
            }
            Err(e) => {
                self.republish(&writer, MemoCarry::Keep);
                Err(e.into())
            }
        }
    }

    /// `POST /edit/revoke` — removes an explicit record if present.
    /// Unknown names are a 404 (revoking from a name that was never
    /// interned cannot have a record to remove). Writer mutex; only an
    /// actual removal publishes (with a fresh memo) — a no-op revoke
    /// changes nothing, so the current snapshot keeps serving.
    pub fn unset_authorization(
        &self,
        subject: &str,
        object: &str,
        right: &str,
    ) -> Result<EditResponse, ApiError> {
        let mut writer = self.writer.lock();
        let s = lookup(&writer.subjects, "subject", subject)
            .map(|id| SubjectId::from_index(id as usize))?;
        let o = lookup(&writer.objects, "object", object).map(ObjectId)?;
        let r = lookup(&writer.rights, "right", right).map(RightId)?;
        self.absorb(&writer);
        let removed = writer.session.unset_authorization(s, o, r);
        if removed.is_some() {
            self.republish(&writer, MemoCarry::Reset);
        }
        Ok(writer.edit_response(match removed {
            Some(_) => format!("explicit record on (`{subject}`, `{object}`, `{right}`) removed"),
            None => format!("no explicit record on (`{subject}`, `{object}`, `{right}`)"),
        }))
    }

    /// `POST /edit/strategy` — switches the session strategy. Costs
    /// nothing beyond the publish: cached sweeps are
    /// strategy-independent and the memo keys include the strategy, so
    /// the memo carries over verbatim.
    pub fn set_strategy(&self, mnemonic: &str) -> Result<EditResponse, ApiError> {
        let strategy = ApiError::parse_strategy(mnemonic)?;
        let mut writer = self.writer.lock();
        self.absorb(&writer);
        writer.session.set_strategy(strategy);
        self.republish(&writer, MemoCarry::Keep);
        Ok(writer.edit_response(format!("strategy set to {strategy}")))
    }
}

/// Resolves a name against one of the writer's interners (the writer
/// lock is held, so this sees every edit).
fn lookup(interner: &Interner, kind: &'static str, name: &str) -> Result<u32, ApiError> {
    interner.get(name).ok_or_else(|| ApiError::UnknownName {
        kind,
        name: name.to_string(),
    })
}

/// Rejects names the policy text format could not round-trip (empty,
/// whitespace, comment markers) so the daemon never grows state that
/// `ucra` CLI tooling cannot re-load.
fn validate_name(name: &str) -> Result<(), ApiError> {
    if name.is_empty() {
        return Err(ApiError::BadRequest("names must be non-empty".to_string()));
    }
    if name.chars().any(char::is_whitespace) || name.contains('#') {
        return Err(ApiError::BadRequest(format!(
            "name `{name}` contains whitespace or `#`, which the policy format reserves"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn motivating() -> Service {
        let model = ucra_store::text::parse(
            "member S1 S3\nmember S2 S3\nmember S2 User\nmember S3 S5\nmember S5 User\n\
             member S6 S5\nmember S6 User\ngrant S2 obj read\ndeny S5 obj read\n\
             strategy D+LMP+\n",
        )
        .unwrap();
        Service::from_model(&model, "P+".parse().unwrap())
    }

    fn check_req(subject: &str, strategy: Option<&str>) -> CheckRequest {
        CheckRequest {
            subject: subject.to_string(),
            object: "obj".to_string(),
            right: "read".to_string(),
            strategy: strategy.map(str::to_string),
        }
    }

    #[test]
    fn check_reproduces_the_paper_decision() {
        let svc = motivating();
        let resp = svc.check(&check_req("User", None)).unwrap();
        assert_eq!(resp.sign, "+");
        assert_eq!(resp.strategy, "D+LMP+");
        // A most-specific-without-majority override flips the outcome
        // (paper Table 2: `D+LP-` resolves User to −).
        let resp = svc.check(&check_req("User", Some("D+LP-"))).unwrap();
        assert_eq!(resp.sign, "-");
        assert_eq!(resp.strategy, "D+LP-");
    }

    #[test]
    fn unknown_names_are_404_not_panic() {
        let svc = motivating();
        let err = svc.check(&check_req("ghost", None)).unwrap_err();
        assert_eq!(err.status(), 404);
        assert!(matches!(
            err,
            ApiError::UnknownName {
                kind: "subject",
                ..
            }
        ));
    }

    #[test]
    fn bad_mnemonic_is_400_with_suggestion() {
        let svc = motivating();
        let err = svc.check(&check_req("User", Some("D+LMPP+"))).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(matches!(err, ApiError::BadMnemonic { .. }));
    }

    #[test]
    fn oversized_batch_is_rejected_before_resolution() {
        let svc = motivating();
        let q = TripleRequest {
            subject: "ghost".to_string(), // would 404 if resolution ran
            object: "obj".to_string(),
            right: "read".to_string(),
        };
        let err = svc
            .check_many(&CheckManyRequest {
                queries: vec![q; MAX_BATCH + 1],
                strategy: None,
            })
            .unwrap_err();
        assert!(matches!(err, ApiError::BatchTooLarge { .. }));
    }

    #[test]
    fn edits_repair_instead_of_flushing() {
        let svc = motivating();
        // Warm the cache.
        let warm = svc.check(&check_req("User", None)).unwrap();
        assert_eq!(warm.sign, "+");
        let before = svc.stats();
        // A matrix edit on a cached pair must cone-repair it.
        svc.set_authorization("S3", "obj", "read", "-").unwrap();
        let after = svc.stats();
        assert_eq!(after.full_invalidations, 0);
        assert!(after.matrix_repairs > before.matrix_repairs);
        // And the next read is a cache hit with the new answer folded in.
        let resp = svc.check(&check_req("S3", None)).unwrap();
        assert_eq!(resp.sign, "-");
        assert!(svc.stats().cache_hits > after.cache_hits);
    }

    #[test]
    fn membership_cycle_is_422() {
        let svc = Service::empty("P+".parse().unwrap());
        svc.add_membership("a", "b").unwrap();
        let err = svc.add_membership("b", "a").unwrap_err();
        assert_eq!(err.status(), 422);
    }

    #[test]
    fn contradiction_is_409() {
        let svc = motivating();
        let err = svc.set_authorization("S2", "obj", "read", "-").unwrap_err();
        assert_eq!(err.status(), 409);
    }

    #[test]
    fn explain_names_subjects() {
        let svc = motivating();
        let resp = svc.explain(&check_req("User", None)).unwrap();
        assert_eq!(resp.sign, "+");
        assert!(resp.narrative.contains("User"));
    }

    #[test]
    fn impact_is_a_pure_read() {
        let svc = motivating();
        // Warm the cache and snapshot the counters.
        svc.check(&check_req("User", None)).unwrap();
        let before = svc.stats();
        let json = svc
            .impact(&ImpactRequest {
                edits: "deny S6 obj read\nrevoke S2 obj read\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap();
        assert!(json.contains("\"impact\":{"), "{json}");
        assert!(json.contains("\"full_invalidations\":0"), "{json}");
        // The serving snapshot is bit-identical: counters and epoch
        // unchanged (the overlay has its own), and the decision still
        // comes from cache.
        let after = svc.stats();
        assert_eq!(before, after);
        let resp = svc.check(&check_req("User", None)).unwrap();
        assert_eq!(resp.sign, "+");
        assert!(svc.stats().cache_hits > after.cache_hits);
    }

    #[test]
    fn impact_resolves_script_added_names_without_interning_them() {
        let svc = motivating();
        let json = svc
            .impact(&ImpactRequest {
                edits: "subject intern\nmember S2 intern\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap();
        assert!(json.contains("intern"), "{json}");
        // The dry run never grew the live name tables.
        assert_eq!(
            svc.check(&check_req("intern", None)).unwrap_err().status(),
            404
        );
    }

    #[test]
    fn impact_rejects_bad_scripts_and_oversized_batches() {
        let svc = motivating();
        let err = svc
            .impact(&ImpactRequest {
                edits: "frobnicate x\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap_err();
        assert_eq!(err.status(), 400);
        let err = svc
            .impact(&ImpactRequest {
                edits: "revoke ghost obj read\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap_err();
        assert_eq!(err.status(), 400, "revoke of an unknown name");
        let big = "subject s\n".repeat(MAX_BATCH + 1);
        let err = svc
            .impact(&ImpactRequest {
                edits: big,
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap_err();
        assert!(matches!(err, ApiError::BatchTooLarge { .. }));
    }

    #[test]
    fn bad_names_are_400() {
        let svc = Service::empty("P+".parse().unwrap());
        for bad in ["", "two words", "has#hash"] {
            assert_eq!(svc.add_subject(bad).unwrap_err().status(), 400, "{bad:?}");
        }
    }

    #[test]
    fn edits_publish_new_epochs() {
        let svc = motivating();
        assert_eq!(svc.snapshot_epoch(), 1, "boot snapshot");
        assert_eq!(svc.stats().snapshots_published, 0);
        svc.add_subject("fresh").unwrap();
        assert_eq!(svc.snapshot_epoch(), 2);
        svc.set_strategy("D-LP-").unwrap();
        assert_eq!(svc.snapshot_epoch(), 3);
        let stats = svc.stats();
        assert_eq!(stats.snapshot_epoch, 3);
        assert_eq!(stats.snapshots_published, 2);
        // A rejected edit that interned nothing new still publishes the
        // interned names; a no-op revoke publishes nothing.
        svc.unset_authorization("S1", "obj", "read").unwrap();
        assert_eq!(svc.snapshot_epoch(), 3, "no-op revoke keeps the epoch");
    }

    #[test]
    fn strategy_switch_keeps_the_memo_but_label_edits_reset_it() {
        let svc = motivating();
        svc.check(&check_req("User", None)).unwrap();
        svc.check(&check_req("User", None)).unwrap();
        let warm = svc.stats();
        assert_eq!(warm.memo_hits, 1, "second check memoised");
        assert_eq!(warm.memo_misses, 1);
        // Strategy switch: memo carried (keys embed the strategy), so a
        // check under the *old* strategy as an override still hits.
        svc.set_strategy("D-LP-").unwrap();
        svc.check(&check_req("User", Some("D+LMP+"))).unwrap();
        assert_eq!(svc.stats().memo_hits, 2, "carried memo still serves");
        // A label edit must reset the memo: the same check re-resolves.
        svc.set_authorization("S6", "obj", "read", "-").unwrap();
        svc.check(&check_req("User", Some("D+LMP+"))).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.memo_hits, 2, "fresh memo has no entries");
        assert_eq!(stats.memo_misses, 2, "the reset forced a re-resolution");
        assert_eq!(stats.full_invalidations, 0);
    }

    #[test]
    fn reads_complete_while_the_writer_mutex_is_held() {
        // The zero-lock acceptance check, in-process: a reader thread
        // must answer (and see a stable epoch) while an "edit" owns the
        // writer mutex for the whole duration.
        let svc = std::sync::Arc::new(motivating());
        svc.check(&check_req("User", None)).unwrap(); // warm
        let epoch = svc.snapshot_epoch();
        svc.with_edits_paused(|| {
            let svc2 = std::sync::Arc::clone(&svc);
            let reader = std::thread::spawn(move || {
                let mut answers = Vec::new();
                for _ in 0..64 {
                    answers.push(svc2.check(&check_req("User", None)).unwrap().sign);
                }
                answers
            });
            let answers = reader.join().expect("reads must not block on the writer");
            assert!(answers.iter().all(|s| s == "+"));
        });
        assert_eq!(svc.snapshot_epoch(), epoch);
    }
}
