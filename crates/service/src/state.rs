//! The shared service state and its read/edit lock discipline.
//!
//! [`Service`] owns the whole installation — an [`AccessSession`] plus
//! the three name tables — behind a single `parking_lot::RwLock`.
//! Query handlers borrow it shared; edit handlers borrow it exclusive
//! and go through the session's incremental-repair mutators, so **no
//! edit ever flushes a cache**. Handlers are plain methods returning
//! `Result<_, ApiError>`; the HTTP layer in [`crate::http`] is a thin
//! router over them, which is also what lets the concurrency tests
//! drive the lock discipline directly without sockets.

use crate::api::{
    ApiError, CheckManyRequest, CheckManyResponse, CheckRequest, CheckResponse, EditResponse,
    ExplainResponse, ImpactRequest, StatsResponse, TripleRequest, MAX_BATCH,
};
use parking_lot::RwLock;
use ucra_core::{AccessSession, ObjectId, RightId, Sign, Strategy, SubjectId};
use ucra_store::{AccessModel, Interner};

/// The installation behind the lock: the session and the name tables
/// that translate the wire protocol's strings into its dense ids.
struct Inner {
    session: AccessSession,
    subjects: Interner,
    objects: Interner,
    rights: Interner,
}

/// The shared, thread-safe service state. Clone-free: wrap it in an
/// `Arc` and hand it to [`crate::Server::bind`].
pub struct Service {
    inner: RwLock<Inner>,
}

impl Inner {
    fn subject_id(&self, name: &str) -> Result<SubjectId, ApiError> {
        self.subjects
            .get(name)
            .map(|id| SubjectId::from_index(id as usize))
            .ok_or_else(|| ApiError::UnknownName {
                kind: "subject",
                name: name.to_string(),
            })
    }

    fn object_id(&self, name: &str) -> Result<ObjectId, ApiError> {
        self.objects
            .get(name)
            .map(ObjectId)
            .ok_or_else(|| ApiError::UnknownName {
                kind: "object",
                name: name.to_string(),
            })
    }

    fn right_id(&self, name: &str) -> Result<RightId, ApiError> {
        self.rights
            .get(name)
            .map(RightId)
            .ok_or_else(|| ApiError::UnknownName {
                kind: "right",
                name: name.to_string(),
            })
    }

    fn triple(&self, t: &TripleRequest) -> Result<(SubjectId, ObjectId, RightId), ApiError> {
        Ok((
            self.subject_id(&t.subject)?,
            self.object_id(&t.object)?,
            self.right_id(&t.right)?,
        ))
    }

    /// Interns a subject name, growing the hierarchy so the returned id
    /// is guaranteed to exist in the session.
    fn intern_subject(&mut self, name: &str) -> SubjectId {
        let id = self.subjects.intern(name) as usize;
        while self.session.hierarchy().subject_count() <= id {
            self.session.add_subject();
        }
        SubjectId::from_index(id)
    }

    /// Resolves a strategy override, or falls back to the session's.
    fn strategy(&self, text: Option<&str>) -> Result<Strategy, ApiError> {
        match text {
            Some(t) => ApiError::parse_strategy(t),
            None => Ok(self.session.strategy()),
        }
    }

    fn edit_response(&self, applied: impl Into<String>) -> EditResponse {
        EditResponse {
            applied: applied.into(),
            subjects: self.subjects.len(),
            strategy: self.session.strategy().to_string(),
        }
    }
}

fn parse_sign(text: &str) -> Result<Sign, ApiError> {
    match text {
        "+" | "pos" | "grant" | "allow" => Ok(Sign::Pos),
        "-" | "neg" | "deny" | "forbid" => Ok(Sign::Neg),
        other => Err(ApiError::BadRequest(format!(
            "`{other}` is not a sign; use `+`/`grant` or `-`/`deny`"
        ))),
    }
}

impl Service {
    /// A service over an empty installation with the given default
    /// strategy.
    pub fn empty(strategy: Strategy) -> Self {
        Service {
            inner: RwLock::new(Inner {
                session: AccessSession::empty(strategy),
                subjects: Interner::default(),
                objects: Interner::default(),
                rights: Interner::default(),
            }),
        }
    }

    /// A service seeded from a persisted [`AccessModel`] (policy text or
    /// JSON). The model's hierarchy, matrix, names, and default strategy
    /// carry over; `fallback` applies when the model names no strategy.
    pub fn from_model(model: &AccessModel, fallback: Strategy) -> Self {
        let strategy = model.default_strategy().unwrap_or(fallback);
        let session = AccessSession::new(model.hierarchy().clone(), model.eacm().clone(), strategy);
        let mut subjects = Interner::default();
        for name in model.subject_names() {
            subjects.intern(name);
        }
        let mut objects = Interner::default();
        for name in model.object_names() {
            objects.intern(name);
        }
        let mut rights = Interner::default();
        for name in model.right_names() {
            rights.intern(name);
        }
        Service {
            inner: RwLock::new(Inner {
                session,
                subjects,
                objects,
                rights,
            }),
        }
    }

    /// `POST /check` — one decision under the session (or an explicit)
    /// strategy. Read lock.
    pub fn check(&self, req: &CheckRequest) -> Result<CheckResponse, ApiError> {
        let inner = self.inner.read();
        let strategy = inner.strategy(req.strategy.as_deref())?;
        let s = inner.subject_id(&req.subject)?;
        let o = inner.object_id(&req.object)?;
        let r = inner.right_id(&req.right)?;
        let resolution = inner.session.check_traced_with(s, o, r, strategy)?;
        Ok(CheckResponse {
            sign: resolution.sign.symbol().to_string(),
            strategy: strategy.to_string(),
        })
    }

    /// `POST /check_many` — a batched decision. The whole batch runs
    /// under one read-lock acquisition, so it observes a single
    /// consistent installation state even while writers queue. Batches
    /// over [`MAX_BATCH`] are rejected before any name resolution.
    pub fn check_many(&self, req: &CheckManyRequest) -> Result<CheckManyResponse, ApiError> {
        if req.queries.len() > MAX_BATCH {
            return Err(ApiError::BatchTooLarge {
                got: req.queries.len(),
                max: MAX_BATCH,
            });
        }
        let inner = self.inner.read();
        let strategy = inner.strategy(req.strategy.as_deref())?;
        let triples: Vec<(SubjectId, ObjectId, RightId)> = req
            .queries
            .iter()
            .map(|t| inner.triple(t))
            .collect::<Result<_, _>>()?;
        let signs = inner.session.check_many_with(&triples, strategy)?;
        Ok(CheckManyResponse {
            signs: signs.iter().map(|s| s.symbol().to_string()).collect(),
            strategy: strategy.to_string(),
        })
    }

    /// `POST /explain` — the decision with its Table-3 narrative. Read
    /// lock.
    pub fn explain(&self, req: &CheckRequest) -> Result<ExplainResponse, ApiError> {
        let inner = self.inner.read();
        let strategy = inner.strategy(req.strategy.as_deref())?;
        let s = inner.subject_id(&req.subject)?;
        let o = inner.object_id(&req.object)?;
        let r = inner.right_id(&req.right)?;
        // explain() always runs under the session strategy; honour an
        // override by checking it matches (the narrative embeds the
        // strategy, so silently substituting would mislead).
        if strategy != inner.session.strategy() {
            return Err(ApiError::BadRequest(
                "explain uses the session strategy; switch it via /edit/strategy".to_string(),
            ));
        }
        let explanation = inner.session.explain(s, o, r)?;
        let narrative = explanation.narrative(|id| {
            inner
                .subjects
                .resolve(id.index() as u32)
                .map_or_else(|| format!("subject#{}", id.index()), str::to_string)
        });
        Ok(ExplainResponse {
            sign: explanation.resolution.sign.symbol().to_string(),
            strategy: strategy.to_string(),
            narrative,
        })
    }

    /// `GET /lint` — the policy lint report as JSON. Read lock.
    pub fn lint(&self) -> String {
        let inner = self.inner.read();
        ucra_lint::lint_session(
            inner.session.hierarchy(),
            inner.session.eacm(),
            Some(inner.session.strategy()),
        )
        .render_json()
    }

    /// `GET /stats` — installation shape plus session counters. Read
    /// lock.
    pub fn stats(&self) -> StatsResponse {
        let inner = self.inner.read();
        let s = inner.session.stats();
        StatsResponse {
            subjects: inner.subjects.len(),
            objects: inner.objects.len(),
            rights: inner.rights.len(),
            labels: inner.session.eacm().len(),
            strategy: inner.session.strategy().to_string(),
            queries: s.queries,
            cache_hits: s.cache_hits,
            sweeps: s.sweeps,
            pair_invalidations: s.pair_invalidations,
            full_invalidations: s.full_invalidations,
            partial_repairs: s.partial_repairs,
            rows_repaired: s.rows_repaired,
            matrix_repairs: s.matrix_repairs,
            matrix_repair_rows: s.matrix_repair_rows,
            kernel_columns: s.kernel_columns,
            kernel_batches: s.kernel_batches,
            narrow_sweeps: s.narrow_sweeps,
            wide_escalations: s.wide_escalations,
            context_builds: s.context_builds,
            parallel_dispatches: s.parallel_dispatches,
            serial_dispatches: s.serial_dispatches,
        }
    }

    /// `POST /impact` — dry-run an edit script against the live
    /// installation without mutating it. **Read lock only**: the name
    /// tables are cloned so script-added names resolve, the script is
    /// evaluated on a copy-on-write overlay of the hierarchy and matrix,
    /// and the serving session — its caches, its counters — is left
    /// bit-identical. Returns the combined impact + `UCRA1xx` report
    /// JSON document.
    pub fn impact(&self, req: &ImpactRequest) -> Result<String, ApiError> {
        let edits =
            ucra_store::parse_edits(&req.edits).map_err(|e| ApiError::BadRequest(e.to_string()))?;
        if edits.len() > MAX_BATCH {
            return Err(ApiError::BatchTooLarge {
                got: edits.len(),
                max: MAX_BATCH,
            });
        }
        let inner = self.inner.read();
        let strategy = inner.strategy(req.strategy.as_deref())?;
        let mut subjects = inner.subjects.clone();
        let mut objects = inner.objects.clone();
        let mut rights = inner.rights.clone();
        let resolved = ucra_store::resolve_edits(&edits, &mut subjects, &mut objects, &mut rights)
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        let analysis = ucra_core::ImpactAnalysis::analyze(
            inner.session.hierarchy(),
            inner.session.eacm(),
            strategy,
            &resolved.script,
        )?;
        let names = ucra_lint::ImpactNames::from_interners(&subjects, &objects, &rights);
        let opts = ucra_lint::ImpactOptions {
            sensitive: req.sensitive.clone(),
            mass_flip_pct: req
                .mass_flip_pct
                .unwrap_or_else(|| ucra_lint::ImpactOptions::default().mass_flip_pct),
        };
        let report =
            ucra_lint::lint_impact(&resolved.script, &analysis, &names, &resolved.lines, &opts);
        let run = ucra_lint::ImpactRun {
            script: resolved.script,
            lines: resolved.lines,
            analysis,
            names,
            report,
        };
        Ok(ucra_lint::render_impact_json(&run))
    }

    /// `POST /edit/subject` — declares a subject (idempotent). Write
    /// lock.
    pub fn add_subject(&self, name: &str) -> Result<EditResponse, ApiError> {
        validate_name(name)?;
        let mut inner = self.inner.write();
        inner.intern_subject(name);
        Ok(inner.edit_response(format!("subject `{name}` present")))
    }

    /// `POST /edit/membership` — adds `member` to `group`, interning
    /// both. Cycles are rejected with a 422; the cached sweeps are
    /// cone-repaired, never flushed. Write lock.
    pub fn add_membership(&self, group: &str, member: &str) -> Result<EditResponse, ApiError> {
        validate_name(group)?;
        validate_name(member)?;
        let mut inner = self.inner.write();
        let g = inner.intern_subject(group);
        let m = inner.intern_subject(member);
        inner.session.add_membership(g, m)?;
        Ok(inner.edit_response(format!("membership `{group}` ← `{member}` added")))
    }

    /// `POST /edit/authorization` — records an explicit grant/denial,
    /// interning all three names. A contradicting record is a 409
    /// (paper §3.3). Write lock; cone-repairs the one affected sweep.
    pub fn set_authorization(
        &self,
        subject: &str,
        object: &str,
        right: &str,
        sign: &str,
    ) -> Result<EditResponse, ApiError> {
        validate_name(subject)?;
        validate_name(object)?;
        validate_name(right)?;
        let sign = parse_sign(sign)?;
        let mut inner = self.inner.write();
        let s = inner.intern_subject(subject);
        let o = ObjectId(inner.objects.intern(object));
        let r = RightId(inner.rights.intern(right));
        inner.session.set_authorization(s, o, r, sign)?;
        let verb = match sign {
            Sign::Pos => "granted",
            Sign::Neg => "denied",
        };
        Ok(inner.edit_response(format!("`{subject}` {verb} `{right}` on `{object}`")))
    }

    /// `POST /edit/revoke` — removes an explicit record if present.
    /// Unknown names are a 404 (revoking from a name that was never
    /// interned cannot have a record to remove). Write lock.
    pub fn unset_authorization(
        &self,
        subject: &str,
        object: &str,
        right: &str,
    ) -> Result<EditResponse, ApiError> {
        let mut inner = self.inner.write();
        let s = inner.subject_id(subject)?;
        let o = inner.object_id(object)?;
        let r = inner.right_id(right)?;
        let removed = inner.session.unset_authorization(s, o, r);
        Ok(inner.edit_response(match removed {
            Some(_) => format!("explicit record on (`{subject}`, `{object}`, `{right}`) removed"),
            None => format!("no explicit record on (`{subject}`, `{object}`, `{right}`)"),
        }))
    }

    /// `POST /edit/strategy` — switches the session strategy. Costs
    /// nothing: cached sweeps are strategy-independent. Write lock.
    pub fn set_strategy(&self, mnemonic: &str) -> Result<EditResponse, ApiError> {
        let strategy = ApiError::parse_strategy(mnemonic)?;
        let mut inner = self.inner.write();
        inner.session.set_strategy(strategy);
        Ok(inner.edit_response(format!("strategy set to {strategy}")))
    }
}

/// Rejects names the policy text format could not round-trip (empty,
/// whitespace, comment markers) so the daemon never grows state that
/// `ucra` CLI tooling cannot re-load.
fn validate_name(name: &str) -> Result<(), ApiError> {
    if name.is_empty() {
        return Err(ApiError::BadRequest("names must be non-empty".to_string()));
    }
    if name.chars().any(char::is_whitespace) || name.contains('#') {
        return Err(ApiError::BadRequest(format!(
            "name `{name}` contains whitespace or `#`, which the policy format reserves"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn motivating() -> Service {
        let model = ucra_store::text::parse(
            "member S1 S3\nmember S2 S3\nmember S2 User\nmember S3 S5\nmember S5 User\n\
             member S6 S5\nmember S6 User\ngrant S2 obj read\ndeny S5 obj read\n\
             strategy D+LMP+\n",
        )
        .unwrap();
        Service::from_model(&model, "P+".parse().unwrap())
    }

    fn check_req(subject: &str, strategy: Option<&str>) -> CheckRequest {
        CheckRequest {
            subject: subject.to_string(),
            object: "obj".to_string(),
            right: "read".to_string(),
            strategy: strategy.map(str::to_string),
        }
    }

    #[test]
    fn check_reproduces_the_paper_decision() {
        let svc = motivating();
        let resp = svc.check(&check_req("User", None)).unwrap();
        assert_eq!(resp.sign, "+");
        assert_eq!(resp.strategy, "D+LMP+");
        // A most-specific-without-majority override flips the outcome
        // (paper Table 2: `D+LP-` resolves User to −).
        let resp = svc.check(&check_req("User", Some("D+LP-"))).unwrap();
        assert_eq!(resp.sign, "-");
        assert_eq!(resp.strategy, "D+LP-");
    }

    #[test]
    fn unknown_names_are_404_not_panic() {
        let svc = motivating();
        let err = svc.check(&check_req("ghost", None)).unwrap_err();
        assert_eq!(err.status(), 404);
        assert!(matches!(
            err,
            ApiError::UnknownName {
                kind: "subject",
                ..
            }
        ));
    }

    #[test]
    fn bad_mnemonic_is_400_with_suggestion() {
        let svc = motivating();
        let err = svc.check(&check_req("User", Some("D+LMPP+"))).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(matches!(err, ApiError::BadMnemonic { .. }));
    }

    #[test]
    fn oversized_batch_is_rejected_before_resolution() {
        let svc = motivating();
        let q = TripleRequest {
            subject: "ghost".to_string(), // would 404 if resolution ran
            object: "obj".to_string(),
            right: "read".to_string(),
        };
        let err = svc
            .check_many(&CheckManyRequest {
                queries: vec![q; MAX_BATCH + 1],
                strategy: None,
            })
            .unwrap_err();
        assert!(matches!(err, ApiError::BatchTooLarge { .. }));
    }

    #[test]
    fn edits_repair_instead_of_flushing() {
        let svc = motivating();
        // Warm the cache.
        let warm = svc.check(&check_req("User", None)).unwrap();
        assert_eq!(warm.sign, "+");
        let before = svc.stats();
        // A matrix edit on a cached pair must cone-repair it.
        svc.set_authorization("S3", "obj", "read", "-").unwrap();
        let after = svc.stats();
        assert_eq!(after.full_invalidations, 0);
        assert!(after.matrix_repairs > before.matrix_repairs);
        // And the next read is a cache hit with the new answer folded in.
        let resp = svc.check(&check_req("S3", None)).unwrap();
        assert_eq!(resp.sign, "-");
        assert!(svc.stats().cache_hits > after.cache_hits);
    }

    #[test]
    fn membership_cycle_is_422() {
        let svc = Service::empty("P+".parse().unwrap());
        svc.add_membership("a", "b").unwrap();
        let err = svc.add_membership("b", "a").unwrap_err();
        assert_eq!(err.status(), 422);
    }

    #[test]
    fn contradiction_is_409() {
        let svc = motivating();
        let err = svc.set_authorization("S2", "obj", "read", "-").unwrap_err();
        assert_eq!(err.status(), 409);
    }

    #[test]
    fn explain_names_subjects() {
        let svc = motivating();
        let resp = svc.explain(&check_req("User", None)).unwrap();
        assert_eq!(resp.sign, "+");
        assert!(resp.narrative.contains("User"));
    }

    #[test]
    fn impact_is_a_pure_read() {
        let svc = motivating();
        // Warm the cache and snapshot the counters.
        svc.check(&check_req("User", None)).unwrap();
        let before = svc.stats();
        let json = svc
            .impact(&ImpactRequest {
                edits: "deny S6 obj read\nrevoke S2 obj read\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap();
        assert!(json.contains("\"impact\":{"), "{json}");
        assert!(json.contains("\"full_invalidations\":0"), "{json}");
        // The serving session is bit-identical: counters unchanged (the
        // overlay has its own), and the decision still comes from cache.
        let after = svc.stats();
        assert_eq!(before, after);
        let resp = svc.check(&check_req("User", None)).unwrap();
        assert_eq!(resp.sign, "+");
        assert!(svc.stats().cache_hits > after.cache_hits);
    }

    #[test]
    fn impact_resolves_script_added_names_without_interning_them() {
        let svc = motivating();
        let json = svc
            .impact(&ImpactRequest {
                edits: "subject intern\nmember S2 intern\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap();
        assert!(json.contains("intern"), "{json}");
        // The dry run never grew the live name tables.
        assert_eq!(
            svc.check(&check_req("intern", None)).unwrap_err().status(),
            404
        );
    }

    #[test]
    fn impact_rejects_bad_scripts_and_oversized_batches() {
        let svc = motivating();
        let err = svc
            .impact(&ImpactRequest {
                edits: "frobnicate x\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap_err();
        assert_eq!(err.status(), 400);
        let err = svc
            .impact(&ImpactRequest {
                edits: "revoke ghost obj read\n".to_string(),
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap_err();
        assert_eq!(err.status(), 400, "revoke of an unknown name");
        let big = "subject s\n".repeat(MAX_BATCH + 1);
        let err = svc
            .impact(&ImpactRequest {
                edits: big,
                strategy: None,
                sensitive: None,
                mass_flip_pct: None,
            })
            .unwrap_err();
        assert!(matches!(err, ApiError::BatchTooLarge { .. }));
    }

    #[test]
    fn bad_names_are_400() {
        let svc = Service::empty("P+".parse().unwrap());
        for bad in ["", "two words", "has#hash"] {
            assert_eq!(svc.add_subject(bad).unwrap_err().status(), 400, "{bad:?}");
        }
    }
}
