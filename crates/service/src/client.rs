//! A minimal blocking HTTP/1.1 client for tests and the load
//! generator: persistent keep-alive connections, `Content-Length`
//! framing, nothing else.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One persistent keep-alive connection to the daemon.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to the daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response. Returns
    /// `(status, body)`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: ucra\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET` without a body.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line `{}`", status_line.trim_end()),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|body| (status, body))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }
}
