//! `Published<T>` — the RCU-style publication cell under the daemon's
//! lock-free read path.
//!
//! One writer publishes immutable `Arc<T>` snapshots; any number of
//! readers obtain the current snapshot with, in the steady state, **one
//! atomic load and zero lock acquisitions**. The trick is an
//! epoch-validated thread-local cache:
//!
//! * the cell keeps a monotonically increasing epoch in an `AtomicU64`
//!   and the `(epoch, Arc<T>)` pair behind a briefly-held `RwLock`;
//! * [`Published::load`] reads the epoch (`Acquire`) and looks the cell
//!   up in a small per-thread slot table; when the cached epoch matches,
//!   the cached `Arc` is cloned and returned — no lock was touched;
//! * only when the epoch moved (one refresh per thread per publication)
//!   does the reader take the read lock to fetch the new pair;
//! * [`Published::publish`] swaps the pair under the write lock and then
//!   release-stores the new epoch, so a reader that observes the new
//!   epoch always refreshes to the new (or a newer) snapshot.
//!
//! In-flight readers that fetched the old snapshot keep it alive through
//! its `Arc`; nothing is freed until the last reader drops its clone —
//! the grace period is reference counting, not quiescence detection.
//!
//! The slot table is keyed by a process-unique cell id, capped at
//! [`MAX_CACHED_CELLS`] entries per thread, and type-erased through
//! `Arc<dyn Any>` because Rust has no generic thread-locals; the
//! downcast is infallible by construction (a cell id never changes its
//! `T`).

use parking_lot::RwLock;
use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-thread cap on cached `(cell, epoch, snapshot)` slots. A daemon
/// has exactly one published cell, so this is generous; the cap only
/// matters for processes that churn many short-lived cells (tests).
const MAX_CACHED_CELLS: usize = 8;

thread_local! {
    /// This thread's snapshot cache: `(cell id, epoch, snapshot)`.
    static SLOTS: RefCell<Vec<(u64, u64, Arc<dyn Any + Send + Sync>)>> = const { RefCell::new(Vec::new()) };
}

/// Process-unique cell ids, so a thread's slot table can outlive any
/// particular cell without ever confusing two of them.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// A single-writer, many-reader publication cell holding an immutable
/// snapshot (see the module docs for the protocol).
#[derive(Debug)]
pub struct Published<T> {
    id: u64,
    /// The current publication epoch, starting at 1. `Acquire` loads of
    /// this value are the *only* synchronisation on the steady-state
    /// read path.
    epoch: AtomicU64,
    /// The authoritative `(epoch, snapshot)` pair. Write-locked for the
    /// instant of a publish; read-locked once per thread per epoch to
    /// refresh the thread-local slot.
    current: RwLock<(u64, Arc<T>)>,
}

impl<T: Send + Sync + 'static> Published<T> {
    /// Publishes `value` as epoch 1.
    pub fn new(value: T) -> Self {
        Published {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(1),
            current: RwLock::new((1, Arc::new(value))),
        }
    }

    /// The current epoch. Monotonic; starts at 1.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot. Steady state: one `Acquire` load plus a
    /// thread-local lookup — no lock. After a publish: one read-locked
    /// refresh per thread, then steady state again.
    pub fn load(&self) -> Arc<T> {
        let seen = self.epoch.load(Ordering::Acquire);
        SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some(slot) = slots.iter_mut().find(|(id, _, _)| *id == self.id) {
                if slot.1 == seen {
                    return Arc::clone(&slot.2)
                        .downcast::<T>()
                        .expect("a Published cell id is bound to one T");
                }
                let (epoch, value) = self.refresh();
                slot.1 = epoch;
                slot.2 = Arc::clone(&value) as Arc<dyn Any + Send + Sync>;
                return value;
            }
            let (epoch, value) = self.refresh();
            if slots.len() >= MAX_CACHED_CELLS {
                slots.remove(0);
            }
            slots.push((
                self.id,
                epoch,
                Arc::clone(&value) as Arc<dyn Any + Send + Sync>,
            ));
            value
        })
    }

    /// Publishes a new snapshot and returns its epoch. Single-writer by
    /// convention (the service serializes publishes on its writer
    /// mutex); concurrent publishes are still memory-safe, just
    /// arbitrarily ordered.
    pub fn publish(&self, value: T) -> u64 {
        let mut guard = self.current.write();
        guard.0 += 1;
        guard.1 = Arc::new(value);
        // Release-store while still holding the write lock: a reader
        // that sees this epoch and refreshes will block until the pair
        // is consistent, then read exactly this (or a newer) snapshot.
        self.epoch.store(guard.0, Ordering::Release);
        guard.0
    }

    /// Reads the authoritative pair (the slow path, once per thread per
    /// epoch).
    fn refresh(&self) -> (u64, Arc<T>) {
        let guard = self.current.read();
        (guard.0, Arc::clone(&guard.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_the_published_value_and_caches_it() {
        let cell = Published::new(41u64);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), 41);
        // Same epoch: the second load must come from the thread slot.
        assert!(Arc::ptr_eq(&cell.load(), &cell.load()));
        let epoch = cell.publish(42);
        assert_eq!(epoch, 2);
        assert_eq!(cell.epoch(), 2);
        assert_eq!(*cell.load(), 42);
    }

    #[test]
    fn old_snapshots_survive_until_their_readers_drop_them() {
        let cell = Published::new(String::from("first"));
        let held = cell.load();
        cell.publish(String::from("second"));
        assert_eq!(*held, "first", "the in-flight reader keeps its epoch");
        assert_eq!(*cell.load(), "second");
        drop(held); // the last Arc frees the retired snapshot
    }

    #[test]
    fn two_cells_of_the_same_type_do_not_share_slots() {
        let a = Published::new(1u32);
        let b = Published::new(2u32);
        assert_eq!(*a.load(), 1);
        assert_eq!(*b.load(), 2);
        a.publish(10);
        assert_eq!(*a.load(), 10);
        assert_eq!(*b.load(), 2);
    }

    #[test]
    fn concurrent_readers_observe_monotonic_epochs() {
        // The Miri-able correctness core: readers race a publisher and
        // must only ever observe values in publication order, each load
        // internally consistent (the value IS the epoch).
        let cell = Arc::new(Published::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let seen = *cell.load();
                        assert!(seen >= last, "epoch went backwards: {seen} < {last}");
                        last = seen;
                    }
                    last
                })
            })
            .collect();
        for v in 1..=16u64 {
            assert_eq!(cell.publish(v), v + 1);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() <= 16);
        }
        assert_eq!(*cell.load(), 16);
    }

    #[test]
    fn a_reader_thread_never_blocks_on_a_held_load() {
        // Steady-state loads are lock-free: a thread that has warmed its
        // slot keeps loading even while another thread sits inside a
        // (hypothetical) long write section — modelled here by taking
        // the epoch but not publishing.
        let cell = Arc::new(Published::new(7u8));
        cell.load();
        let cell2 = Arc::clone(&cell);
        let t = std::thread::spawn(move || {
            cell2.load(); // warm this thread's slot
            (0..1000).map(|_| *cell2.load() as u64).sum::<u64>()
        });
        assert_eq!(t.join().unwrap(), 7000);
    }
}
