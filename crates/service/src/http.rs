//! A small, dependency-free HTTP/1.1 server over `std::net`.
//!
//! One acceptor thread; one detached worker thread per connection with
//! keep-alive, so a load generator's persistent connections each get a
//! worker and the kernel does the scheduling. Request framing is
//! deliberately minimal — request line, headers, `Content-Length` body —
//! which covers every JSON client we care about; anything else (chunked
//! uploads, upgrades) gets a clean 400.
//!
//! Handler dispatch is wrapped in `catch_unwind`: a panicking handler is
//! a bug, but it must surface as a JSON 500 on that one request, not
//! kill the worker and reset the connection.

use crate::api::ApiError;
use crate::state::Service;
use serde::de::DeserializeOwned;
use serde::Deserialize;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum bytes of request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes (a `MAX_BATCH` batch of long names fits
/// comfortably).
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-read socket timeout; an idle keep-alive connection is dropped
/// after this long.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Namespace for [`Server::bind`]; the server has no state of its own.
pub struct Server;

/// A running server: its bound address and shutdown/join handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `service` until [`ServerHandle::shutdown`].
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<Service>) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("ucra-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = Arc::clone(&service);
                    let _ = std::thread::Builder::new()
                        .name("ucra-serve-conn".to_string())
                        .spawn(move || serve_connection(stream, &service));
                }
            })?;
        Ok(ServerHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the acceptor to stop and joins it. In-flight connections
    /// finish their current request and drop on the next read timeout.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// Reads one request off the connection. `Ok(None)` means the peer
/// closed cleanly between requests.
fn read_request(
    reader: &mut BufReader<TcpStream>,
) -> io::Result<Option<Result<Request, ApiError>>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(Some(Err(ApiError::BadRequest(
            "malformed request line".to_string(),
        ))));
    };
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length: usize = 0;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(Some(Err(ApiError::PayloadTooLarge {
                limit: MAX_HEAD_BYTES,
            })));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<usize>() else {
                return Ok(Some(Err(ApiError::BadRequest(
                    "unparseable Content-Length".to_string(),
                ))));
            };
            content_length = n;
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Ok(Some(Err(ApiError::BadRequest(
                "chunked bodies are not supported; send Content-Length".to_string(),
            ))));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Some(Err(ApiError::PayloadTooLarge {
            limit: MAX_BODY_BYTES,
        })));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let Ok(body) = String::from_utf8(body) else {
        return Ok(Some(Err(ApiError::BadRequest(
            "body is not UTF-8".to_string(),
        ))));
    };
    Ok(Some(Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        _ => "Internal Server Error",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn serve_connection(stream: TcpStream, service: &Service) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(Ok(req))) => req,
            Ok(Some(Err(err))) => {
                // Framing error: answer it, then drop the connection —
                // the stream position is no longer trustworthy.
                let _ = write_response(&mut writer, err.status(), &err.to_json(), false);
                return;
            }
            Ok(None) | Err(_) => return,
        };
        // A handler panic is a bug in us, never a reason to tear the
        // connection down mid-protocol.
        let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(service, &request)));
        let (status, body) = match outcome {
            Ok(Ok(body)) => (200, body),
            Ok(Err(err)) => (err.status(), err.to_json()),
            Err(_) => {
                let err = ApiError::Internal("handler panicked; see server log".to_string());
                (err.status(), err.to_json())
            }
        };
        if write_response(&mut writer, status, &body, request.keep_alive).is_err()
            || !request.keep_alive
        {
            return;
        }
    }
}

fn parse_body<T: DeserializeOwned>(body: &str) -> Result<T, ApiError> {
    serde_json::from_str(body).map_err(|e| ApiError::BadRequest(format!("bad request body: {e}")))
}

/// The edit bodies are endpoint-specific; kept private to the router.
#[derive(Deserialize)]
struct SubjectBody {
    name: String,
}

#[derive(Deserialize)]
struct MembershipBody {
    group: String,
    member: String,
}

#[derive(Deserialize)]
struct AuthorizationBody {
    subject: String,
    object: String,
    right: String,
    sign: String,
}

#[derive(Deserialize)]
struct RevokeBody {
    subject: String,
    object: String,
    right: String,
}

#[derive(Deserialize)]
struct StrategyBody {
    strategy: String,
}

fn dispatch(service: &Service, req: &Request) -> Result<String, ApiError> {
    let ok = |body: String| Ok(body);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => ok("{\"status\":\"ok\"}".to_string()),
        ("GET", "/stats") => {
            serde_json::to_string(&service.stats()).map_err(|e| ApiError::Internal(e.to_string()))
        }
        ("GET" | "POST", "/lint") => ok(service.lint()),
        ("POST", "/check") => {
            let resp = service.check(&parse_body(&req.body)?)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        ("POST", "/check_many") => {
            let resp = service.check_many(&parse_body(&req.body)?)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        ("POST", "/explain") => {
            let resp = service.explain(&parse_body(&req.body)?)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        // Already a complete JSON document — no serde round-trip.
        ("POST", "/impact") => service.impact(&parse_body(&req.body)?),
        ("POST", "/edit/subject") => {
            let body: SubjectBody = parse_body(&req.body)?;
            let resp = service.add_subject(&body.name)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        ("POST", "/edit/membership") => {
            let body: MembershipBody = parse_body(&req.body)?;
            let resp = service.add_membership(&body.group, &body.member)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        ("POST", "/edit/authorization") => {
            let body: AuthorizationBody = parse_body(&req.body)?;
            let resp =
                service.set_authorization(&body.subject, &body.object, &body.right, &body.sign)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        ("POST", "/edit/revoke") => {
            let body: RevokeBody = parse_body(&req.body)?;
            let resp = service.unset_authorization(&body.subject, &body.object, &body.right)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        ("POST", "/edit/strategy") => {
            let body: StrategyBody = parse_body(&req.body)?;
            let resp = service.set_strategy(&body.strategy)?;
            serde_json::to_string(&resp).map_err(|e| ApiError::Internal(e.to_string()))
        }
        (
            _,
            "/health"
            | "/stats"
            | "/lint"
            | "/check"
            | "/check_many"
            | "/explain"
            | "/impact"
            | "/edit/subject"
            | "/edit/membership"
            | "/edit/authorization"
            | "/edit/revoke"
            | "/edit/strategy",
        ) => Err(ApiError::MethodNotAllowed(req.path.clone())),
        (_, path) => Err(ApiError::NotFound(path.to_string())),
    }
}
