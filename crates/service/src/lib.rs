//! # `ucra-service` — the authorization daemon
//!
//! A long-lived HTTP/JSON decision point over
//! [`ucra_core::AccessSession`]: the paper's resolution algorithm, the
//! fused-sweep cache, and the incremental repair machinery, put behind a
//! network surface so the "fast library" becomes a fast *system*
//! (`ucra serve` boots it; DESIGN.md §8 describes the architecture).
//!
//! ## Lock discipline
//!
//! The whole installation — session plus the three name tables — sits
//! behind **one** `parking_lot::RwLock`:
//!
//! * **reads** (`/check`, `/check_many`, `/explain`, `/lint`, `/stats`)
//!   take the shared lock. `AccessSession`'s query methods are `&self`
//!   (its sweep cache and [`ucra_core::SweepContext`] live behind their
//!   own interior locks), so any number of concurrent readers share the
//!   same cached sweeps and the same traversal context — a cold
//!   `(object, right)` pair is swept once and serves everyone.
//! * **edits** (`/edit/*`) take the exclusive lock and go through the
//!   session's incremental-repair mutators. **No edit ever flushes a
//!   cache**: hierarchy and matrix edits cone-repair the cached tables
//!   in place, and a strategy switch invalidates nothing at all.
//!
//! Because the lock is held for the whole request, every request is
//! atomic with respect to edits: a batched `/check_many` observes one
//! consistent installation state (some prefix of the edit stream), never
//! a torn one. The concurrent-equivalence suite in
//! `tests/concurrent_equivalence.rs` pins that down against a serial
//! replay oracle.
//!
//! ## Error surface
//!
//! Untrusted input never panics a worker and never produces a bare 500:
//! malformed JSON, malformed strategy mnemonics (with a
//! nearest-legitimate-mnemonic suggestion, via [`ucra_lint`]), unknown
//! subject/object/right names, and oversized batches all map to
//! 400-class JSON bodies ([`ApiError`]). A panic in a handler — a bug,
//! not an input — is caught at the connection boundary and reported as a
//! JSON 500 instead of killing the worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod state;

pub use api::{
    ApiError, CheckManyRequest, CheckManyResponse, CheckRequest, EditResponse, ExplainResponse,
    ImpactRequest, StatsResponse, TripleRequest, MAX_BATCH,
};
pub use http::{Server, ServerHandle};
pub use state::Service;
