//! # `ucra-service` — the authorization daemon
//!
//! A long-lived HTTP/JSON decision point over
//! [`ucra_core::AccessSession`]: the paper's resolution algorithm, the
//! fused-sweep cache, and the incremental repair machinery, put behind a
//! network surface so the "fast library" becomes a fast *system*
//! (`ucra serve` boots it; DESIGN.md §8 describes the architecture).
//!
//! ## Read/write architecture: published snapshots
//!
//! The installation is served RCU-style (DESIGN.md §11):
//!
//! * **reads** (`/check`, `/check_many`, `/explain`, `/lint`, `/stats`,
//!   `/impact`) obtain the current immutable snapshot — a frozen
//!   [`ucra_core::SessionSnapshot`] plus the name tables — with **one
//!   atomic epoch load and zero lock acquisitions** in the steady state
//!   ([`publish::Published`]). Each snapshot carries a sharded decision
//!   memo, so repeated hot checks skip resolution entirely; cold
//!   `(object, right)` pairs are swept once into a reader-shared
//!   overflow cache and reclaimed by the writer at the next edit.
//! * **edits** (`/edit/*`) serialize on one writer mutex, apply through
//!   the session's incremental-repair mutators, then freeze and publish
//!   a successor snapshot. **No edit ever flushes a cache**: hierarchy
//!   and matrix edits cone-repair the cached tables in place (the
//!   tables are `Arc`-shared with live snapshots, so repair is
//!   clone-on-write), and a strategy switch invalidates nothing at all
//!   — not even the memo, whose keys embed the strategy.
//!
//! Because every request decides against one frozen snapshot, every
//! request is atomic with respect to edits *by construction*: a batched
//! `/check_many` observes one consistent installation state (some
//! prefix of the edit stream), never a torn one — and no longer blocks,
//! or is blocked by, a concurrent edit. The concurrent-equivalence
//! suite in `tests/concurrent_equivalence.rs` pins the prefix property
//! against a serial replay oracle; `tests/snapshot_isolation.rs` pins
//! epoch consistency, writer liveness under saturating reads, and that
//! reads complete while the writer mutex is held.
//!
//! ## Error surface
//!
//! Untrusted input never panics a worker and never produces a bare 500:
//! malformed JSON, malformed strategy mnemonics (with a
//! nearest-legitimate-mnemonic suggestion, via [`ucra_lint`]), unknown
//! subject/object/right names, and oversized batches all map to
//! 400-class JSON bodies ([`ApiError`]). A panic in a handler — a bug,
//! not an input — is caught at the connection boundary and reported as a
//! JSON 500 instead of killing the worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod publish;
pub mod state;

pub use api::{
    ApiError, CheckManyRequest, CheckManyResponse, CheckRequest, EditResponse, ExplainResponse,
    ImpactRequest, StatsResponse, TripleRequest, MAX_BATCH,
};
pub use http::{Server, ServerHandle};
pub use state::Service;
