//! Structural analyses of hierarchies: summary statistics, transitive
//! closure, and density measures used when characterising workloads
//! (paper §4 reports exactly these numbers for the Livelink data).

use crate::traverse::{self, topo_order};
use crate::{Dag, NodeId};

/// Summary statistics of a DAG, in the vocabulary the paper uses to
/// describe its evaluation data.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Total subjects.
    pub nodes: usize,
    /// Total membership edges.
    pub edges: usize,
    /// Nodes with no parents.
    pub roots: usize,
    /// Nodes with no children (the paper's "sinks" / individual users).
    pub sinks: usize,
    /// Length of the longest directed path, in edges.
    pub depth: u32,
    /// Maximum out-degree (largest direct membership list).
    pub max_out_degree: usize,
    /// Maximum in-degree (a subject's largest number of direct groups).
    pub max_in_degree: usize,
    /// Mean out-degree over non-sink nodes (0.0 for edgeless graphs).
    pub mean_group_size: f64,
}

/// Computes a [`GraphSummary`].
///
/// ```
/// use ucra_graph::{analysis, Dag, NodeId};
///
/// let n = |i| NodeId::from_index(i);
/// let dag = Dag::from_edges(4, [(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(3))]).unwrap();
/// let s = analysis::summary(&dag);
/// assert_eq!((s.roots, s.sinks, s.depth), (1, 1, 2));
/// ```
pub fn summary(dag: &Dag) -> GraphSummary {
    let groups = dag.nodes().filter(|&v| dag.out_degree(v) > 0).count();
    GraphSummary {
        nodes: dag.node_count(),
        edges: dag.edge_count(),
        roots: dag.roots().count(),
        sinks: dag.sinks().count(),
        depth: traverse::longest_path_len(dag),
        max_out_degree: dag.nodes().map(|v| dag.out_degree(v)).max().unwrap_or(0),
        max_in_degree: dag.nodes().map(|v| dag.in_degree(v)).max().unwrap_or(0),
        mean_group_size: if groups == 0 {
            0.0
        } else {
            dag.edge_count() as f64 / groups as f64
        },
    }
}

/// The transitive closure as a bit-matrix: `closure[v][u]` is `true` when
/// `v` reaches `u` (including `v == u`).
///
/// `O(V·E/64)` time via bitset propagation in reverse topological order;
/// intended for analysis and for cross-checking reachability-dependent
/// algorithms on small graphs, not for the query path.
pub fn transitive_closure(dag: &Dag) -> Vec<Vec<bool>> {
    let n = dag.node_count();
    let mut closure: Vec<Vec<bool>> = vec![vec![false; n]; n];
    for v in topo_order(dag).into_iter().rev() {
        closure[v.index()][v.index()] = true;
        // v reaches everything each child reaches.
        for ci in 0..dag.children(v).len() {
            let c = dag.children(v)[ci];
            let (left, right) = split_two(&mut closure, v.index(), c.index());
            for (l, r) in left.iter_mut().zip(right.iter()) {
                *l |= *r;
            }
        }
    }
    closure
}

/// Borrows two distinct rows of the matrix mutably/immutably.
fn split_two(matrix: &mut [Vec<bool>], a: usize, b: usize) -> (&mut Vec<bool>, &Vec<bool>) {
    assert_ne!(a, b, "DAG edges have distinct endpoints");
    if a < b {
        let (lo, hi) = matrix.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = matrix.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

/// Number of ancestors (up-reachable nodes, excluding `v` itself) of
/// each node.
pub fn ancestor_counts(dag: &Dag) -> Vec<usize> {
    let closure = transitive_closure(dag);
    let n = dag.node_count();
    (0..n)
        .map(|u| (0..n).filter(|&v| v != u && closure[v][u]).count())
        .collect()
}

/// The weakly connected components of the graph: maximal node sets
/// connected when edge direction is ignored, each sorted by node id,
/// ordered largest-first (ties broken by smallest member id).
///
/// An access-control hierarchy normally forms one weakly connected
/// component per administrative domain; stray extra components usually
/// indicate subjects that were disconnected by a typo'd group name. The
/// static policy analyser (`ucra_lint`) uses this to flag fragmented
/// hierarchies.
pub fn weakly_connected_components(dag: &Dag) -> Vec<Vec<NodeId>> {
    let n = dag.node_count();
    let mut component = vec![usize::MAX; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for start in dag.nodes() {
        if component[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        component[start.index()] = id;
        components.push(vec![start]);
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &u in dag.children(v).iter().chain(dag.parents(v)) {
                if component[u.index()] == usize::MAX {
                    component[u.index()] = id;
                    components[id].push(u);
                    stack.push(u);
                }
            }
        }
    }
    for members in &mut components {
        members.sort_unstable();
    }
    components.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    components
}

/// Verifies that `order` is a permutation of the graph's nodes with
/// every edge pointing forward — the contract of
/// [`crate::traverse::topo_order`], exposed so property tests and
/// external generators can check their own orders.
pub fn is_topological_order(dag: &Dag, order: &[NodeId]) -> bool {
    if order.len() != dag.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; dag.node_count()];
    for (i, v) in order.iter().enumerate() {
        if !dag.contains(*v) || pos[v.index()] != usize::MAX {
            return false;
        }
        pos[v.index()] = i;
    }
    dag.edges().all(|(p, c)| pos[p.index()] < pos[c.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag, [NodeId; 4]) {
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn summary_of_diamond() {
        let (g, _) = diamond();
        let s = summary(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.roots, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert!((s.mean_group_size - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_graph() {
        let s = summary(&Dag::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_group_size, 0.0);
        assert_eq!(s.max_out_degree, 0);
    }

    #[test]
    fn closure_matches_reaches() {
        let (g, nodes) = diamond();
        let closure = transitive_closure(&g);
        for &u in &nodes {
            for &v in &nodes {
                assert_eq!(
                    closure[u.index()][v.index()],
                    g.reaches(u, v),
                    "{u:?} ⇝ {v:?}"
                );
            }
        }
    }

    #[test]
    fn ancestor_counts_of_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let counts = ancestor_counts(&g);
        assert_eq!(counts[a.index()], 0);
        assert_eq!(counts[b.index()], 1);
        assert_eq!(counts[c.index()], 1);
        assert_eq!(counts[d.index()], 3);
    }

    #[test]
    fn weak_components_of_split_graph() {
        // Diamond (4 nodes) + chain of 2 + isolated node: 3 components,
        // largest first.
        let (mut g, [a, ..]) = diamond();
        let e = g.add_node();
        let f = g.add_node();
        g.add_edge(e, f).unwrap();
        let lone = g.add_node();
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[0][0], a);
        assert_eq!(comps[1], vec![e, f]);
        assert_eq!(comps[2], vec![lone]);
    }

    #[test]
    fn weak_components_of_connected_and_empty_graphs() {
        let (g, _) = diamond();
        assert_eq!(weakly_connected_components(&g).len(), 1);
        assert!(weakly_connected_components(&Dag::new()).is_empty());
    }

    #[test]
    fn weak_components_ignore_edge_direction() {
        // a → c ← b: weakly one component despite two roots.
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(weakly_connected_components(&g), vec![vec![a, b, c]]);
    }

    #[test]
    fn topo_order_validation() {
        let (g, [a, b, c, d]) = diamond();
        assert!(is_topological_order(&g, &[a, b, c, d]));
        assert!(is_topological_order(&g, &[a, c, b, d]));
        assert!(!is_topological_order(&g, &[b, a, c, d])); // edge a→b backwards
        assert!(!is_topological_order(&g, &[a, b, c])); // wrong length
        assert!(!is_topological_order(&g, &[a, a, b, d])); // duplicate
        assert!(is_topological_order(&g, &crate::traverse::topo_order(&g)));
    }
}
