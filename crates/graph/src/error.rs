//! Error type for graph construction and analysis.

use crate::NodeId;
use std::fmt;

/// Errors produced while building or analysing a [`crate::Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referred to a node that does not exist in this graph.
    UnknownNode(NodeId),
    /// The edge would create a directed cycle (`child` already reaches
    /// `parent`), violating the subject-hierarchy DAG invariant.
    WouldCycle {
        /// The proposed edge's source (group).
        parent: NodeId,
        /// The proposed edge's target (member).
        child: NodeId,
    },
    /// The edge `parent → child` already exists. Subject hierarchies are
    /// simple graphs; duplicate membership edges would double-count paths.
    DuplicateEdge {
        /// The existing edge's source.
        parent: NodeId,
        /// The existing edge's target.
        child: NodeId,
    },
    /// A self-loop `v → v` was requested.
    SelfLoop(NodeId),
    /// A path-statistics computation overflowed its `u128` accumulator.
    /// The number of paths in a DAG can grow as `O(2^n)` (paper §3.3), so
    /// all counting is checked rather than silently wrapping.
    PathCountOverflow,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            GraphError::WouldCycle { parent, child } => write!(
                f,
                "edge {parent:?} -> {child:?} would create a cycle in the subject hierarchy"
            ),
            GraphError::DuplicateEdge { parent, child } => {
                write!(f, "edge {parent:?} -> {child:?} already exists")
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n:?} is not allowed"),
            GraphError::PathCountOverflow => {
                write!(
                    f,
                    "path statistics overflowed u128 (graph has too many paths)"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}
