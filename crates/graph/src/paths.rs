//! Per-path statistics over a DAG.
//!
//! The paper's complexity analysis (§3.3) is driven by `d`, *"the sum of the
//! path lengths for all paths leading from a root or an explicitly
//! authorized subject to the given subject of interest s"*, which can grow
//! as `O(n·2ⁿ)`. Everything here therefore uses **checked `u128`**
//! arithmetic and reports [`GraphError::PathCountOverflow`] instead of
//! silently wrapping.

use crate::traverse::{bfs_with_depth, topo_order, Direction};
use crate::{Dag, GraphError, NodeId};

/// Number of distinct directed paths `from ⇝ to`.
///
/// A node has exactly one (empty) path to itself.
pub fn count_paths(dag: &Dag, from: NodeId, to: NodeId) -> Result<u128, GraphError> {
    if !dag.contains(from) {
        return Err(GraphError::UnknownNode(from));
    }
    Ok(paths_to(dag, to)?[from.index()])
}

/// For every node `v`, the number of directed paths `v ⇝ to`.
///
/// Computed by one dynamic-programming sweep in reverse topological order:
/// `cnt[to] = 1`, `cnt[v] = Σ cnt[child]` over children that reach `to`.
pub fn paths_to(dag: &Dag, to: NodeId) -> Result<Vec<u128>, GraphError> {
    if !dag.contains(to) {
        return Err(GraphError::UnknownNode(to));
    }
    let mut cnt = vec![0u128; dag.node_count()];
    cnt[to.index()] = 1;
    for v in topo_order(dag).into_iter().rev() {
        if v == to {
            continue;
        }
        let mut total: u128 = 0;
        for &c in dag.children(v) {
            total = total
                .checked_add(cnt[c.index()])
                .ok_or(GraphError::PathCountOverflow)?;
        }
        cnt[v.index()] = total;
    }
    Ok(cnt)
}

/// Per-node path statistics toward a fixed sink: the number of paths and
/// the total length (in edges) of all those paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathStats {
    /// Number of distinct directed paths from this node to the sink.
    pub count: u128,
    /// Sum of the lengths of those paths.
    pub total_len: u128,
}

/// For every node `v`, the [`PathStats`] of all paths `v ⇝ to`.
///
/// Recurrences over reverse topological order:
/// `count[v] = Σ count[c]`, `total_len[v] = Σ (total_len[c] + count[c])`
/// (each path through child `c` is one edge longer than the corresponding
/// path from `c`).
pub fn path_stats_to(dag: &Dag, to: NodeId) -> Result<Vec<PathStats>, GraphError> {
    if !dag.contains(to) {
        return Err(GraphError::UnknownNode(to));
    }
    let mut stats = vec![PathStats::default(); dag.node_count()];
    stats[to.index()] = PathStats {
        count: 1,
        total_len: 0,
    };
    for v in topo_order(dag).into_iter().rev() {
        if v == to {
            continue;
        }
        let mut acc = PathStats::default();
        for &c in dag.children(v) {
            let cs = stats[c.index()];
            acc.count = acc
                .count
                .checked_add(cs.count)
                .ok_or(GraphError::PathCountOverflow)?;
            let extended = cs
                .total_len
                .checked_add(cs.count)
                .ok_or(GraphError::PathCountOverflow)?;
            acc.total_len = acc
                .total_len
                .checked_add(extended)
                .ok_or(GraphError::PathCountOverflow)?;
        }
        stats[v.index()] = acc;
    }
    Ok(stats)
}

/// The paper's `d`: the sum of the lengths of **all** paths from each node
/// in `sources` to `to`.
///
/// `sources` is typically the set of explicitly-authorized ancestors plus
/// the unlabeled roots of the ancestor sub-graph (§3.3). Sources that do
/// not reach `to` contribute 0. Duplicate sources are summed once each, as
/// given.
pub fn sum_path_lengths_to(dag: &Dag, sources: &[NodeId], to: NodeId) -> Result<u128, GraphError> {
    let stats = path_stats_to(dag, to)?;
    let mut d: u128 = 0;
    for &s in sources {
        if !dag.contains(s) {
            return Err(GraphError::UnknownNode(s));
        }
        d = d
            .checked_add(stats[s.index()].total_len)
            .ok_or(GraphError::PathCountOverflow)?;
    }
    Ok(d)
}

/// Shortest upward distance from `from` to every ancestor.
///
/// Entry `v` is `Some(k)` when `v` is an ancestor of `from` (or `from`
/// itself, at 0) with shortest directed path `v ⇝ from` of length `k`.
/// This is the distance notion the paper's Locality policy uses ("the
/// distance between two subjects is measured by computing the shortest
/// directed path") and the level order the `Dominance()` baseline walks.
pub fn shortest_up_distances(dag: &Dag, from: NodeId) -> Vec<Option<u32>> {
    let mut out = vec![None; dag.node_count()];
    for (v, depth) in bfs_with_depth(dag, &[from], Direction::Up) {
        out[v.index()] = Some(depth);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `k` stacked diamonds: path count 2^k.
    fn diamond_chain(k: usize) -> (Dag, NodeId, NodeId) {
        let mut g = Dag::new();
        let mut top = g.add_node();
        let first = top;
        for _ in 0..k {
            let l = g.add_node();
            let r = g.add_node();
            let bottom = g.add_node();
            g.add_edge(top, l).unwrap();
            g.add_edge(top, r).unwrap();
            g.add_edge(l, bottom).unwrap();
            g.add_edge(r, bottom).unwrap();
            top = bottom;
        }
        (g, first, top)
    }

    #[test]
    fn single_node_has_one_empty_path() {
        let mut g = Dag::new();
        let v = g.add_node();
        assert_eq!(count_paths(&g, v, v).unwrap(), 1);
        let stats = path_stats_to(&g, v).unwrap();
        assert_eq!(
            stats[v.index()],
            PathStats {
                count: 1,
                total_len: 0
            }
        );
    }

    #[test]
    fn diamond_has_two_paths_of_total_length_four() {
        let (g, top, bottom) = diamond_chain(1);
        assert_eq!(count_paths(&g, top, bottom).unwrap(), 2);
        let stats = path_stats_to(&g, bottom).unwrap();
        assert_eq!(
            stats[top.index()],
            PathStats {
                count: 2,
                total_len: 4
            }
        );
    }

    #[test]
    fn diamond_chain_path_count_is_exponential() {
        let (g, top, bottom) = diamond_chain(20);
        assert_eq!(count_paths(&g, top, bottom).unwrap(), 1 << 20);
    }

    #[test]
    fn unreachable_pairs_have_zero_paths() {
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(count_paths(&g, a, b).unwrap(), 0);
        assert_eq!(count_paths(&g, b, a).unwrap(), 0);
    }

    #[test]
    fn unknown_nodes_error() {
        let g = Dag::new();
        let ghost = NodeId::from_index(0);
        assert!(matches!(
            paths_to(&g, ghost),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn figure3_d_matches_hand_count() {
        // Figure 3: s1→s3, s2→s3, s2→u, s3→s5, s5→u, s6→s5, s6→u.
        let mut g = Dag::new();
        let s1 = g.add_node();
        let s2 = g.add_node();
        let s3 = g.add_node();
        let s5 = g.add_node();
        let s6 = g.add_node();
        let u = g.add_node();
        g.add_edge(s1, s3).unwrap();
        g.add_edge(s2, s3).unwrap();
        g.add_edge(s2, u).unwrap();
        g.add_edge(s3, s5).unwrap();
        g.add_edge(s5, u).unwrap();
        g.add_edge(s6, s5).unwrap();
        g.add_edge(s6, u).unwrap();
        // Paths to u: s1: one path of length 3. s2: lengths 1 and 3.
        // s5: length 1. s6: lengths 1 and 2.
        let stats = path_stats_to(&g, u).unwrap();
        assert_eq!(
            stats[s1.index()],
            PathStats {
                count: 1,
                total_len: 3
            }
        );
        assert_eq!(
            stats[s2.index()],
            PathStats {
                count: 2,
                total_len: 4
            }
        );
        assert_eq!(
            stats[s5.index()],
            PathStats {
                count: 1,
                total_len: 1
            }
        );
        assert_eq!(
            stats[s6.index()],
            PathStats {
                count: 2,
                total_len: 3
            }
        );
        // d over sources {explicit: s2, s5; unlabeled roots: s1, s6}
        // = 4 + 1 + 3 + 3 = 11, which is the total length of Table 1's rows:
        // 1+1+2+1+3+3 = 11.
        let d = sum_path_lengths_to(&g, &[s2, s5, s1, s6], u).unwrap();
        assert_eq!(d, 11);
    }

    #[test]
    fn shortest_up_distances_match_bfs() {
        let (g, top, bottom) = diamond_chain(2);
        let dist = shortest_up_distances(&g, bottom);
        assert_eq!(dist[bottom.index()], Some(0));
        assert_eq!(dist[top.index()], Some(4));
        // Nodes not ancestors of `top` itself:
        let dist_top = shortest_up_distances(&g, top);
        assert_eq!(dist_top[top.index()], Some(0));
        assert_eq!(dist_top[bottom.index()], None);
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        // 128 stacked diamonds: 2^128 paths overflows u128.
        let (g, _top, bottom) = diamond_chain(128);
        assert_eq!(paths_to(&g, bottom), Err(GraphError::PathCountOverflow));
    }

    #[test]
    fn sum_path_lengths_ignores_non_ancestors() {
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        // c is unrelated to b.
        let d = sum_path_lengths_to(&g, &[a, c], b).unwrap();
        assert_eq!(d, 1);
    }
}
