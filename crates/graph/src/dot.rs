//! Graphviz DOT export, for documentation and debugging of hierarchies.

use crate::{Dag, NodeId};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax.
///
/// `label` supplies the display text for each node (e.g. a subject name
/// plus its explicit authorization sign); node identity in the DOT output
/// is the numeric id, so labels need not be unique.
pub fn to_dot(dag: &Dag, mut label: impl FnMut(NodeId) -> String) -> String {
    let mut out = String::new();
    out.push_str("digraph hierarchy {\n  rankdir=TB;\n  node [shape=ellipse];\n");
    for v in dag.nodes() {
        let text = escape(&label(v));
        let _ = writeln!(out, "  n{} [label=\"{}\"];", v.index(), text);
    }
    for (p, c) in dag.edges() {
        let _ = writeln!(out, "  n{} -> n{};", p.index(), c.index());
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        let dot = to_dot(&g, |v| format!("S{}", v.index() + 1));
        assert!(dot.starts_with("digraph hierarchy {"));
        assert!(dot.contains("n0 [label=\"S1\"];"));
        assert!(dot.contains("n1 [label=\"S2\"];"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_quotes_in_labels() {
        let mut g = Dag::new();
        g.add_node();
        let dot = to_dot(&g, |_| "a \"quoted\" name \\ slash".to_string());
        assert!(dot.contains("label=\"a \\\"quoted\\\" name \\\\ slash\""));
    }
}
