//! # `ucra-graph` — directed-acyclic-graph substrate
//!
//! A small, from-scratch DAG library tailored to subject hierarchies as used
//! by *A Unified Conflict Resolution Algorithm* (Chinaei, Chinaei & Tompa,
//! 2007). Edges point from a **group to its members** (parent → child), so
//! authorizations flow *down* edges while ancestor queries walk *up* them.
//!
//! The crate provides exactly the operations the paper's algorithms need:
//!
//! * incremental construction with cycle rejection ([`Dag::add_edge`]);
//! * ancestor sets and induced ancestor sub-graphs (Step 1 of the paper's
//!   four-step procedure, [`subgraph::ancestor_subgraph`]);
//! * roots, sinks, parents, children ([`Dag::roots`], [`Dag::sinks`], …);
//! * topological orders and reachability ([`traverse::topo_order`]);
//! * per-path statistics: path counts and the paper's `d` — the sum of the
//!   lengths of *all* paths from a set of source nodes to a sink
//!   ([`paths::sum_path_lengths_to`]), which drives Figure 7;
//! * shortest upward distances for the `Dominance()` baseline
//!   ([`paths::shortest_up_distances`]);
//! * Graphviz DOT export for documentation and debugging ([`dot::to_dot`]).
//!
//! The library intentionally does **not** depend on `petgraph`: the graph
//! layer is part of the reproduction and is kept minimal, auditable and
//! specialised (e.g. `u128` checked path counting, because the number of
//! paths in a DAG is exponential in the worst case — §3.3 of the paper).
//!
//! ## Example
//!
//! ```
//! use ucra_graph::Dag;
//!
//! let mut dag = Dag::new();
//! let root = dag.add_node();
//! let group = dag.add_node();
//! let user = dag.add_node();
//! dag.add_edge(root, group).unwrap();
//! dag.add_edge(group, user).unwrap();
//! dag.add_edge(root, user).unwrap();
//!
//! assert_eq!(dag.roots().collect::<Vec<_>>(), vec![root]);
//! assert_eq!(dag.sinks().collect::<Vec<_>>(), vec![user]);
//! // Two paths root→user: direct, and via the group.
//! assert_eq!(ucra_graph::paths::count_paths(&dag, root, user).unwrap(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod dag;
pub mod dot;
mod error;
pub mod io;
pub mod paths;
pub mod subgraph;
pub mod traverse;

pub use dag::{Dag, NodeId};
pub use error::GraphError;
pub use subgraph::AncestorSubgraph;
