//! Plain edge-list interchange: one `parent child` pair per line.
//!
//! The format real hierarchy dumps tend to arrive in (and the one our
//! workload generators can round-trip for external analysis):
//!
//! ```text
//! # comments and blank lines are skipped
//! 0 2
//! 1 2
//! 2 3
//! ```
//!
//! Node ids are dense non-negative integers; the graph gets
//! `max_id + 1` nodes even if some are isolated… isolated nodes *below*
//! the maximum id survive a round-trip, ones above it need an explicit
//! `node <id>` line.

use crate::{Dag, GraphError, NodeId};
use std::fmt::Write as _;

/// Errors from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line was not `node <id>`, `<parent> <child>`, blank or comment.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edge list violated the DAG invariants (cycle, duplicate,
    /// self-loop).
    Graph {
        /// 1-based line number.
        line: usize,
        /// The underlying graph error.
        source: GraphError,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: cannot parse `{content}`")
            }
            ParseError::Graph { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Graph { source, .. } => Some(source),
            ParseError::BadLine { .. } => None,
        }
    }
}

/// Parses an edge list into a [`Dag`].
pub fn parse_edge_list(input: &str) -> Result<Dag, ParseError> {
    let mut dag = Dag::new();
    let ensure = |dag: &mut Dag, id: usize| {
        while dag.node_count() <= id {
            dag.add_node();
        }
    };
    for (ix, raw) in input.lines().enumerate() {
        let line = ix + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let bad = || ParseError::BadLine {
            line,
            content: content.to_string(),
        };
        let mut words = content.split_whitespace();
        let first = words.next().ok_or_else(bad)?;
        if first == "node" {
            let id: usize = words.next().and_then(|w| w.parse().ok()).ok_or_else(bad)?;
            if words.next().is_some() {
                return Err(bad());
            }
            ensure(&mut dag, id);
            continue;
        }
        let parent: usize = first.parse().map_err(|_| bad())?;
        let child: usize = words.next().and_then(|w| w.parse().ok()).ok_or_else(bad)?;
        if words.next().is_some() {
            return Err(bad());
        }
        ensure(&mut dag, parent.max(child));
        dag.add_edge(NodeId::from_index(parent), NodeId::from_index(child))
            .map_err(|source| ParseError::Graph { line, source })?;
    }
    Ok(dag)
}

/// Renders a [`Dag`] as an edge list (isolated nodes as `node <id>`
/// lines, so parsing the output reproduces the graph exactly).
pub fn render_edge_list(dag: &Dag) -> String {
    let mut out = String::new();
    for v in dag.nodes() {
        if dag.in_degree(v) == 0 && dag.out_degree(v) == 0 {
            let _ = writeln!(out, "node {}", v.index());
        }
    }
    for (p, c) in dag.edges() {
        let _ = writeln!(out, "{} {}", p.index(), c.index());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_edges_comments_and_nodes() {
        let g = parse_edge_list("# fig\n0 2\n1 2 # both groups\n2 3\nnode 5\n").unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 3);
        assert!(g.reaches(NodeId::from_index(0), NodeId::from_index(3)));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = parse_edge_list("0 1\n0 2\n1 3\n2 3\nnode 4\n").unwrap();
        let text = render_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(
            back.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bad_lines_are_located() {
        let err = parse_edge_list("0 1\nbogus\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::BadLine {
                line: 2,
                content: "bogus".to_string()
            }
        );
        let err = parse_edge_list("0 1 2\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 1, .. }));
        let err = parse_edge_list("node x\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 1, .. }));
    }

    #[test]
    fn cycles_are_rejected_with_line_numbers() {
        let err = parse_edge_list("0 1\n1 2\n2 0\n").unwrap_err();
        match err {
            ParseError::Graph { line: 3, source } => {
                assert!(matches!(source, GraphError::WouldCycle { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
