//! Traversals: breadth-first search (both directions), topological order,
//! and level (BFS-depth) assignment.

use crate::{Dag, NodeId};
use std::collections::VecDeque;

/// Direction of a traversal relative to edge orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges parent → child (authorization flow).
    Down,
    /// Follow edges child → parent (ancestor discovery).
    Up,
}

fn neighbours(dag: &Dag, v: NodeId, dir: Direction) -> &[NodeId] {
    match dir {
        Direction::Down => dag.children(v),
        Direction::Up => dag.parents(v),
    }
}

/// Breadth-first search from `starts`, returning each reached node paired
/// with its BFS depth (minimum edge distance from any start).
///
/// Nodes are returned in non-decreasing depth order; the starts themselves
/// appear first with depth 0. Duplicate start nodes are visited once.
pub fn bfs_with_depth(dag: &Dag, starts: &[NodeId], dir: Direction) -> Vec<(NodeId, u32)> {
    let mut depth: Vec<Option<u32>> = vec![None; dag.node_count()];
    let mut out = Vec::new();
    let mut q = VecDeque::new();
    for &s in starts {
        if depth[s.index()].is_none() {
            depth[s.index()] = Some(0);
            out.push((s, 0));
            q.push_back(s);
        }
    }
    while let Some(v) = q.pop_front() {
        let dv = depth[v.index()].expect("queued node has a depth");
        for &n in neighbours(dag, v, dir) {
            if depth[n.index()].is_none() {
                depth[n.index()] = Some(dv + 1);
                out.push((n, dv + 1));
                q.push_back(n);
            }
        }
    }
    out
}

/// The set of nodes reachable from `starts` following `dir` (including the
/// starts), as a boolean membership vector indexed by node id.
pub fn reachable_set(dag: &Dag, starts: &[NodeId], dir: Direction) -> Vec<bool> {
    let mut seen = vec![false; dag.node_count()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in starts {
        if !seen[s.index()] {
            seen[s.index()] = true;
            stack.push(s);
        }
    }
    while let Some(v) = stack.pop() {
        for &n in neighbours(dag, v, dir) {
            if !seen[n.index()] {
                seen[n.index()] = true;
                stack.push(n);
            }
        }
    }
    seen
}

/// The nodes reachable from `starts` following `dir` (the *cone* of the
/// starts, including the starts themselves), in a topological order
/// restricted to the cone: a cone node appears after every cone node
/// that precedes it along `dir`.
///
/// For [`Direction::Down`] this lists a node's descendant cone with
/// parents-in-the-cone before children — exactly the visit order an
/// incremental re-sweep needs when only the cone is dirty and every
/// out-of-cone predecessor is known to be clean. Cost is `O(V)` for the
/// membership vector plus `O(Σ_{v ∈ cone} degree(v))`, independent of the
/// total edge count.
pub fn cone_topo_order(dag: &Dag, starts: &[NodeId], dir: Direction) -> Vec<NodeId> {
    let in_cone = reachable_set(dag, starts, dir);
    // Kahn's algorithm restricted to the cone: count only predecessors
    // (relative to `dir`) that are themselves cone members.
    let back = match dir {
        Direction::Down => Direction::Up,
        Direction::Up => Direction::Down,
    };
    let mut indeg = vec![0usize; dag.node_count()];
    let mut q = VecDeque::new();
    let mut cone_size = 0usize;
    for v in dag.nodes().filter(|v| in_cone[v.index()]) {
        cone_size += 1;
        indeg[v.index()] = neighbours(dag, v, back)
            .iter()
            .filter(|p| in_cone[p.index()])
            .count();
        if indeg[v.index()] == 0 {
            q.push_back(v);
        }
    }
    let mut order = Vec::with_capacity(cone_size);
    while let Some(v) = q.pop_front() {
        order.push(v);
        for &c in neighbours(dag, v, dir) {
            if in_cone[c.index()] {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    q.push_back(c);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), cone_size, "Dag invariant violated");
    order
}

/// A topological order of the whole graph (parents before children).
///
/// The [`Dag`] type is acyclic by construction, so this always succeeds.
/// Ties are broken by node id via Kahn's algorithm with a FIFO queue,
/// making the order deterministic.
pub fn topo_order(dag: &Dag) -> Vec<NodeId> {
    let mut indeg: Vec<usize> = dag.nodes().map(|v| dag.in_degree(v)).collect();
    let mut q: VecDeque<NodeId> = dag.nodes().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(dag.node_count());
    while let Some(v) = q.pop_front() {
        order.push(v);
        for &c in dag.children(v) {
            indeg[c.index()] -= 1;
            if indeg[c.index()] == 0 {
                q.push_back(c);
            }
        }
    }
    debug_assert_eq!(order.len(), dag.node_count(), "Dag invariant violated");
    order
}

/// Length of the longest directed path in the graph, in edges.
///
/// An empty graph and a graph of isolated nodes both have depth 0.
pub fn longest_path_len(dag: &Dag) -> u32 {
    let mut best: Vec<u32> = vec![0; dag.node_count()];
    let mut max = 0;
    for v in topo_order(dag) {
        let bv = best[v.index()];
        for &c in dag.children(v) {
            if bv + 1 > best[c.index()] {
                best[c.index()] = bv + 1;
                max = max.max(bv + 1);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → d, a → c → d, c → e
    fn sample() -> (Dag, [NodeId; 5]) {
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        let e = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        g.add_edge(c, e).unwrap();
        (g, [a, b, c, d, e])
    }

    #[test]
    fn bfs_down_depths_are_shortest_distances() {
        let (g, [a, b, c, d, e]) = sample();
        let got = bfs_with_depth(&g, &[a], Direction::Down);
        assert_eq!(got, vec![(a, 0), (b, 1), (c, 1), (d, 2), (e, 2)]);
    }

    #[test]
    fn bfs_up_finds_ancestors() {
        let (g, [a, b, c, d, _e]) = sample();
        let got = bfs_with_depth(&g, &[d], Direction::Up);
        assert_eq!(got[0], (d, 0));
        let depths: std::collections::HashMap<_, _> = got.into_iter().collect();
        assert_eq!(depths[&b], 1);
        assert_eq!(depths[&c], 1);
        assert_eq!(depths[&a], 2);
    }

    #[test]
    fn bfs_multiple_starts_take_minimum() {
        let (g, [a, _b, c, d, e]) = sample();
        let got = bfs_with_depth(&g, &[c, a], Direction::Down);
        let depths: std::collections::HashMap<_, _> = got.into_iter().collect();
        assert_eq!(depths[&c], 0);
        assert_eq!(depths[&a], 0);
        assert_eq!(depths[&d], 1); // via c, not via a→b→d
        assert_eq!(depths[&e], 1);
    }

    #[test]
    fn bfs_duplicate_starts_visit_once() {
        let (g, [a, ..]) = sample();
        let got = bfs_with_depth(&g, &[a, a, a], Direction::Down);
        assert_eq!(got.iter().filter(|(v, _)| *v == a).count(), 1);
    }

    #[test]
    fn reachable_set_down_and_up() {
        let (g, [a, b, c, d, e]) = sample();
        let down = reachable_set(&g, &[c], Direction::Down);
        assert!(down[c.index()] && down[d.index()] && down[e.index()]);
        assert!(!down[a.index()] && !down[b.index()]);
        let up = reachable_set(&g, &[e], Direction::Up);
        assert!(up[e.index()] && up[c.index()] && up[a.index()]);
        assert!(!up[b.index()] && !up[d.index()]);
    }

    #[test]
    fn cone_topo_order_lists_descendants_in_topo_order() {
        let (g, [a, b, c, d, e]) = sample();
        let cone = cone_topo_order(&g, &[c], Direction::Down);
        assert_eq!(cone.len(), 3);
        assert_eq!(cone[0], c);
        assert!(cone.contains(&d) && cone.contains(&e));
        assert!(!cone.contains(&a) && !cone.contains(&b));
        // Up direction: the ancestor cone of d, children before parents.
        let up = cone_topo_order(&g, &[d], Direction::Up);
        assert_eq!(up[0], d);
        assert_eq!(up.len(), 4);
        let pos = |v: NodeId| up.iter().position(|&x| x == v).unwrap();
        assert!(pos(b) < pos(a) && pos(c) < pos(a));
    }

    #[test]
    fn cone_topo_order_of_whole_graph_matches_edge_order() {
        let (g, _) = sample();
        let starts: Vec<NodeId> = g.roots().collect();
        let order = cone_topo_order(&g, &starts, Direction::Down);
        assert_eq!(order.len(), g.node_count());
        let mut pos = vec![0; g.node_count()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (p, c) in g.edges() {
            assert!(pos[p.index()] < pos[c.index()]);
        }
    }

    #[test]
    fn cone_topo_order_respects_in_cone_edges_on_diamond() {
        // a → b, a → c, b → d, c → d: cone of b is {b, d}; d after b.
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        assert_eq!(cone_topo_order(&g, &[b], Direction::Down), vec![b, d]);
        assert_eq!(cone_topo_order(&g, &[d], Direction::Down), vec![d]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = sample();
        let order = topo_order(&g);
        assert_eq!(order.len(), g.node_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (p, c) in g.edges() {
            assert!(pos[p.index()] < pos[c.index()], "{p:?} before {c:?}");
        }
    }

    #[test]
    fn longest_path_of_chain_and_diamond() {
        let (g, _) = sample();
        assert_eq!(longest_path_len(&g), 2);
        let mut chain = Dag::new();
        let v = chain.add_nodes(6);
        for w in v.windows(2) {
            chain.add_edge(w[0], w[1]).unwrap();
        }
        assert_eq!(longest_path_len(&chain), 5);
        assert_eq!(longest_path_len(&Dag::new()), 0);
    }
}
