//! Ancestor sub-graph extraction — Step 1 of the paper's four-step
//! procedure: "Consider the maximal sub-graph H of the subject hierarchy in
//! which Sᵢ is the sole sink and all other nodes are its ancestors."

use crate::traverse::{reachable_set, Direction};
use crate::{Dag, NodeId};

/// The induced ancestor sub-graph of one node, with id mappings back to the
/// original graph.
///
/// Produced by [`ancestor_subgraph`]. The designated node is the **sole
/// sink** of `dag`: every other retained node is one of its ancestors, and
/// edges among retained ancestors that bypass the node are kept (they are
/// induced), while edges leading out of the ancestor set are dropped.
#[derive(Debug, Clone)]
pub struct AncestorSubgraph {
    /// The induced sub-graph.
    pub dag: Dag,
    /// The queried node's id inside [`AncestorSubgraph::dag`].
    pub sink: NodeId,
    /// For each sub-graph node, the corresponding node of the original graph.
    to_original: Vec<NodeId>,
    /// For each original node, its sub-graph id (if retained).
    from_original: Vec<Option<NodeId>>,
}

impl AncestorSubgraph {
    /// Maps a sub-graph node back to the original graph.
    #[inline]
    pub fn original_id(&self, sub: NodeId) -> NodeId {
        self.to_original[sub.index()]
    }

    /// Maps an original-graph node into the sub-graph, if it was retained.
    #[inline]
    pub fn sub_id(&self, original: NodeId) -> Option<NodeId> {
        self.from_original[original.index()]
    }

    /// Iterator over `(sub_id, original_id)` pairs.
    pub fn mapping(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.to_original
            .iter()
            .enumerate()
            .map(|(i, &orig)| (NodeId::from_index(i), orig))
    }
}

/// Extracts the maximal sub-graph in which `node` is the sole sink and all
/// other nodes are its ancestors (paper §3 Step 1, and Line 1 of Function
/// `Propagate()`).
///
/// Note that this is the sub-graph **induced** on `ancestors(node)`:
/// an edge between two ancestors is retained even if it lies on no path to
/// `node`... which cannot happen: any ancestor-to-ancestor edge extends to a
/// path reaching `node` through its target, so the induced graph equals the
/// union of all paths into `node`, exactly as the paper's relational
/// definition (`subject ∈ ancestors(s) ∧ child ∈ ancestors(s)`) states.
pub fn ancestor_subgraph(dag: &Dag, node: NodeId) -> AncestorSubgraph {
    let keep = reachable_set(dag, &[node], Direction::Up);
    let mut from_original: Vec<Option<NodeId>> = vec![None; dag.node_count()];
    let mut to_original: Vec<NodeId> = Vec::new();
    let mut sub = Dag::new();
    for v in dag.nodes() {
        if keep[v.index()] {
            let s = sub.add_node();
            from_original[v.index()] = Some(s);
            to_original.push(v);
        }
    }
    // Only kept nodes' adjacency is visited: cost is O(V + E_kept), not
    // O(E) of the whole hierarchy — on enterprise-scale graphs most
    // queries touch a small ancestor cone.
    for &p in &to_original {
        for &c in dag.children(p) {
            if keep[c.index()] {
                let sp = from_original[p.index()].expect("kept");
                let sc = from_original[c.index()].expect("kept");
                // Acyclicity and simplicity are inherited from the source
                // graph, so the per-edge cycle DFS of `add_edge` would be
                // pure overhead (and dominates query cost at enterprise
                // scale).
                sub.add_edge_unchecked(sp, sc);
            }
        }
    }
    let sink = from_original[node.index()].expect("queried node is kept");
    AncestorSubgraph {
        dag: sub,
        sink,
        to_original,
        from_original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 skeleton restricted to what matters here:
    /// s1→s3, s2→s3, s2→u, s3→s5, s5→u, s6→s5, s6→u, s3→s4 (s4 outside u's
    /// ancestors).
    fn figure1() -> (Dag, [NodeId; 7]) {
        let mut g = Dag::new();
        let s1 = g.add_node();
        let s2 = g.add_node();
        let s3 = g.add_node();
        let s4 = g.add_node();
        let s5 = g.add_node();
        let s6 = g.add_node();
        let u = g.add_node();
        g.add_edge(s1, s3).unwrap();
        g.add_edge(s2, s3).unwrap();
        g.add_edge(s2, u).unwrap();
        g.add_edge(s3, s4).unwrap();
        g.add_edge(s3, s5).unwrap();
        g.add_edge(s5, u).unwrap();
        g.add_edge(s6, s5).unwrap();
        g.add_edge(s6, u).unwrap();
        (g, [s1, s2, s3, s4, s5, s6, u])
    }

    #[test]
    fn extracts_figure_3_from_figure_1() {
        let (g, [s1, s2, s3, s4, s5, s6, u]) = figure1();
        let sub = ancestor_subgraph(&g, u);
        // S4 is not an ancestor of User and must be dropped.
        assert_eq!(sub.dag.node_count(), 6);
        assert_eq!(sub.sub_id(s4), None);
        for v in [s1, s2, s3, s5, s6, u] {
            assert!(sub.sub_id(v).is_some(), "{v:?} must be retained");
        }
        // Exactly the 7 edges of Figure 3 (s3→s4 dropped).
        assert_eq!(sub.dag.edge_count(), 7);
        // The queried node is the sole sink.
        assert_eq!(sub.dag.sinks().collect::<Vec<_>>(), vec![sub.sink]);
        assert_eq!(sub.original_id(sub.sink), u);
        // Roots of the sub-graph are S1, S2 and S6 (S2 carries an explicit
        // label, so it is a root that will not receive a default).
        let roots: Vec<_> = sub.dag.roots().map(|r| sub.original_id(r)).collect();
        assert_eq!(roots, vec![s1, s2, s6]);
    }

    #[test]
    fn subgraph_of_a_root_is_single_node() {
        let (g, [s1, ..]) = figure1();
        let sub = ancestor_subgraph(&g, s1);
        assert_eq!(sub.dag.node_count(), 1);
        assert_eq!(sub.dag.edge_count(), 0);
        assert_eq!(sub.original_id(sub.sink), s1);
        assert!(sub.dag.is_root(sub.sink) && sub.dag.is_sink(sub.sink));
    }

    #[test]
    fn subgraph_of_interior_node() {
        let (g, [s1, s2, s3, _s4, s5, s6, _u]) = figure1();
        let sub = ancestor_subgraph(&g, s5);
        let kept: Vec<_> = sub.mapping().map(|(_, o)| o).collect();
        assert_eq!(kept, vec![s1, s2, s3, s5, s6]);
        // Edges: s1→s3, s2→s3, s3→s5, s6→s5 (s2→u etc. dropped).
        assert_eq!(sub.dag.edge_count(), 4);
        assert_eq!(sub.dag.sinks().count(), 1);
    }

    #[test]
    fn mapping_round_trips() {
        let (g, _) = figure1();
        let u = g.sinks().next().unwrap();
        let sub = ancestor_subgraph(&g, u);
        for (s, o) in sub.mapping() {
            assert_eq!(sub.sub_id(o), Some(s));
            assert_eq!(sub.original_id(s), o);
        }
    }

    #[test]
    fn induced_edges_preserve_adjacency() {
        let (g, _) = figure1();
        let u = g.sinks().next().unwrap();
        let sub = ancestor_subgraph(&g, u);
        for (p, c) in sub.dag.edges() {
            let (po, co) = (sub.original_id(p), sub.original_id(c));
            assert!(g.children(po).contains(&co));
        }
    }
}
