//! The core [`Dag`] type: a simple directed acyclic graph with parent and
//! child adjacency lists.

use crate::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within one [`Dag`].
///
/// Node ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that created them. The `u32`
/// representation keeps adjacency lists compact (see the type-size guidance
/// in the Rust Performance Book).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    ///
    /// Mostly useful for deserialisation and for tests; ids obtained this
    /// way must already exist in the graph they are used with.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        NodeId(u32::try_from(ix).expect("node index exceeds u32"))
    }

    /// The dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A simple directed acyclic graph.
///
/// Edges are directed **parent → child** (group → member in the
/// access-control reading). The graph is *simple*: self-loops and duplicate
/// edges are rejected, and [`Dag::add_edge`] refuses edges that would create
/// a cycle, so a `Dag` is acyclic by construction.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct Dag {
    /// `children[v]` = targets of edges leaving `v`, in insertion order.
    children: Vec<Vec<NodeId>>,
    /// `parents[v]` = sources of edges entering `v`, in insertion order.
    parents: Vec<Vec<NodeId>>,
    /// Total number of edges.
    edge_count: usize,
}

impl Dag {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Dag {
            children: Vec::with_capacity(nodes),
            parents: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Adds an isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.children.len());
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Adds `n` isolated nodes, returning their ids in order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.children.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// `true` when `node` exists in this graph.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.children.len()
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains(node) {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(node))
        }
    }

    /// Adds the edge `parent → child`.
    ///
    /// Rejects unknown endpoints, self-loops, duplicate edges, and edges
    /// that would create a directed cycle. The cycle check is a DFS from
    /// `child` over the child adjacency, i.e. `O(V + E)` worst case; for
    /// bulk loads of pre-validated data prefer building with this method
    /// anyway — hierarchy sizes in this domain (10⁴–10⁵ edges) make the
    /// check cheap, and acyclicity-by-construction removes an entire class
    /// of downstream errors.
    pub fn add_edge(&mut self, parent: NodeId, child: NodeId) -> Result<(), GraphError> {
        self.check_node(parent)?;
        self.check_node(child)?;
        if parent == child {
            return Err(GraphError::SelfLoop(parent));
        }
        if self.children[parent.index()].contains(&child) {
            return Err(GraphError::DuplicateEdge { parent, child });
        }
        if self.reaches(child, parent) {
            return Err(GraphError::WouldCycle { parent, child });
        }
        self.children[parent.index()].push(child);
        self.parents[child.index()].push(parent);
        self.edge_count += 1;
        Ok(())
    }

    /// Builds a graph with `nodes` nodes from an edge list in one pass,
    /// validating simplicity and acyclicity **once** (Kahn's algorithm)
    /// instead of per edge.
    ///
    /// Prefer this over repeated [`Dag::add_edge`] for bulk loads: the
    /// incremental cycle check costs `O(V + E)` *per edge*, this
    /// constructor costs `O(V + E)` total. On error the offending edge
    /// (duplicate/self-loop/unknown endpoint) or the cycle (as
    /// [`GraphError::WouldCycle`] on an arbitrary edge of it) is
    /// reported.
    pub fn from_edges<I>(nodes: usize, edges: I) -> Result<Dag, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut dag = Dag::with_capacity(nodes);
        dag.add_nodes(nodes);
        let mut seen: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        for (parent, child) in edges {
            dag.check_node(parent)?;
            dag.check_node(child)?;
            if parent == child {
                return Err(GraphError::SelfLoop(parent));
            }
            if !seen.insert((parent, child)) {
                return Err(GraphError::DuplicateEdge { parent, child });
            }
            dag.add_edge_unchecked(parent, child);
        }
        // One Kahn pass: if some node never reaches in-degree 0, a cycle
        // exists; report one of its edges.
        let mut indeg: Vec<usize> = dag.nodes().map(|v| dag.in_degree(v)).collect();
        let mut queue: Vec<NodeId> = dag.nodes().filter(|v| indeg[v.index()] == 0).collect();
        let mut processed = 0usize;
        while let Some(v) = queue.pop() {
            processed += 1;
            for &c in dag.children(v) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if processed != dag.node_count() {
            // Find an edge inside the cyclic residue for the report.
            let on_cycle = |v: NodeId| indeg[v.index()] > 0;
            let edge = dag
                .edges()
                .find(|&(p, c)| on_cycle(p) && on_cycle(c))
                .expect("a cyclic residue has an internal edge");
            return Err(GraphError::WouldCycle {
                parent: edge.0,
                child: edge.1,
            });
        }
        Ok(dag)
    }

    /// Adds an edge with no validity checks. Crate-internal: used when
    /// inducing a sub-graph from an existing `Dag`, where acyclicity and
    /// simplicity are inherited from the source graph.
    pub(crate) fn add_edge_unchecked(&mut self, parent: NodeId, child: NodeId) {
        self.children[parent.index()].push(child);
        self.parents[child.index()].push(parent);
        self.edge_count += 1;
    }

    /// `true` if there is a directed path `from ⇝ to` (including `from == to`).
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(v) = stack.pop() {
            for &c in &self.children[v.index()] {
                if c == to {
                    return true;
                }
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Children (members) of `node`, in edge insertion order.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Parents (containing groups) of `node`, in edge insertion order.
    #[inline]
    pub fn parents(&self, node: NodeId) -> &[NodeId] {
        &self.parents[node.index()]
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.children[node.index()].len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.parents[node.index()].len()
    }

    /// Iterator over all node ids in index order.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        (0..self.children.len()).map(NodeId::from_index)
    }

    /// Iterator over all edges as `(parent, child)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |p| self.children(p).iter().map(move |&c| (p, c)))
    }

    /// Nodes with no parents (top-level groups).
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.in_degree(v) == 0)
    }

    /// Nodes with no children (individuals).
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.out_degree(v) == 0)
    }

    /// `true` when `node` has no parents.
    #[inline]
    pub fn is_root(&self, node: NodeId) -> bool {
        self.in_degree(node) == 0
    }

    /// `true` when `node` has no children.
    #[inline]
    pub fn is_sink(&self, node: NodeId) -> bool {
        self.out_degree(node) == 0
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dag")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag, [NodeId; 4]) {
        // a → b, a → c, b → d, c → d
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn empty_graph() {
        let g = Dag::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.children(a), &[b, c]);
        assert_eq!(g.parents(d), &[b, c]);
    }

    #[test]
    fn roots_and_sinks() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![d]);
        assert!(g.is_root(a));
        assert!(g.is_sink(d));
        assert!(!g.is_sink(a));
    }

    #[test]
    fn isolated_node_is_both_root_and_sink() {
        let mut g = Dag::new();
        let v = g.add_node();
        assert!(g.is_root(v) && g.is_sink(v));
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![v]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![v]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Dag::new();
        let v = g.add_node();
        assert_eq!(g.add_edge(v, v), Err(GraphError::SelfLoop(v)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        assert_eq!(
            g.add_edge(a, b),
            Err(GraphError::DuplicateEdge {
                parent: a,
                child: b
            })
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_unknown_node() {
        let mut g = Dag::new();
        let a = g.add_node();
        let ghost = NodeId::from_index(7);
        assert_eq!(g.add_edge(a, ghost), Err(GraphError::UnknownNode(ghost)));
        assert_eq!(g.add_edge(ghost, a), Err(GraphError::UnknownNode(ghost)));
    }

    #[test]
    fn rejects_two_cycle() {
        let mut g = Dag::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        assert_eq!(
            g.add_edge(b, a),
            Err(GraphError::WouldCycle {
                parent: b,
                child: a
            })
        );
    }

    #[test]
    fn rejects_long_cycle() {
        let mut g = Dag::new();
        let v: Vec<_> = g.add_nodes(5);
        for w in v.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        assert_eq!(
            g.add_edge(v[4], v[0]),
            Err(GraphError::WouldCycle {
                parent: v[4],
                child: v[0]
            })
        );
        // A forward shortcut is still fine.
        g.add_edge(v[0], v[4]).unwrap();
    }

    #[test]
    fn reaches_is_reflexive_and_follows_edges() {
        let (g, [a, b, c, d]) = diamond();
        assert!(g.reaches(a, a));
        assert!(g.reaches(a, d));
        assert!(g.reaches(b, d));
        assert!(!g.reaches(b, c));
        assert!(!g.reaches(d, a));
    }

    #[test]
    fn edges_iterator_lists_all_pairs() {
        let (g, [a, b, c, d]) = diamond();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(a, b), (a, c), (b, d), (c, d)]);
    }

    #[test]
    fn from_edges_builds_valid_graphs() {
        let n = |i| NodeId::from_index(i);
        let g =
            Dag::from_edges(4, [(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(3))]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.reaches(n(0), n(3)));
    }

    #[test]
    fn from_edges_rejects_invalid_input() {
        let n = |i| NodeId::from_index(i);
        assert_eq!(
            Dag::from_edges(2, [(n(0), n(0))]).unwrap_err(),
            GraphError::SelfLoop(n(0))
        );
        assert_eq!(
            Dag::from_edges(2, [(n(0), n(1)), (n(0), n(1))]).unwrap_err(),
            GraphError::DuplicateEdge {
                parent: n(0),
                child: n(1)
            }
        );
        assert_eq!(
            Dag::from_edges(1, [(n(0), n(5))]).unwrap_err(),
            GraphError::UnknownNode(n(5))
        );
        // 3-cycle: reported as WouldCycle on one of its edges.
        let err = Dag::from_edges(3, [(n(0), n(1)), (n(1), n(2)), (n(2), n(0))]).unwrap_err();
        assert!(matches!(err, GraphError::WouldCycle { .. }));
        // A cycle plus clean nodes still detected.
        let err = Dag::from_edges(4, [(n(3), n(0)), (n(0), n(1)), (n(1), n(0))]).unwrap_err();
        assert!(matches!(err, GraphError::WouldCycle { .. }));
    }

    #[test]
    fn from_edges_agrees_with_incremental_construction() {
        let n = |i| NodeId::from_index(i);
        let edges = [(n(0), n(2)), (n(1), n(2)), (n(2), n(3)), (n(0), n(3))];
        let bulk = Dag::from_edges(4, edges).unwrap();
        let mut inc = Dag::new();
        inc.add_nodes(4);
        for (p, c) in edges {
            inc.add_edge(p, c).unwrap();
        }
        assert_eq!(
            bulk.edges().collect::<Vec<_>>(),
            inc.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn serde_round_trip() {
        let (g, _) = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(
            back.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }
}
