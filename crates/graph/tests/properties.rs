//! Property tests for the graph substrate: invariants that must hold on
//! arbitrary random DAGs.

use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ucra_graph::{analysis, io, paths, subgraph, traverse, Dag, NodeId};

/// A random DAG built deterministically from shrinkable scalars.
fn build(n: usize, density: f64, seed: u64) -> Dag {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dag = Dag::with_capacity(n);
    let ids = dag.add_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                dag.add_edge(ids[i], ids[j]).unwrap();
            }
        }
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// topo_order always yields a valid topological permutation.
    #[test]
    fn topo_order_is_valid(n in 0usize..25, density in 0.0f64..0.7, seed in any::<u64>()) {
        let dag = build(n, density, seed);
        let order = traverse::topo_order(&dag);
        prop_assert!(analysis::is_topological_order(&dag, &order));
    }

    /// The transitive closure agrees with per-pair reachability.
    #[test]
    fn closure_agrees_with_reaches(n in 0usize..15, density in 0.0f64..0.7, seed in any::<u64>()) {
        let dag = build(n, density, seed);
        let closure = analysis::transitive_closure(&dag);
        for u in dag.nodes() {
            for v in dag.nodes() {
                prop_assert_eq!(closure[u.index()][v.index()], dag.reaches(u, v));
            }
        }
    }

    /// BFS-up depths equal shortest path lengths computed from the
    /// closure/per-edge structure (cross-checked via BFS-down from each
    /// ancestor).
    #[test]
    fn up_distances_are_symmetric_to_down_distances(
        n in 1usize..15,
        density in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let dag = build(n, density, seed);
        let target = dag.nodes().last().unwrap();
        let up = paths::shortest_up_distances(&dag, target);
        for v in dag.nodes() {
            let down = traverse::bfs_with_depth(&dag, &[v], traverse::Direction::Down)
                .into_iter()
                .find(|(x, _)| *x == target)
                .map(|(_, d)| d);
            prop_assert_eq!(up[v.index()], down, "{:?} to {:?}", v, target);
        }
    }

    /// Path counts are multiplicative over the ancestor structure:
    /// count(v ⇝ t) = Σ over children c of count(c ⇝ t), and positive
    /// exactly for ancestors of t.
    #[test]
    fn path_count_recurrence(n in 1usize..15, density in 0.0f64..0.7, seed in any::<u64>()) {
        let dag = build(n, density, seed);
        let t = dag.nodes().last().unwrap();
        let counts = paths::paths_to(&dag, t).unwrap();
        for v in dag.nodes() {
            if v == t { continue; }
            let sum: u128 = dag.children(v).iter().map(|c| counts[c.index()]).sum();
            prop_assert_eq!(counts[v.index()], sum);
            prop_assert_eq!(counts[v.index()] > 0, dag.reaches(v, t) && v != t);
        }
    }

    /// The ancestor sub-graph is exactly the up-reachable set, its
    /// designated node is the sole sink, and path statistics into the
    /// sink are preserved by the embedding.
    #[test]
    fn ancestor_subgraph_is_faithful(
        n in 1usize..15,
        density in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let dag = build(n, density, seed);
        let t = dag.nodes().last().unwrap();
        let sub = subgraph::ancestor_subgraph(&dag, t);
        // Kept = up-reachable.
        let up = traverse::reachable_set(&dag, &[t], traverse::Direction::Up);
        prop_assert_eq!(sub.dag.node_count(), up.iter().filter(|&&b| b).count());
        for (s, o) in sub.mapping() {
            prop_assert!(up[o.index()]);
            prop_assert_eq!(sub.sub_id(o), Some(s));
        }
        // Sole sink.
        let sinks: Vec<NodeId> = sub.dag.sinks().collect();
        prop_assert_eq!(sinks, vec![sub.sink]);
        // Path stats into the sink are preserved.
        let orig = paths::path_stats_to(&dag, t).unwrap();
        let small = paths::path_stats_to(&sub.dag, sub.sink).unwrap();
        for (s, o) in sub.mapping() {
            prop_assert_eq!(orig[o.index()], small[s.index()]);
        }
    }

    /// Edge-list round trip is the identity.
    #[test]
    fn edge_list_round_trip(n in 0usize..20, density in 0.0f64..0.7, seed in any::<u64>()) {
        let dag = build(n, density, seed);
        let text = io::render_edge_list(&dag);
        let back = io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(back.node_count(), dag.node_count());
        prop_assert_eq!(
            back.edges().collect::<Vec<_>>(),
            dag.edges().collect::<Vec<_>>()
        );
    }

    /// Roots and sinks partition correctly: every node is reachable from
    /// some root, and reaches some sink.
    #[test]
    fn roots_cover_everything(n in 1usize..20, density in 0.0f64..0.7, seed in any::<u64>()) {
        let dag = build(n, density, seed);
        let roots: Vec<NodeId> = dag.roots().collect();
        let covered = traverse::reachable_set(&dag, &roots, traverse::Direction::Down);
        prop_assert!(covered.iter().all(|&b| b));
        let sinks: Vec<NodeId> = dag.sinks().collect();
        let covering = traverse::reachable_set(&dag, &sinks, traverse::Direction::Up);
        prop_assert!(covering.iter().all(|&b| b));
    }

    /// Bulk construction equals incremental construction on every valid
    /// edge list.
    #[test]
    fn from_edges_equals_incremental(n in 0usize..20, density in 0.0f64..0.7, seed in any::<u64>()) {
        let dag = build(n, density, seed);
        let bulk = Dag::from_edges(n, dag.edges()).unwrap();
        prop_assert_eq!(bulk.node_count(), dag.node_count());
        prop_assert_eq!(
            bulk.edges().collect::<Vec<_>>(),
            dag.edges().collect::<Vec<_>>()
        );
        for v in dag.nodes() {
            prop_assert_eq!(bulk.parents(v), dag.parents(v));
        }
    }

    /// Reversing any edge of a transitively-closed chain creates a cycle
    /// that bulk construction rejects.
    #[test]
    fn from_edges_rejects_back_edges(n in 2usize..12, back in any::<usize>()) {
        let ids: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let mut edges: Vec<(NodeId, NodeId)> = ids.windows(2).map(|w| (w[0], w[1])).collect();
        let i = back % (n - 1);
        edges.push((ids[i + 1], ids[i])); // the reverse of an existing edge
        prop_assert!(Dag::from_edges(n, edges).is_err());
    }

    /// Summary invariants.
    #[test]
    fn summary_invariants(n in 0usize..20, density in 0.0f64..0.7, seed in any::<u64>()) {
        let dag = build(n, density, seed);
        let s = analysis::summary(&dag);
        prop_assert_eq!(s.nodes, dag.node_count());
        prop_assert_eq!(s.edges, dag.edge_count());
        prop_assert!(s.roots <= s.nodes);
        prop_assert!(s.sinks <= s.nodes);
        if s.nodes > 0 {
            prop_assert!(s.roots >= 1);
            prop_assert!(s.sinks >= 1);
            prop_assert!((s.depth as usize) < s.nodes);
        }
    }
}
