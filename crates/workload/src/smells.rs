//! Known-bad policy patterns for exercising the static analyser.
//!
//! [`inject`] plants one instance of every structural/semantic smell
//! `ucra-lint` detects — orphaned subjects, inert labeled islands,
//! hierarchy fragmentation, propagation-redundant labels, dead
//! conflicts, and default shadowing — as fresh, self-contained
//! components, so the planted diagnostics are independent of whatever
//! hierarchy they are injected into. Each plant is hand-verified
//! against the resolution semantics: the redundant label is invariant
//! under **all 48** strategies, the dead conflict is invariant under
//! the returned strategy but *not* under all 48, and the shadowed
//! subjects carry only `d` placeholder rows.

use ucra_core::{Eacm, ObjectId, RightId, Strategy, SubjectDag, SubjectId};

/// One planted smell: the diagnostic code the linter must emit for it,
/// and the subject the diagnostic should point at (when the smell is
/// subject- or label-shaped rather than model- or pair-wide).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedSmell {
    /// The expected diagnostic code (`UCRA010`, …).
    pub code: &'static str,
    /// The subject the diagnostic spans, if any.
    pub subject: Option<SubjectId>,
    /// What was planted, for test-failure messages.
    pub note: &'static str,
}

/// Plants every known smell into `hierarchy`/`eacm` on the given pair
/// and returns the strategy under which they all fire, plus the
/// manifest of expected diagnostics.
///
/// The returned strategy is `LMP+`: its missing default rule is what
/// makes the shadowing plant (and only a no-default strategy's
/// Majority/Preference pipeline makes exactly one label of the planted
/// conflict dead). All planted subjects are fresh, so injection never
/// contradicts existing labels and never changes existing subjects'
/// outcomes.
pub fn inject(
    hierarchy: &mut SubjectDag,
    eacm: &mut Eacm,
    object: ObjectId,
    right: RightId,
) -> (Strategy, Vec<PlantedSmell>) {
    let strategy: Strategy = "LMP+".parse().expect("LMP+ is a legitimate instance");
    let mut manifest = Vec::new();

    // UCRA010: an orphaned subject — no groups, no members, no labels.
    let orphan = hierarchy.add_subject();
    manifest.push(PlantedSmell {
        code: "UCRA010",
        subject: Some(orphan),
        note: "isolated unlabeled subject",
    });

    // UCRA011: an isolated subject that still carries a label. The deny
    // is not redundant (without it the subject is d-only, which flips
    // under `D+`) and cannot conflict (its cone is just itself).
    let inert = hierarchy.add_subject();
    eacm.deny(inert, object, right)
        .expect("fresh subject has no labels");
    manifest.push(PlantedSmell {
        code: "UCRA011",
        subject: Some(inert),
        note: "labeled subject outside every hierarchy",
    });

    // UCRA012: an unlabeled two-node island. Together with the chains
    // below this guarantees at least two multi-node components.
    let f1 = hierarchy.add_subject();
    let f2 = hierarchy.add_subject();
    hierarchy.add_membership(f1, f2).expect("fresh edge");
    // (Fragmentation is reported once for the whole model, so no
    // subject is attributed.)
    manifest.push(PlantedSmell {
        code: "UCRA012",
        subject: None,
        note: "disconnected two-node island",
    });

    // UCRA020: a chain r2 → a2 → x2 where both r2 and a2 grant. a2's
    // label is derived by propagation from r2 under every one of the 48
    // strategies (its cone sees only `+` rows either way); r2's is not
    // (removing it leaves the chain d-only, which `D-` flips).
    let r2 = hierarchy.add_subject();
    let a2 = hierarchy.add_subject();
    let x2 = hierarchy.add_subject();
    hierarchy.add_membership(r2, a2).expect("fresh edge");
    hierarchy.add_membership(a2, x2).expect("fresh edge");
    eacm.grant(r2, object, right).expect("fresh subject");
    eacm.grant(a2, object, right).expect("fresh subject");
    manifest.push(PlantedSmell {
        code: "UCRA020",
        subject: Some(a2),
        note: "grant already derived from the group above",
    });

    // UCRA021: r(−) → b(−) → m ← a(+). b's deny conflicts with a's
    // grant over m, but under `LMP+` removing it changes nothing: b
    // still inherits r's deny, and m's nearest-ancestor stratum ties
    // {a+, b−} → preference `+` with the label, and resolves to `+`
    // without it. Under `MP+` (no locality filter) the two differ, so
    // the label is dead — not redundant.
    let r = hierarchy.add_subject();
    let b = hierarchy.add_subject();
    let m = hierarchy.add_subject();
    let a = hierarchy.add_subject();
    hierarchy.add_membership(r, b).expect("fresh edge");
    hierarchy.add_membership(b, m).expect("fresh edge");
    hierarchy.add_membership(a, m).expect("fresh edge");
    eacm.deny(r, object, right).expect("fresh subject");
    eacm.deny(b, object, right).expect("fresh subject");
    eacm.grant(a, object, right).expect("fresh subject");
    manifest.push(PlantedSmell {
        code: "UCRA021",
        subject: Some(b),
        note: "conflicting deny that LMP+ resolves identically without",
    });

    // UCRA030: `LMP+` has no default rule, so the d-only plants (the
    // orphan and the island) fall through to the preference fallback.
    manifest.push(PlantedSmell {
        code: "UCRA030",
        subject: None,
        note: "d-only subjects decided by the preference fallback",
    });

    (strategy, manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucra_core::{DefaultRule, Sign};

    #[test]
    fn injection_is_additive_and_self_contained() {
        let mut hierarchy = SubjectDag::new();
        let g = hierarchy.add_subject();
        let u = hierarchy.add_subject();
        hierarchy.add_membership(g, u).unwrap();
        let mut eacm = Eacm::new();
        eacm.grant(g, ObjectId(0), RightId(0)).unwrap();
        let before_subjects = hierarchy.subject_count();
        let before_labels = eacm.len();

        let (strategy, manifest) = inject(&mut hierarchy, &mut eacm, ObjectId(0), RightId(0));

        assert_eq!(strategy.default_rule(), DefaultRule::NoDefault);
        assert_eq!(hierarchy.subject_count(), before_subjects + 11);
        assert_eq!(eacm.len(), before_labels + 6);
        // The pre-existing policy is untouched.
        assert_eq!(eacm.label(g, ObjectId(0), RightId(0)), Some(Sign::Pos));
        assert!(hierarchy.members_of(g).contains(&u));
        // One plant per diagnostic family, each on a fresh subject.
        let codes: Vec<_> = manifest.iter().map(|p| p.code).collect();
        assert_eq!(
            codes,
            ["UCRA010", "UCRA011", "UCRA012", "UCRA020", "UCRA021", "UCRA030"]
        );
        for planted in &manifest {
            if let Some(s) = planted.subject {
                assert!(s.index() >= before_subjects, "{planted:?} reuses a subject");
            }
        }
    }
}
