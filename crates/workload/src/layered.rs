//! Layered random DAGs: the tunable middle ground between trees and
//! complete DAGs.

use crate::Rng;
use rand::Rng as _;
use ucra_core::{SubjectDag, SubjectId};

/// Parameters for [`layered`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredConfig {
    /// Number of layers (≥ 1). Layer 0 holds the roots.
    pub layers: usize,
    /// Nodes per layer (≥ 1).
    pub width: usize,
    /// Probability of an edge between a node and each node of the next
    /// layer (every node is additionally guaranteed one parent from the
    /// previous layer, so the graph is connected top-down).
    pub density: f64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            layers: 6,
            width: 16,
            density: 0.15,
        }
    }
}

/// A generated layered DAG.
#[derive(Debug, Clone)]
pub struct Layered {
    /// The hierarchy.
    pub hierarchy: SubjectDag,
    /// `layers[i]` holds layer *i*'s subjects, top (roots) first.
    pub layers: Vec<Vec<SubjectId>>,
}

/// Generates a layered random DAG: edges go from layer *i* to layer
/// *i + 1* only.
pub fn layered(config: LayeredConfig, rng: &mut Rng) -> Layered {
    assert!(config.layers >= 1 && config.width >= 1, "degenerate config");
    let mut hierarchy = SubjectDag::with_capacity(config.layers * config.width);
    let layers: Vec<Vec<SubjectId>> = (0..config.layers)
        .map(|_| hierarchy.add_subjects(config.width))
        .collect();
    for upper_lower in layers.windows(2) {
        let (upper, lower) = (&upper_lower[0], &upper_lower[1]);
        for &child in lower {
            // Guaranteed parent keeps every non-root reachable from the top.
            let forced = upper[rng.gen_range(0..upper.len())];
            hierarchy
                .add_membership(forced, child)
                .expect("inter-layer edges cannot cycle");
            for &parent in upper {
                if parent != forced && rng.gen_bool(config.density) {
                    hierarchy
                        .add_membership(parent, child)
                        .expect("inter-layer edges cannot cycle");
                }
            }
        }
    }
    Layered { hierarchy, layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use ucra_graph::traverse;

    #[test]
    fn every_non_root_has_a_parent() {
        let l = layered(
            LayeredConfig {
                layers: 5,
                width: 8,
                density: 0.1,
            },
            &mut rng(1),
        );
        for (i, layer) in l.layers.iter().enumerate() {
            for &v in layer {
                if i == 0 {
                    assert!(l.hierarchy.groups_of(v).is_empty());
                } else {
                    assert!(!l.hierarchy.groups_of(v).is_empty());
                }
            }
        }
    }

    #[test]
    fn depth_equals_layer_count_minus_one() {
        let l = layered(
            LayeredConfig {
                layers: 7,
                width: 4,
                density: 0.3,
            },
            &mut rng(2),
        );
        assert_eq!(traverse::longest_path_len(l.hierarchy.graph()), 6);
    }

    #[test]
    fn density_one_gives_complete_bipartite_layers() {
        let l = layered(
            LayeredConfig {
                layers: 3,
                width: 5,
                density: 1.0,
            },
            &mut rng(3),
        );
        assert_eq!(l.hierarchy.membership_count(), 2 * 5 * 5);
    }

    #[test]
    fn density_zero_gives_forest_like_minimum() {
        let l = layered(
            LayeredConfig {
                layers: 4,
                width: 6,
                density: 0.0,
            },
            &mut rng(4),
        );
        assert_eq!(l.hierarchy.membership_count(), 3 * 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = layered(LayeredConfig::default(), &mut rng(5));
        let b = layered(LayeredConfig::default(), &mut rng(5));
        assert_eq!(
            a.hierarchy.graph().edges().collect::<Vec<_>>(),
            b.hierarchy.graph().edges().collect::<Vec<_>>()
        );
    }
}
