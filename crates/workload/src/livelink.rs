//! A synthetic stand-in for the paper's Livelink (Open Text) enterprise
//! subject hierarchy.
//!
//! The paper evaluates on a proprietary Livelink installation and
//! publishes only its structural statistics (§4): *"the subject hierarchy
//! has over 8000 nodes and 22,000 edges. There are 1582 sinks (individual
//! users) … The depths of the induced sub-graphs range from 1 to 11."*
//! This generator is calibrated to those numbers (see DESIGN.md §2.6):
//!
//! * a forest of departmental group trees with bounded depth,
//! * cross-links making groups members of several parent groups
//!   ("groups can be arbitrarily structured and nested to arbitrary
//!   depth"),
//! * individual users attached to several groups each.
//!
//! Acyclicity is guaranteed by construction: every group carries a level
//! and edges only point from lower to strictly higher levels.

use crate::Rng;
use rand::Rng as _;
use ucra_core::{SubjectDag, SubjectId};

/// Parameters for [`livelink`]. The default reproduces the paper's
/// published statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivelinkConfig {
    /// Number of group (non-sink) subjects.
    pub groups: usize,
    /// Number of top-level groups (forest roots).
    pub roots: usize,
    /// Number of individual users (sinks).
    pub users: usize,
    /// Maximum group nesting depth (sinks sit one level below).
    pub max_group_depth: u32,
    /// Additional cross-links between groups, as a fraction of `groups`.
    pub cross_link_factor: f64,
    /// Mean number of groups each user belongs to (minimum 1).
    pub user_membership_mean: f64,
}

impl Default for LivelinkConfig {
    fn default() -> Self {
        LivelinkConfig {
            groups: 6500,
            roots: 30,
            users: 1582,
            max_group_depth: 10,
            cross_link_factor: 0.45,
            user_membership_mean: 8.0,
        }
    }
}

/// A generated enterprise hierarchy.
#[derive(Debug, Clone)]
pub struct Livelink {
    /// The hierarchy (groups first, then users, in id order).
    pub hierarchy: SubjectDag,
    /// Group subjects.
    pub groups: Vec<SubjectId>,
    /// Individual users — the sinks whose queries Figure 7 measures.
    pub users: Vec<SubjectId>,
}

/// Generates a Livelink-like hierarchy.
pub fn livelink(config: LivelinkConfig, rng: &mut Rng) -> Livelink {
    assert!(config.roots >= 1 && config.groups >= config.roots && config.users >= 1);
    let mut hierarchy = SubjectDag::with_capacity(config.groups + config.users);
    let groups = hierarchy.add_subjects(config.groups);
    let mut level: Vec<u32> = vec![0; config.groups];

    // Forest skeleton: group i (beyond the roots) picks a parent among
    // earlier groups whose level still allows a child.
    for i in config.roots..config.groups {
        loop {
            let p = rng.gen_range(0..i);
            if level[p] < config.max_group_depth {
                hierarchy
                    .add_membership(groups[p], groups[i])
                    .expect("level-monotone edges cannot cycle");
                level[i] = level[p] + 1;
                break;
            }
        }
    }

    // Cross-links: group → group edges between strictly increasing levels.
    let want_cross = (config.groups as f64 * config.cross_link_factor) as usize;
    let mut added = 0;
    let mut attempts = 0;
    while added < want_cross && attempts < want_cross * 20 {
        attempts += 1;
        let a = rng.gen_range(0..config.groups);
        let b = rng.gen_range(0..config.groups);
        if level[a] < level[b] && hierarchy.add_membership(groups[a], groups[b]).is_ok() {
            added += 1;
        }
    }

    // Users: each belongs to `1 + Poisson-ish(mean - 1)` distinct groups.
    let users = hierarchy.add_subjects(config.users);
    for &user in &users {
        let extra = (config.user_membership_mean - 1.0).max(0.0);
        // A crude integer spread around the mean: uniform in [0, 2·extra].
        let k = 1 + rng.gen_range(0..=(2.0 * extra) as usize);
        let mut joined = 0;
        let mut tries = 0;
        while joined < k && tries < 10 * k {
            tries += 1;
            let g = groups[rng.gen_range(0..config.groups)];
            if hierarchy.add_membership(g, user).is_ok() {
                joined += 1;
            }
        }
    }

    // Leaf groups with no members would read as sinks, but the paper's
    // sinks are exactly the individual users; give every childless group
    // one user member.
    let childless: Vec<SubjectId> = groups
        .iter()
        .copied()
        .filter(|&g| hierarchy.members_of(g).is_empty())
        .collect();
    for g in childless {
        let user = users[rng.gen_range(0..users.len())];
        hierarchy
            .add_membership(g, user)
            .expect("group-to-user edge cannot cycle");
    }

    Livelink {
        hierarchy,
        groups,
        users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use ucra_graph::traverse;

    #[test]
    fn default_config_matches_published_statistics() {
        let l = livelink(LivelinkConfig::default(), &mut rng(2007));
        let nodes = l.hierarchy.subject_count();
        let edges = l.hierarchy.membership_count();
        let sinks = l.hierarchy.individuals().count();
        assert!(nodes > 8000, "paper: over 8000 nodes (got {nodes})");
        assert!(
            (20_000..=25_000).contains(&edges),
            "paper: ~22,000 edges (got {edges})"
        );
        assert_eq!(sinks, 1582, "paper: 1582 sinks");
        // Depth ≤ 11 (10 group levels + the user edge).
        assert!(traverse::longest_path_len(l.hierarchy.graph()) <= 11);
    }

    #[test]
    fn users_are_exactly_the_sinks() {
        let cfg = LivelinkConfig {
            groups: 200,
            roots: 4,
            users: 50,
            ..Default::default()
        };
        let l = livelink(cfg, &mut rng(5));
        let sinks: std::collections::HashSet<_> = l.hierarchy.individuals().collect();
        assert_eq!(sinks.len(), 50);
        for u in &l.users {
            assert!(sinks.contains(u));
        }
        // Every user belongs to at least one group.
        for &u in &l.users {
            assert!(!l.hierarchy.groups_of(u).is_empty());
        }
    }

    #[test]
    fn induced_subgraph_depths_span_a_range() {
        let l = livelink(LivelinkConfig::default(), &mut rng(2007));
        let mut depths = Vec::new();
        for &u in l.users.iter().step_by(100) {
            let sub = l.hierarchy.ancestor_subgraph(u).unwrap();
            depths.push(traverse::longest_path_len(&sub.dag));
        }
        let min = depths.iter().min().unwrap();
        let max = depths.iter().max().unwrap();
        assert!(*max >= 6, "deep sub-graphs exist (max {max})");
        assert!(*min >= 1, "every user has at least one ancestor");
        assert!(*max <= 11, "paper: depths range 1 to 11");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = livelink(
            LivelinkConfig {
                groups: 300,
                roots: 5,
                users: 40,
                ..Default::default()
            },
            &mut rng(9),
        );
        let b = livelink(
            LivelinkConfig {
                groups: 300,
                roots: 5,
                users: 40,
                ..Default::default()
            },
            &mut rng(9),
        );
        assert_eq!(
            a.hierarchy.graph().edges().collect::<Vec<_>>(),
            b.hierarchy.graph().edges().collect::<Vec<_>>()
        );
    }
}
