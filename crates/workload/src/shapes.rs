//! Deterministic structural shapes: trees, chains, and the adversarial
//! diamond chain from the paper's worst-case analysis.

use crate::Rng;
use rand::Rng as _;
use ucra_core::{SubjectDag, SubjectId};

/// A uniform random recursive tree with `n` nodes: node *i* picks its
/// parent uniformly among nodes `0..i`. Node 0 is the root.
///
/// Trees make conflict resolution trivial (one path per ancestor — the
/// related-work section's point about tree-structured approaches), so
/// they serve as the "easy" end of the workload spectrum.
pub fn random_tree(n: usize, rng: &mut Rng) -> (SubjectDag, Vec<SubjectId>) {
    assert!(n >= 1);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for i in 1..n {
        let parent = ids[rng.gen_range(0..i)];
        h.add_membership(parent, ids[i])
            .expect("tree edges cannot cycle");
    }
    (h, ids)
}

/// A simple chain `v₀ → v₁ → … → vₙ₋₁`.
pub fn chain(n: usize) -> (SubjectDag, Vec<SubjectId>) {
    assert!(n >= 1);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for w in ids.windows(2) {
        h.add_membership(w[0], w[1])
            .expect("chain edges cannot cycle");
    }
    (h, ids)
}

/// `k` stacked diamonds: the graph family realising the paper's §3.3
/// worst case — `2^k` root-to-sink paths on `3k + 1` nodes.
///
/// Returns the hierarchy, the top node, and the bottom node.
pub fn diamond_chain(k: usize) -> (SubjectDag, SubjectId, SubjectId) {
    let mut h = SubjectDag::with_capacity(3 * k + 1);
    let mut top = h.add_subject();
    let first = top;
    for _ in 0..k {
        let left = h.add_subject();
        let right = h.add_subject();
        let bottom = h.add_subject();
        h.add_membership(top, left).expect("acyclic");
        h.add_membership(top, right).expect("acyclic");
        h.add_membership(left, bottom).expect("acyclic");
        h.add_membership(right, bottom).expect("acyclic");
        top = bottom;
    }
    (h, first, top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use ucra_graph::paths;

    #[test]
    fn tree_has_n_minus_one_edges_and_single_root() {
        let (h, ids) = random_tree(50, &mut rng(11));
        assert_eq!(h.membership_count(), 49);
        assert_eq!(h.roots().collect::<Vec<_>>(), vec![ids[0]]);
        // Every node has at most one parent.
        for &v in &ids {
            assert!(h.groups_of(v).len() <= 1);
        }
    }

    #[test]
    fn single_node_tree() {
        let (h, ids) = random_tree(1, &mut rng(0));
        assert_eq!(h.subject_count(), 1);
        assert_eq!(h.membership_count(), 0);
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn chain_shape() {
        let (h, ids) = chain(5);
        assert_eq!(h.membership_count(), 4);
        assert!(h.individuals().eq([ids[4]]));
    }

    #[test]
    fn diamond_chain_path_count() {
        let (h, top, bottom) = diamond_chain(10);
        assert_eq!(h.subject_count(), 31);
        assert_eq!(paths::count_paths(h.graph(), top, bottom).unwrap(), 1 << 10);
    }

    #[test]
    fn zero_diamonds_is_a_single_node() {
        let (h, top, bottom) = diamond_chain(0);
        assert_eq!(h.subject_count(), 1);
        assert_eq!(top, bottom);
    }
}
