//! # `ucra-workload` — synthetic hierarchies and authorization loads
//!
//! Generators for every workload in the paper's evaluation (§4), plus the
//! adversarial shapes used by this reproduction's stress tests:
//!
//! * [`kdag::kdag`] — the paper's *KDAG(n)*: a random **complete** DAG
//!   with `n` nodes and `n·(n−1)/2` edges, one root and one sink — "many
//!   more paths than would be expected in typical applications, … good
//!   stress tests".
//! * [`livelink::livelink`] — a synthetic stand-in for the Livelink
//!   (Open Text) enterprise hierarchy, calibrated to the statistics the
//!   paper publishes: >8000 nodes, ~22,000 edges, 1582 sinks
//!   (individual users), induced-sub-graph depths 1–11.
//! * [`layered::layered`] — tunable layered random DAGs.
//! * [`stress::deep_wide`] — the deep-and-wide shape (layered spine +
//!   skip-level shortcuts + many labeled `(object, right)` pairs) that
//!   stresses the columnar fused-sweep kernel.
//! * [`sparse::sparse_labels`] — clustered forests with near-empty,
//!   cluster-local columns: the low-label-density shape the
//!   sparsity-pruned sweep path is benchmarked on.
//! * [`shapes`] — trees, chains, and the exponential diamond chain.
//! * [`auth::assign_by_edges`] — the paper's authorization assignment:
//!   select a fraction of *edges* at random and label their source
//!   subjects (which picks subjects proportionally to their number of
//!   members), with a configurable negative share.
//! * [`stats`] — per-sink measurements for Figure 7's axes: `d` (the sum
//!   of all path lengths from labeled/defaulted ancestors) and the
//!   ancestor sub-graph size.
//! * [`smells::inject`] — plants one instance of every policy smell the
//!   static analyser (`ucra-lint`) detects, with a manifest of the
//!   expected diagnostic codes.
//!
//! All generators are deterministic given a seed (`rand_chacha`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod churn;
pub mod edits;
pub mod kdag;
pub mod layered;
pub mod livelink;
pub mod shapes;
pub mod smells;
pub mod sparse;
pub mod stats;
pub mod stress;

/// The RNG used by every generator: seedable and stable across platforms
/// and crate versions, so experiments are reproducible bit-for-bit.
pub type Rng = rand_chacha::ChaCha8Rng;

/// Creates the workload RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
