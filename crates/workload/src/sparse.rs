//! The sparse-labels shape: large clustered forests with near-empty
//! columns, the workload the sparsity-pruned sweep path is measured on.
//!
//! The paper's EACM is explicitly sparse — most `(subject, object,
//! right)` cells carry no label — and in real installations the labels a
//! single object's ACL *does* carry tend to cluster in one organisational
//! subtree, not spread uniformly over the enterprise. [`sparse_labels`]
//! generates exactly that texture: a forest of small disconnected
//! cluster DAGs (think departments), with each `(object, right)` pair's
//! explicit labels confined to a handful of clusters chosen per run of
//! [`PAIR_LOCALITY`] consecutive pairs. Columns are then provably
//! default-only outside a few clusters, so a pruned sweep's union label
//! cone stays a small fraction of the hierarchy even for a fused
//! multi-column batch — while a dense walk still pays `O(V + E)` per
//! batch.

use crate::Rng;
use rand::seq::SliceRandom;
use rand::Rng as _;
use ucra_core::{Eacm, ObjectId, RightId, Sign, SubjectDag, SubjectId};

/// Subjects per cluster DAG (departments of ~this size).
const CLUSTER_SIZE: usize = 64;

/// Consecutive `(object, right)` pairs that share a cluster group.
/// Matches the kernel's default fusion width, so a fused batch's union
/// label cone stays cluster-local instead of unioning unrelated cones.
pub const PAIR_LOCALITY: usize = 8;

/// Parameters for [`sparse_labels`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseConfig {
    /// Total number of subjects (split into ~[`CLUSTER_SIZE`]-node
    /// clusters).
    pub subjects: usize,
    /// Total membership-edge budget. At least one spanning edge per
    /// non-root cluster node is always created; the surplus becomes
    /// random intra-cluster edges.
    pub edges: usize,
    /// Number of `(object, right)` pairs to load with labels.
    pub pairs: usize,
    /// Fraction of subjects carrying an explicit label *per pair*
    /// (`0.01` = 1 % density).
    pub label_density: f64,
    /// Fraction of negative labels.
    pub negative_share: f64,
}

impl SparseConfig {
    /// The full benchmark shape: stress-scale subject count, 64 pairs.
    pub fn full(label_density: f64) -> Self {
        SparseConfig {
            subjects: 4096,
            edges: 9000,
            pairs: 64,
            label_density,
            negative_share: 0.4,
        }
    }

    /// A seconds-fast shape for CI smoke runs and unit tests.
    pub fn quick(label_density: f64) -> Self {
        SparseConfig {
            subjects: 768,
            edges: 1700,
            pairs: 16,
            label_density,
            negative_share: 0.4,
        }
    }
}

/// A generated sparse model: clustered hierarchy, low-density matrix,
/// and the labeled pairs (the benchmark's work list).
#[derive(Debug, Clone)]
pub struct SparseModel {
    /// The clustered forest.
    pub hierarchy: SubjectDag,
    /// Explicit labels, `label_density · subjects` per pair.
    pub eacm: Eacm,
    /// The `(object, right)` pairs that carry labels, in column order.
    pub pairs: Vec<(ObjectId, RightId)>,
    /// `clusters[i]` holds cluster *i*'s subjects, in creation order
    /// (ancestors before descendants within the cluster).
    pub clusters: Vec<Vec<SubjectId>>,
}

/// Generates the sparse-labels model (deterministic per `rng` state).
pub fn sparse_labels(config: SparseConfig, rng: &mut Rng) -> SparseModel {
    assert!(
        config.subjects >= 1 && config.pairs >= 1,
        "degenerate sparse config"
    );
    let mut hierarchy = SubjectDag::with_capacity(config.subjects);
    let mut clusters: Vec<Vec<SubjectId>> = Vec::new();
    let mut remaining = config.subjects;
    while remaining > 0 {
        let size = remaining.min(CLUSTER_SIZE);
        clusters.push(hierarchy.add_subjects(size));
        remaining -= size;
    }
    // Spanning edges: every non-first cluster node gets one parent among
    // its cluster predecessors, keeping each cluster connected (and the
    // clusters mutually disconnected — a forest of department DAGs).
    let mut edges_used = 0usize;
    for cluster in &clusters {
        for (i, &child) in cluster.iter().enumerate().skip(1) {
            let parent = cluster[rng.gen_range(0..i)];
            hierarchy
                .add_membership(parent, child)
                .expect("forward edges cannot cycle");
            edges_used += 1;
        }
    }
    // Surplus edges: random forward intra-cluster pairs. Duplicates are
    // rejected by the DAG, so retry a bounded number of times.
    let mut surplus = config.edges.saturating_sub(edges_used);
    let mut attempts = 4 * surplus + 16;
    while surplus > 0 && attempts > 0 {
        attempts -= 1;
        let cluster = &clusters[rng.gen_range(0..clusters.len())];
        if cluster.len() < 2 {
            continue;
        }
        let i = rng.gen_range(0..cluster.len() - 1);
        let j = rng.gen_range(i + 1..cluster.len());
        if hierarchy.add_membership(cluster[i], cluster[j]).is_ok() {
            surplus -= 1;
        }
    }
    // Labels: each run of PAIR_LOCALITY consecutive pairs draws its
    // subjects from one contiguous cluster group, so a fused batch's
    // union cone covers a few clusters, not the whole forest.
    let pairs: Vec<(ObjectId, RightId)> = (0..config.pairs)
        .map(|i| (ObjectId((i / 3) as u32), RightId((i % 3) as u32)))
        .collect();
    let quota = ((config.subjects as f64) * config.label_density)
        .round()
        .max(1.0) as usize;
    let mut eacm = Eacm::new();
    for (i, &(object, right)) in pairs.iter().enumerate() {
        let group = i / PAIR_LOCALITY;
        // Enough consecutive clusters to hold the quota, starting at a
        // per-group offset that spreads groups over the forest.
        let span = quota.div_ceil(CLUSTER_SIZE).max(1);
        let start = (group * span) % clusters.len();
        let pool: Vec<SubjectId> = (0..span + 1)
            .flat_map(|k| clusters[(start + k) % clusters.len()].iter().copied())
            .collect();
        for &subject in pool.choose_multiple(rng, quota.min(pool.len())) {
            let sign = if rng.gen_bool(config.negative_share.clamp(0.0, 1.0)) {
                Sign::Neg
            } else {
                Sign::Pos
            };
            eacm.set(subject, object, right, sign)
                .expect("distinct pairs cannot contradict");
        }
    }
    SparseModel {
        hierarchy,
        eacm,
        pairs,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use ucra_core::SweepContext;

    #[test]
    fn shape_and_density_are_as_configured() {
        let cfg = SparseConfig::quick(0.01);
        let m = sparse_labels(cfg, &mut rng(11));
        assert_eq!(m.hierarchy.subject_count(), cfg.subjects);
        assert_eq!(m.pairs.len(), cfg.pairs);
        let quota = ((cfg.subjects as f64) * cfg.label_density).round() as usize;
        for &(o, r) in &m.pairs {
            let labels = m
                .eacm
                .iter()
                .filter(|&(_, oo, rr, _)| (oo, rr) == (o, r))
                .count();
            assert_eq!(labels, quota, "pair ({o}, {r})");
        }
    }

    #[test]
    fn clusters_are_mutually_disconnected() {
        let m = sparse_labels(SparseConfig::quick(0.01), &mut rng(12));
        let cluster_of: std::collections::HashMap<SubjectId, usize> = m
            .clusters
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.iter().map(move |&v| (v, i)))
            .collect();
        for (g, v) in m.hierarchy.graph().edges() {
            assert_eq!(
                cluster_of[&g], cluster_of[&v],
                "edge {g} → {v} crosses clusters"
            );
        }
    }

    #[test]
    fn label_cones_stay_a_small_fraction_at_one_percent() {
        let m = sparse_labels(SparseConfig::quick(0.01), &mut rng(13));
        let ctx = SweepContext::new(&m.hierarchy);
        // Per fused batch (PAIR_LOCALITY consecutive pairs), the union
        // cone must stay well below the pruning threshold of half the
        // hierarchy.
        for batch in m.pairs.chunks(PAIR_LOCALITY) {
            let active = ctx.active_set_size(&m.eacm, batch);
            assert!(
                active * 4 < m.hierarchy.subject_count(),
                "batch cone {active} of {} subjects is not sparse",
                m.hierarchy.subject_count()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sparse_labels(SparseConfig::quick(0.05), &mut rng(14));
        let b = sparse_labels(SparseConfig::quick(0.05), &mut rng(14));
        assert_eq!(
            a.hierarchy.membership_count(),
            b.hierarchy.membership_count()
        );
        assert_eq!(a.eacm.len(), b.eacm.len());
    }
}
