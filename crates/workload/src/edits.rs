//! Deterministic edit-script generator for the change-impact analyzer.
//!
//! Produces [`ucra_core::EditScript`]s that are **valid against a given
//! base installation**: revokes target labels that exist, authorization
//! edits never contradict a live record (the script tracks its own view
//! of the matrix as it grows), and membership edges only ever attach
//! script-added subjects, so they cannot create a cycle. That makes the
//! scripts directly usable by `ImpactAnalysis::analyze`, the `/impact`
//! endpoint benches, and the soundness stress tests — no rejection
//! sampling at apply time.
//!
//! With [`EditScriptConfig::escalation`], the script deliberately grants
//! access the base policy denies (revoke an explicit `-`, re-record `+`,
//! and grant a script-added subject), so CI can assert that
//! `ucra impact --deny escalation` fails on it.

use crate::Rng;
use rand::Rng as _;
use std::collections::BTreeMap;
use ucra_core::impact::{EditOp, EditScript};
use ucra_core::{Eacm, ObjectId, RightId, Sign, SubjectDag, SubjectId};

/// Parameters for [`edit_script`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditScriptConfig {
    /// Number of edits to generate (the escalation preamble, when
    /// enabled, is included in this budget).
    pub ops: usize,
    /// Fraction of edits that declare a new subject.
    pub subject_share: f64,
    /// Fraction of edits that add a membership edge (an existing group
    /// gains a script-added member).
    pub membership_share: f64,
    /// Fraction of edits that revoke an existing explicit label; the
    /// remainder are authorization edits on unlabeled cells.
    pub revoke_share: f64,
    /// Among authorization edits, the fraction that deny.
    pub negative_share: f64,
    /// Plant a guaranteed privilege escalation (see the module docs).
    pub escalation: bool,
}

impl Default for EditScriptConfig {
    fn default() -> Self {
        EditScriptConfig {
            ops: 32,
            subject_share: 0.1,
            membership_share: 0.15,
            revoke_share: 0.2,
            negative_share: 0.4,
            escalation: false,
        }
    }
}

/// Generates an edit script valid against `(hierarchy, eacm)`.
///
/// Deterministic for a given `rng` state; the base parts are only read.
pub fn edit_script(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    config: EditScriptConfig,
    rng: &mut Rng,
) -> EditScript {
    // The script's evolving view of the explicit matrix: base labels
    // plus everything the script has recorded or removed so far.
    let mut labels: BTreeMap<(SubjectId, ObjectId, RightId), Sign> = eacm
        .iter()
        .map(|(s, o, r, sign)| ((s, o, r), sign))
        .collect();
    let mut pairs = eacm.object_right_pairs();
    if pairs.is_empty() {
        pairs.push((ObjectId(0), RightId(0)));
    }
    let base_subjects = hierarchy.subject_count().max(1);
    let mut subjects = base_subjects;
    let mut added: Vec<SubjectId> = Vec::new();
    // Members are always script-added, so no edge can collide with the
    // base DAG — only with one this script already emitted.
    let mut edges: std::collections::BTreeSet<(SubjectId, SubjectId)> = Default::default();
    let mut ops = Vec::new();

    let add_subject = |subjects: &mut usize, added: &mut Vec<SubjectId>| {
        let id = SubjectId::from_index(*subjects);
        *subjects += 1;
        added.push(id);
        EditOp::AddSubject
    };

    if config.escalation {
        // Revoke an explicit `-` and re-record `+` on the same cell; a
        // script-added subject gets its own grant so the gain survives
        // even when the flipped cell is re-derived through a group.
        if let Some((&(s, o, r), _)) = labels.iter().find(|(_, &sign)| sign == Sign::Neg) {
            ops.push(EditOp::Revoke {
                subject: s,
                object: o,
                right: r,
            });
            labels.remove(&(s, o, r));
            ops.push(EditOp::SetAuthorization {
                subject: s,
                object: o,
                right: r,
                sign: Sign::Pos,
            });
            labels.insert((s, o, r), Sign::Pos);
        }
        ops.push(add_subject(&mut subjects, &mut added));
        let freshman = *added.last().expect("just added");
        let (o, r) = pairs[rng.gen_range(0..pairs.len())];
        ops.push(EditOp::SetAuthorization {
            subject: freshman,
            object: o,
            right: r,
            sign: Sign::Pos,
        });
        labels.insert((freshman, o, r), Sign::Pos);
    }

    while ops.len() < config.ops {
        let roll: f64 = rng.gen();
        if roll < config.subject_share {
            ops.push(add_subject(&mut subjects, &mut added));
        } else if roll < config.subject_share + config.membership_share {
            // Only script-added subjects become members: the edge leaves
            // the base DAG untouched upward, so no cycle is possible.
            let member = match added.is_empty() {
                true => {
                    ops.push(add_subject(&mut subjects, &mut added));
                    *added.last().expect("just added")
                }
                false => added[rng.gen_range(0..added.len())],
            };
            let group = SubjectId::from_index(rng.gen_range(0..base_subjects));
            if group != member && edges.insert((group, member)) {
                ops.push(EditOp::AddMembership { group, member });
            }
        } else if roll < config.subject_share + config.membership_share + config.revoke_share {
            if let Some(&(s, o, r)) = labels
                .keys()
                .nth(rng.gen_range(0..labels.len().max(1)))
                .filter(|_| !labels.is_empty())
            {
                ops.push(EditOp::Revoke {
                    subject: s,
                    object: o,
                    right: r,
                });
                labels.remove(&(s, o, r));
            }
        } else {
            let s = SubjectId::from_index(rng.gen_range(0..subjects));
            let (o, r) = pairs[rng.gen_range(0..pairs.len())];
            let sign = if rng.gen::<f64>() < config.negative_share {
                Sign::Neg
            } else {
                Sign::Pos
            };
            // Contradictions are rejected by the matrix; re-roll the
            // sign to match, making the edit an idempotent re-set (a
            // deliberate `UCRA100` source) instead of an error.
            let sign = *labels.entry((s, o, r)).or_insert(sign);
            ops.push(EditOp::SetAuthorization {
                subject: s,
                object: o,
                right: r,
                sign,
            });
        }
    }
    ops.truncate(config.ops.max(if config.escalation { 4 } else { 0 }));
    EditScript::new(ops)
}

/// Renders a script in the line-oriented text format understood by
/// `ucra impact --edits` and `POST /impact`, naming subjects `s<i>`,
/// objects `o<i>`, and rights `r<i>` (the same spellings `ucra gen`
/// and nameless sessions use).
pub fn render_script(script: &EditScript, base_subjects: usize) -> String {
    let mut out = String::new();
    let mut next = base_subjects;
    for op in &script.ops {
        let line = match *op {
            EditOp::AddSubject => {
                let line = format!("subject s{next}");
                next += 1;
                line
            }
            EditOp::AddMembership { group, member } => {
                format!("member s{} s{}", group.index(), member.index())
            }
            EditOp::SetAuthorization {
                subject,
                object,
                right,
                sign,
            } => format!(
                "{} s{} o{} r{}",
                match sign {
                    Sign::Pos => "grant",
                    Sign::Neg => "deny",
                },
                subject.index(),
                object.0,
                right.0
            ),
            EditOp::Revoke {
                subject,
                object,
                right,
            } => format!("revoke s{} o{} r{}", subject.index(), object.0, right.0),
            EditOp::SetStrategy { strategy } => format!("strategy {strategy}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{assign_by_edges, AuthConfig};
    use crate::layered::{layered, LayeredConfig};
    use ucra_core::{ImpactAnalysis, Strategy};

    fn base() -> (SubjectDag, Eacm) {
        let mut rng = crate::rng(7);
        let hierarchy = layered(
            LayeredConfig {
                layers: 3,
                width: 4,
                density: 0.4,
            },
            &mut rng,
        )
        .hierarchy;
        let (eacm, _) = assign_by_edges(&hierarchy, AuthConfig::with_rate(0.3), &mut rng);
        (hierarchy, eacm)
    }

    #[test]
    fn generated_scripts_apply_cleanly() {
        let (hierarchy, eacm) = base();
        let strategy: Strategy = "D-LP-".parse().unwrap();
        for seed in 0..8 {
            let mut rng = crate::rng(seed);
            let script = edit_script(&hierarchy, &eacm, EditScriptConfig::default(), &mut rng);
            assert!(!script.ops.is_empty());
            let analysis = ImpactAnalysis::analyze(&hierarchy, &eacm, strategy, &script)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(analysis.overlay_stats.full_invalidations, 0);
        }
    }

    #[test]
    fn escalation_scripts_gain_access() {
        let (hierarchy, eacm) = base();
        assert!(
            eacm.iter().any(|(_, _, _, s)| s == Sign::Neg),
            "base needs an explicit denial for the escalation preamble"
        );
        let mut rng = crate::rng(3);
        let config = EditScriptConfig {
            escalation: true,
            ..Default::default()
        };
        let script = edit_script(&hierarchy, &eacm, config, &mut rng);
        let analysis =
            ImpactAnalysis::analyze(&hierarchy, &eacm, "D-LP-".parse().unwrap(), &script).unwrap();
        let gained = analysis.gains().count() + analysis.added_grants.len();
        assert!(gained > 0, "escalation script must gain at least one cell");
    }

    #[test]
    fn rendering_is_deterministic_and_reparses() {
        let (hierarchy, eacm) = base();
        let mut a = crate::rng(11);
        let mut b = crate::rng(11);
        let config = EditScriptConfig::default();
        let sa = edit_script(&hierarchy, &eacm, config, &mut a);
        let sb = edit_script(&hierarchy, &eacm, config, &mut b);
        assert_eq!(sa.ops, sb.ops, "same seed, same script");
        let text = render_script(&sa, hierarchy.subject_count());
        assert_eq!(text.lines().count(), sa.ops.len());
        for line in text.lines() {
            let word = line.split_whitespace().next().unwrap();
            assert!(
                ["subject", "member", "grant", "deny", "revoke", "strategy"].contains(&word),
                "{line}"
            );
        }
    }
}
