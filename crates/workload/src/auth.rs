//! Authorization assignment, exactly as in the paper's experiments.
//!
//! §4: *"we assigned explicit authorizations to subjects at random,
//! choosing subjects proportionally to the number of members. In
//! particular, 0.5% to 10.0% of the graph's edges were selected at random
//! and their source nodes were assigned explicit authorizations."*
//!
//! Selecting random **edges** and labeling their **source** subjects picks
//! each subject with probability proportional to its out-degree (its
//! number of members) — implemented literally here. For Figure 7(a), the
//! paper additionally varies the share of negative authorizations (1 %,
//! 50 %, 100 %); [`AuthConfig::negative_share`] controls that.

use crate::Rng;
use rand::seq::SliceRandom;
use rand::Rng as _;
use ucra_core::{Eacm, ObjectId, RightId, Sign, SubjectDag};

/// Parameters for [`assign_by_edges`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuthConfig {
    /// Fraction of edges to select (the paper's "authorization rate",
    /// 0.005 – 0.10 in Figure 6, 0.007 in Figure 7).
    pub rate: f64,
    /// Fraction of the selected subjects receiving a negative
    /// authorization (the rest are positive).
    pub negative_share: f64,
    /// The object the authorizations apply to.
    pub object: ObjectId,
    /// The right the authorizations apply to.
    pub right: RightId,
}

impl AuthConfig {
    /// An authorization rate with an even positive/negative split on
    /// object 0 / right 0.
    pub fn with_rate(rate: f64) -> Self {
        AuthConfig {
            rate,
            negative_share: 0.5,
            object: ObjectId(0),
            right: RightId(0),
        }
    }
}

/// Selects `rate · |E|` random edges and labels their source subjects,
/// returning the resulting explicit matrix and the labeled subjects.
///
/// A subject can be the source of several selected edges; duplicates are
/// collapsed (the matrix holds at most one authorization per subject), so
/// the number of labeled subjects can be slightly below the edge quota —
/// matching the paper's "at most one authorization per triple" model.
pub fn assign_by_edges(
    hierarchy: &SubjectDag,
    config: AuthConfig,
    rng: &mut Rng,
) -> (Eacm, Vec<ucra_core::SubjectId>) {
    let edges: Vec<_> = hierarchy.graph().edges().collect();
    let quota = ((edges.len() as f64) * config.rate).round() as usize;
    let chosen = edges.choose_multiple(rng, quota.min(edges.len()));
    let mut eacm = Eacm::new();
    let mut labeled = Vec::new();
    for &(source, _) in chosen {
        if eacm.label(source, config.object, config.right).is_some() {
            continue;
        }
        let sign = if rng.gen_bool(config.negative_share.clamp(0.0, 1.0)) {
            Sign::Neg
        } else {
            Sign::Pos
        };
        eacm.set(source, config.object, config.right, sign)
            .expect("fresh label cannot contradict");
        labeled.push(source);
    }
    (eacm, labeled)
}

/// Populates a matrix for **many** `(object, right)` pairs at once, each
/// pair independently loaded via [`assign_by_edges`]. Used by the
/// effective-matrix and memo-cache experiments, which sweep per pair.
pub fn assign_matrix(
    hierarchy: &SubjectDag,
    objects: u32,
    rights: u32,
    rate: f64,
    negative_share: f64,
    rng: &mut Rng,
) -> Eacm {
    let mut eacm = Eacm::new();
    for o in 0..objects {
        for r in 0..rights {
            let config = AuthConfig {
                rate,
                negative_share,
                object: ObjectId(o),
                right: RightId(r),
            };
            let (pair_matrix, _) = assign_by_edges(hierarchy, config, rng);
            for (s, oo, rr, sign) in pair_matrix.iter() {
                eacm.set(s, oo, rr, sign)
                    .expect("distinct pairs cannot contradict");
            }
        }
    }
    eacm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kdag::kdag, rng};

    #[test]
    fn respects_the_edge_quota() {
        let mut r = rng(1);
        let k = kdag(40, &mut r);
        let (eacm, labeled) = assign_by_edges(&k.hierarchy, AuthConfig::with_rate(0.05), &mut r);
        let quota = ((k.hierarchy.membership_count() as f64) * 0.05).round() as usize;
        assert!(eacm.len() <= quota);
        assert!(!eacm.is_empty());
        assert_eq!(eacm.len(), labeled.len());
    }

    #[test]
    fn rate_zero_gives_empty_matrix() {
        let mut r = rng(2);
        let k = kdag(20, &mut r);
        let (eacm, labeled) = assign_by_edges(&k.hierarchy, AuthConfig::with_rate(0.0), &mut r);
        assert!(eacm.is_empty());
        assert!(labeled.is_empty());
    }

    #[test]
    fn negative_share_extremes() {
        let mut r = rng(3);
        let k = kdag(60, &mut r);
        let all_neg = AuthConfig {
            negative_share: 1.0,
            ..AuthConfig::with_rate(0.1)
        };
        let (eacm, _) = assign_by_edges(&k.hierarchy, all_neg, &mut r);
        assert!(eacm.iter().all(|(_, _, _, s)| s == Sign::Neg));
        let all_pos = AuthConfig {
            negative_share: 0.0,
            ..AuthConfig::with_rate(0.1)
        };
        let (eacm, _) = assign_by_edges(&k.hierarchy, all_pos, &mut r);
        assert!(eacm.iter().all(|(_, _, _, s)| s == Sign::Pos));
    }

    #[test]
    fn only_edge_sources_are_labeled() {
        let mut r = rng(4);
        let k = kdag(30, &mut r);
        let (eacm, _) = assign_by_edges(&k.hierarchy, AuthConfig::with_rate(0.2), &mut r);
        for (s, _, _, _) in eacm.iter() {
            assert!(
                !k.hierarchy.members_of(s).is_empty(),
                "labeled subject {s} must be an edge source (a group)"
            );
        }
    }

    #[test]
    fn assign_matrix_covers_all_pairs() {
        let mut r = rng(6);
        let k = kdag(50, &mut r);
        let eacm = assign_matrix(&k.hierarchy, 3, 2, 0.1, 0.5, &mut r);
        let pairs = eacm.object_right_pairs();
        assert_eq!(pairs.len(), 6);
        for o in 0..3u32 {
            for rr in 0..2u32 {
                assert!(pairs.contains(&(ObjectId(o), RightId(rr))));
            }
        }
    }

    #[test]
    fn labels_target_the_configured_pair() {
        let mut r = rng(5);
        let k = kdag(30, &mut r);
        let cfg = AuthConfig {
            object: ObjectId(7),
            right: RightId(3),
            ..AuthConfig::with_rate(0.1)
        };
        let (eacm, _) = assign_by_edges(&k.hierarchy, cfg, &mut r);
        assert!(eacm
            .iter()
            .all(|(_, o, rr, _)| o == ObjectId(7) && rr == RightId(3)));
    }
}
