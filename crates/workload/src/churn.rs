//! Dynamic workloads: interleaved query/update traces for the
//! maintenance experiments.
//!
//! The paper's related-work section argues that materialised effective
//! matrices are not "self-maintainable with respect to updating the
//! explicit authorizations". The sweep cache in `ucra_core::session`
//! claims the opposite trade-off; this module generates the traces that
//! measure it: a mix of authorization checks, explicit-matrix updates
//! and (rare) membership edits, with a tunable update rate.

use crate::Rng;
use rand::Rng as _;
use ucra_core::{ObjectId, RightId, Sign, SubjectId};

/// One step of a dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// An authorization check for a triple.
    Check {
        /// Queried subject.
        subject: SubjectId,
        /// Queried object.
        object: ObjectId,
        /// Queried right.
        right: RightId,
    },
    /// Set (or overwrite-compatible re-set) of an explicit label.
    SetLabel {
        /// Labeled subject.
        subject: SubjectId,
        /// Labeled object.
        object: ObjectId,
        /// Labeled right.
        right: RightId,
        /// The sign to record.
        sign: Sign,
    },
    /// Removal of an explicit label (no-op when absent).
    UnsetLabel {
        /// Target subject.
        subject: SubjectId,
        /// Target object.
        object: ObjectId,
        /// Target right.
        right: RightId,
    },
    /// Addition of a membership edge `group → member` — the hierarchy
    /// edit whose cache cost the incremental repair path bounds to the
    /// member's descendant cone.
    AddMembership {
        /// The group gaining a member (drawn from the label population).
        group: SubjectId,
        /// The new member (drawn from the query population).
        member: SubjectId,
    },
}

/// Parameters for [`trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Number of operations to generate.
    pub ops: usize,
    /// Fraction of operations that are matrix updates (set/unset); the
    /// rest are checks. 0.0 = read-only, 1.0 = write-only.
    pub update_share: f64,
    /// Among updates, the fraction that are unsets.
    pub unset_share: f64,
    /// Among updates, the fraction that are membership edits
    /// (`AddMembership`); the rest are matrix updates split by
    /// [`ChurnConfig::unset_share`]. 0.0 reproduces matrix-only traces.
    pub membership_share: f64,
    /// Number of distinct objects queried/labeled.
    pub objects: u32,
    /// Number of distinct rights queried/labeled.
    pub rights: u32,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            ops: 1000,
            update_share: 0.05,
            unset_share: 0.3,
            membership_share: 0.0,
            objects: 4,
            rights: 1,
        }
    }
}

/// Generates a dynamic trace over the given subject population.
///
/// `query_subjects` are the subjects checks target (typically the
/// hierarchy's individuals); `label_subjects` are the subjects updates
/// target (typically groups, mirroring the paper's edge-source labeling).
pub fn trace(
    config: ChurnConfig,
    query_subjects: &[SubjectId],
    label_subjects: &[SubjectId],
    rng: &mut Rng,
) -> Vec<ChurnOp> {
    assert!(!query_subjects.is_empty() && !label_subjects.is_empty());
    let mut ops = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        let object = ObjectId(rng.gen_range(0..config.objects.max(1)));
        let right = RightId(rng.gen_range(0..config.rights.max(1)));
        if rng.gen_bool(config.update_share.clamp(0.0, 1.0)) {
            if rng.gen_bool(config.membership_share.clamp(0.0, 1.0)) {
                let group = label_subjects[rng.gen_range(0..label_subjects.len())];
                let member = query_subjects[rng.gen_range(0..query_subjects.len())];
                ops.push(ChurnOp::AddMembership { group, member });
                continue;
            }
            let subject = label_subjects[rng.gen_range(0..label_subjects.len())];
            if rng.gen_bool(config.unset_share.clamp(0.0, 1.0)) {
                ops.push(ChurnOp::UnsetLabel {
                    subject,
                    object,
                    right,
                });
            } else {
                let sign = if rng.gen_bool(0.5) {
                    Sign::Pos
                } else {
                    Sign::Neg
                };
                ops.push(ChurnOp::SetLabel {
                    subject,
                    object,
                    right,
                    sign,
                });
            }
        } else {
            let subject = query_subjects[rng.gen_range(0..query_subjects.len())];
            ops.push(ChurnOp::Check {
                subject,
                object,
                right,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn subjects(n: usize) -> Vec<SubjectId> {
        (0..n).map(SubjectId::from_index).collect()
    }

    #[test]
    fn respects_op_count_and_shares() {
        let mut r = rng(1);
        let q = subjects(10);
        let l = subjects(5);
        let ops = trace(
            ChurnConfig {
                ops: 4000,
                update_share: 0.25,
                ..Default::default()
            },
            &q,
            &l,
            &mut r,
        );
        assert_eq!(ops.len(), 4000);
        let updates = ops
            .iter()
            .filter(|o| !matches!(o, ChurnOp::Check { .. }))
            .count();
        let share = updates as f64 / 4000.0;
        assert!((0.20..0.30).contains(&share), "share {share}");
    }

    #[test]
    fn read_only_and_write_only_extremes() {
        let mut r = rng(2);
        let q = subjects(4);
        let l = subjects(4);
        let ops = trace(
            ChurnConfig {
                ops: 100,
                update_share: 0.0,
                ..Default::default()
            },
            &q,
            &l,
            &mut r,
        );
        assert!(ops.iter().all(|o| matches!(o, ChurnOp::Check { .. })));
        let ops = trace(
            ChurnConfig {
                ops: 100,
                update_share: 1.0,
                ..Default::default()
            },
            &q,
            &l,
            &mut r,
        );
        assert!(ops.iter().all(|o| !matches!(o, ChurnOp::Check { .. })));
    }

    #[test]
    fn objects_and_rights_stay_in_range() {
        let mut r = rng(3);
        let q = subjects(4);
        let ops = trace(
            ChurnConfig {
                ops: 500,
                objects: 3,
                rights: 2,
                ..Default::default()
            },
            &q,
            &q,
            &mut r,
        );
        for op in ops {
            let (o, rt) = match op {
                ChurnOp::Check { object, right, .. }
                | ChurnOp::SetLabel { object, right, .. }
                | ChurnOp::UnsetLabel { object, right, .. } => (object, right),
                ChurnOp::AddMembership { .. } => continue,
            };
            assert!(o.0 < 3 && rt.0 < 2);
        }
    }

    #[test]
    fn membership_edits_appear_at_the_requested_share() {
        let mut r = rng(4);
        let q = subjects(10);
        let l = subjects(5);
        let ops = trace(
            ChurnConfig {
                ops: 4000,
                update_share: 0.5,
                membership_share: 0.4,
                ..Default::default()
            },
            &q,
            &l,
            &mut r,
        );
        let updates = ops
            .iter()
            .filter(|o| !matches!(o, ChurnOp::Check { .. }))
            .count();
        let edges = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::AddMembership { .. }))
            .count();
        let share = edges as f64 / updates as f64;
        assert!((0.30..0.50).contains(&share), "share {share}");
        for op in &ops {
            if let ChurnOp::AddMembership { group, member } = op {
                assert!(l.contains(group), "group from the label population");
                assert!(q.contains(member), "member from the query population");
            }
        }
    }

    #[test]
    fn matrix_only_traces_have_no_membership_edits() {
        let mut r = rng(5);
        let q = subjects(6);
        let ops = trace(
            ChurnConfig {
                ops: 500,
                update_share: 0.5,
                ..Default::default()
            },
            &q,
            &q,
            &mut r,
        );
        assert!(!ops
            .iter()
            .any(|o| matches!(o, ChurnOp::AddMembership { .. })));
    }

    #[test]
    fn deterministic_per_seed() {
        let q = subjects(8);
        let a = trace(ChurnConfig::default(), &q, &q, &mut rng(9));
        let b = trace(ChurnConfig::default(), &q, &q, &mut rng(9));
        assert_eq!(a, b);
    }
}
