//! Per-query structural measurements — the x-axes of the paper's
//! Figures 7(a) and 7(b).

use ucra_core::{Eacm, ObjectId, RightId, SubjectDag, SubjectId};
use ucra_graph::paths;

/// Structural statistics of one query's ancestor sub-graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of nodes in the ancestor sub-graph (Figure 7(b)'s second
    /// axis).
    pub subgraph_nodes: usize,
    /// Number of edges in the ancestor sub-graph.
    pub subgraph_edges: usize,
    /// The paper's `d`: total length of all paths from explicitly labeled
    /// subjects and unlabeled roots to the queried subject (Figure 7's
    /// primary axis).
    pub d: u128,
    /// Number of explicitly labeled ancestors (the paper's `p`).
    pub labeled_ancestors: usize,
    /// Number of roots of the sub-graph (the paper's `r`).
    pub roots: usize,
}

/// Measures the query ⟨`subject`, `object`, `right`⟩.
pub fn query_stats(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
) -> QueryStats {
    let sub = hierarchy
        .ancestor_subgraph(subject)
        .expect("caller passes a valid subject");
    // Sources of propagation: labeled ancestors + unlabeled roots.
    let mut sources = Vec::new();
    let mut labeled_ancestors = 0;
    let mut roots = 0;
    for v in sub.dag.nodes() {
        let original = sub.original_id(v);
        let labeled = eacm.label(original, object, right).is_some();
        if labeled {
            labeled_ancestors += 1;
        }
        if sub.dag.is_root(v) {
            roots += 1;
        }
        if labeled || sub.dag.is_root(v) {
            sources.push(v);
        }
    }
    let d = paths::sum_path_lengths_to(&sub.dag, &sources, sub.sink)
        .expect("path statistics fit in u128 for evaluation workloads");
    QueryStats {
        subgraph_nodes: sub.dag.node_count(),
        subgraph_edges: sub.dag.edge_count(),
        d,
        labeled_ancestors,
        roots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucra_core::motivating::motivating_example;

    #[test]
    fn motivating_example_stats() {
        let ex = motivating_example();
        let s = query_stats(&ex.hierarchy, &ex.eacm, ex.user, ex.obj, ex.read);
        assert_eq!(s.subgraph_nodes, 6);
        assert_eq!(s.subgraph_edges, 7);
        // Table 1's six rows have total distance 1+1+2+1+3+3 = 11.
        assert_eq!(s.d, 11);
        assert_eq!(s.labeled_ancestors, 2); // S2, S5
        assert_eq!(s.roots, 3); // S1, S2, S6
    }

    #[test]
    fn labeled_root_is_counted_once_as_source() {
        // root(+) → leaf: the root is both labeled and a root; d = 1.
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, leaf).unwrap();
        let mut eacm = Eacm::new();
        eacm.grant(root, ObjectId(0), RightId(0)).unwrap();
        let s = query_stats(&h, &eacm, leaf, ObjectId(0), RightId(0));
        assert_eq!(s.d, 1);
        assert_eq!(s.labeled_ancestors, 1);
        assert_eq!(s.roots, 1);
    }

    #[test]
    fn isolated_subject_has_zero_d() {
        let mut h = SubjectDag::new();
        let v = h.add_subject();
        let s = query_stats(&h, &Eacm::new(), v, ObjectId(0), RightId(0));
        assert_eq!(s.subgraph_nodes, 1);
        assert_eq!(s.d, 0);
        assert_eq!(s.roots, 1);
    }
}
