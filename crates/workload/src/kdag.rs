//! The paper's synthetic stress workload: *KDAG(n)*, a random complete
//! directed acyclic graph.
//!
//! §4: "KDAG(n) includes n nodes, one of which is a root and one of which
//! is a sink, and (n choose 2) edges (an edge between every pair of
//! nodes), directed in such a way as to prevent cycles."
//!
//! Construction: draw a uniformly random permutation of the nodes and
//! orient every pair along it. The first node of the permutation is then
//! the unique root, the last the unique sink, and the graph is acyclic by
//! construction. Path counts between root and sink are enormous
//! (`2^(n-2)`), which is exactly why the paper uses these graphs as
//! stress tests for `Propagate()`.

use crate::Rng;
use rand::seq::SliceRandom;
use ucra_core::{SubjectDag, SubjectId};

/// A generated KDAG with its distinguished nodes.
#[derive(Debug, Clone)]
pub struct Kdag {
    /// The hierarchy.
    pub hierarchy: SubjectDag,
    /// The unique root (first node of the permutation).
    pub root: SubjectId,
    /// The unique sink (last node of the permutation).
    pub sink: SubjectId,
    /// The topological permutation used, from root to sink.
    pub order: Vec<SubjectId>,
}

/// Generates *KDAG(n)*. `n` must be at least 1.
///
/// ```
/// use ucra_workload::{kdag::kdag, rng};
///
/// let k = kdag(10, &mut rng(42));
/// assert_eq!(k.hierarchy.membership_count(), 45); // 10 choose 2
/// assert_eq!(k.hierarchy.roots().count(), 1);
/// assert_eq!(k.hierarchy.individuals().count(), 1);
/// ```
pub fn kdag(n: usize, rng: &mut Rng) -> Kdag {
    assert!(n >= 1, "KDAG needs at least one node");
    let mut hierarchy = SubjectDag::with_capacity(n);
    let ids = hierarchy.add_subjects(n);
    let mut order = ids;
    order.shuffle(rng);
    for i in 0..n {
        for j in (i + 1)..n {
            hierarchy
                .add_membership(order[i], order[j])
                .expect("forward edges of a permutation cannot cycle");
        }
    }
    Kdag {
        root: order[0],
        sink: order[n - 1],
        hierarchy,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn has_complete_edge_count_one_root_one_sink() {
        let mut r = rng(42);
        for n in [1, 2, 5, 20] {
            let k = kdag(n, &mut r);
            assert_eq!(k.hierarchy.subject_count(), n);
            assert_eq!(k.hierarchy.membership_count(), n * (n - 1) / 2);
            assert_eq!(k.hierarchy.roots().collect::<Vec<_>>(), vec![k.root]);
            assert_eq!(k.hierarchy.individuals().collect::<Vec<_>>(), vec![k.sink]);
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = kdag(12, &mut rng(7));
        let b = kdag(12, &mut rng(7));
        assert_eq!(a.order, b.order);
        let c = kdag(12, &mut rng(8));
        assert_ne!(a.order, c.order, "different seeds should differ");
    }

    #[test]
    fn path_count_root_to_sink_is_two_to_the_n_minus_two() {
        // Every subset of the n-2 interior nodes, in permutation order,
        // forms exactly one path.
        let k = kdag(12, &mut rng(3));
        let paths = ucra_graph::paths::count_paths(k.hierarchy.graph(), k.root, k.sink).unwrap();
        assert_eq!(paths, 1 << 10);
    }

    #[test]
    fn order_is_topological() {
        let k = kdag(15, &mut rng(9));
        let pos: std::collections::HashMap<_, _> =
            k.order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (p, c) in k.hierarchy.graph().edges() {
            assert!(pos[&p] < pos[&c]);
        }
    }
}
