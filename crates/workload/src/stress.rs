//! The deep-and-wide stress shape: the workload the columnar fused-sweep
//! kernel is benchmarked on.
//!
//! [`layered`](crate::layered) DAGs only connect adjacent layers, so
//! every histogram's distance span is narrow and contiguous. Real
//! enterprise hierarchies (and the paper's Livelink statistics) also
//! contain *shortcut* memberships — a user directly in a top-level group
//! — which widen the distance spans and punch zero-count gaps into them.
//! [`deep_wide`] generates exactly that: a deep layered spine plus
//! random skip-level edges, then loads explicit labels for **many**
//! `(object, right)` pairs so multi-column batching has real work to
//! fuse.

use crate::auth::{assign_by_edges, AuthConfig};
use crate::Rng;
use rand::Rng as _;
use ucra_core::{Eacm, ObjectId, RightId, SubjectDag, SubjectId};

/// Parameters for [`deep_wide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressConfig {
    /// Number of layers (the hierarchy's depth, ≥ 2).
    pub depth: usize,
    /// Subjects per layer.
    pub width: usize,
    /// Probability of an edge from each previous-layer node (on top of
    /// one guaranteed parent).
    pub density: f64,
    /// Probability of a *skip* edge from each node two layers up —
    /// these widen distance spans and create zero-count gap strata.
    pub skip_density: f64,
    /// Number of `(object, right)` pairs to load with labels.
    pub pairs: usize,
    /// Per-pair authorization rate (fraction of edges whose sources are
    /// labeled, as in the paper's §4 assignment).
    pub rate: f64,
    /// Fraction of negative labels.
    pub negative_share: f64,
}

impl StressConfig {
    /// The full benchmark shape (~2k subjects, 64 label-bearing pairs).
    ///
    /// Densities are tuned so per-stratum path counts stay in a
    /// *realistic* multiplicity regime (≲ 2^50 paths per stratum at
    /// depth 48 — the paper's Livelink statistics are many orders of
    /// magnitude below even that). The pre-tiering config
    /// (`density: 0.06, skip_density: 0.015`) compounded to ~2^85 paths
    /// per stratum, which no real hierarchy exhibits and which forces
    /// any sub-`u128` count representation to escalate on every batch;
    /// that extreme regime is covered by the dedicated path-doubling
    /// escalation tests instead of the headline benchmark.
    pub fn full() -> Self {
        StressConfig {
            depth: 48,
            width: 40,
            density: 0.025,
            skip_density: 0.005,
            pairs: 64,
            rate: 0.05,
            negative_share: 0.4,
        }
    }

    /// A seconds-fast shape for CI smoke runs and unit tests.
    pub fn quick() -> Self {
        StressConfig {
            depth: 10,
            width: 12,
            density: 0.15,
            skip_density: 0.05,
            pairs: 12,
            rate: 0.08,
            negative_share: 0.4,
        }
    }
}

/// A generated stress model: hierarchy, loaded explicit matrix, and the
/// label-bearing pairs (the benchmark's work list).
#[derive(Debug, Clone)]
pub struct StressModel {
    /// The deep-and-wide hierarchy.
    pub hierarchy: SubjectDag,
    /// Explicit labels for every pair in `pairs`.
    pub eacm: Eacm,
    /// The `(object, right)` pairs that carry labels, in column order.
    pub pairs: Vec<(ObjectId, RightId)>,
    /// `layers[i]` holds layer *i*'s subjects, roots first.
    pub layers: Vec<Vec<SubjectId>>,
}

/// Generates the deep-and-wide stress model (deterministic per `rng`
/// state).
pub fn deep_wide(config: StressConfig, rng: &mut Rng) -> StressModel {
    assert!(
        config.depth >= 2 && config.width >= 1,
        "degenerate stress config"
    );
    let mut hierarchy = SubjectDag::with_capacity(config.depth * config.width);
    let layers: Vec<Vec<SubjectId>> = (0..config.depth)
        .map(|_| hierarchy.add_subjects(config.width))
        .collect();
    for i in 1..layers.len() {
        for &child in &layers[i] {
            let upper = &layers[i - 1];
            let forced = upper[rng.gen_range(0..upper.len())];
            hierarchy
                .add_membership(forced, child)
                .expect("downward edges cannot cycle");
            for &parent in upper {
                if parent != forced && rng.gen_bool(config.density) {
                    hierarchy
                        .add_membership(parent, child)
                        .expect("downward edges cannot cycle");
                }
            }
            // Skip-level shortcuts: distance-2 parents reached in 1 hop.
            if i >= 2 {
                for &grand in &layers[i - 2] {
                    if rng.gen_bool(config.skip_density) {
                        hierarchy
                            .add_membership(grand, child)
                            .expect("downward edges cannot cycle");
                    }
                }
            }
        }
    }
    // Spread the pairs over a few rights so object/right grouping code
    // paths are exercised too.
    let pairs: Vec<(ObjectId, RightId)> = (0..config.pairs)
        .map(|i| (ObjectId((i / 3) as u32), RightId((i % 3) as u32)))
        .collect();
    let mut eacm = Eacm::new();
    for &(object, right) in &pairs {
        let (pair_matrix, _) = assign_by_edges(
            &hierarchy,
            AuthConfig {
                rate: config.rate,
                negative_share: config.negative_share,
                object,
                right,
            },
            rng,
        );
        for (s, o, r, sign) in pair_matrix.iter() {
            eacm.set(s, o, r, sign)
                .expect("distinct pairs cannot contradict");
        }
    }
    StressModel {
        hierarchy,
        eacm,
        pairs,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use ucra_graph::traverse;

    #[test]
    fn quick_shape_is_deep_wide_and_labeled() {
        let m = deep_wide(StressConfig::quick(), &mut rng(7));
        let cfg = StressConfig::quick();
        assert_eq!(m.hierarchy.subject_count(), cfg.depth * cfg.width);
        assert_eq!(
            traverse::longest_path_len(m.hierarchy.graph()),
            (cfg.depth - 1) as u32,
            "the spine keeps the full depth despite skip edges"
        );
        assert_eq!(m.pairs.len(), cfg.pairs);
        assert!(!m.eacm.is_empty());
        // Every pair in the work list actually carries labels (rate and
        // edge count are big enough in the quick shape).
        let loaded = m.eacm.object_right_pairs();
        for pair in &m.pairs {
            assert!(loaded.contains(pair), "pair {pair:?} has no labels");
        }
    }

    #[test]
    fn skip_edges_exist_and_create_distance_gaps() {
        let cfg = StressConfig {
            skip_density: 0.5,
            ..StressConfig::quick()
        };
        let m = deep_wide(cfg, &mut rng(8));
        // At least one membership crosses two layers.
        let layer_of: std::collections::HashMap<_, _> = m
            .layers
            .iter()
            .enumerate()
            .flat_map(|(i, l)| l.iter().map(move |&v| (v, i)))
            .collect();
        let has_skip = m
            .hierarchy
            .graph()
            .edges()
            .any(|(g, v)| layer_of[&v] == layer_of[&g] + 2);
        assert!(has_skip, "skip_density 0.5 must produce skip edges");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = deep_wide(StressConfig::quick(), &mut rng(9));
        let b = deep_wide(StressConfig::quick(), &mut rng(9));
        assert_eq!(
            a.hierarchy.membership_count(),
            b.hierarchy.membership_count()
        );
        assert_eq!(a.eacm.len(), b.eacm.len());
    }
}
