//! Algebraic laws of the bag relational engine, checked on random
//! relations — the correctness bedrock under the executable spec.

use proptest::prelude::*;
use ucra_relational::{Predicate, Relation, Schema, Value};

/// A random relation over schema (k: int, v: text) with small domains so
/// joins and duplicates actually happen.
fn relation(rows: &[(i64, u8)]) -> Relation {
    let mut r = Relation::new(Schema::new(["k", "v"]));
    for &(k, v) in rows {
        r.push_row([
            Value::Int(k % 4),
            Value::text(["a", "b", "c"][(v % 3) as usize]),
        ])
        .unwrap();
    }
    r
}

/// A second relation sharing only column `k`.
fn relation_w(rows: &[(i64, i64)]) -> Relation {
    let mut r = Relation::new(Schema::new(["k", "w"]));
    for &(k, w) in rows {
        r.push_row([Value::Int(k % 4), Value::Int(w % 5)]).unwrap();
    }
    r
}

fn multiset(rel: &Relation) -> Vec<Vec<Value>> {
    rel.sorted_rows()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// σ_p(σ_q(R)) = σ_q(σ_p(R)) = σ_{p∧q}(R).
    #[test]
    fn selection_commutes_and_fuses(rows in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..24)) {
        let r = relation(&rows);
        let p = Predicate::col_eq("k", 1i64);
        let q = Predicate::col_eq("v", "a");
        let a = r.select(&p).unwrap().select(&q).unwrap();
        let b = r.select(&q).unwrap().select(&p).unwrap();
        let c = r.select(&p.clone().and(q.clone())).unwrap();
        prop_assert_eq!(multiset(&a), multiset(&b));
        prop_assert_eq!(multiset(&a), multiset(&c));
    }

    /// Selection distributes over bag union.
    #[test]
    fn selection_distributes_over_union(
        xs in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..16),
        ys in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..16),
    ) {
        let (r, s) = (relation(&xs), relation(&ys));
        let p = Predicate::col_ne("v", "b");
        let left = r.union_all(&s).unwrap().select(&p).unwrap();
        let right = r.select(&p).unwrap().union_all(&s.select(&p).unwrap()).unwrap();
        prop_assert_eq!(multiset(&left), multiset(&right));
    }

    /// Bag projection preserves cardinality; distinct projection is a
    /// sub-multiset with no duplicates.
    #[test]
    fn projection_laws(rows in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..24)) {
        let r = relation(&rows);
        let bag = r.project(&["v"]).unwrap();
        prop_assert_eq!(bag.len(), r.len());
        let set = r.project_distinct(&["v"]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in set.rows() {
            prop_assert!(seen.insert(row.to_vec()), "distinct output has duplicates");
        }
        prop_assert!(set.len() <= bag.len());
    }

    /// Natural join cardinality equals the sum over key groups of the
    /// product of multiplicities, and never exceeds |R|·|S|.
    #[test]
    fn join_cardinality(
        xs in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..16),
        ys in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..16),
    ) {
        let (r, s) = (relation(&xs), relation_w(&ys));
        let j = r.natural_join(&s).unwrap();
        prop_assert!(j.len() <= r.len() * s.len());
        // Count by key on both sides.
        let count_by_key = |rel: &Relation| {
            let mut m = std::collections::HashMap::new();
            let ki = rel.schema().index_of("k").unwrap();
            for row in rel.rows() {
                *m.entry(row[ki].clone()).or_insert(0usize) += 1;
            }
            m
        };
        let (cr, cs) = (count_by_key(&r), count_by_key(&s));
        let expected: usize = cr
            .iter()
            .map(|(k, n)| n * cs.get(k).copied().unwrap_or(0))
            .sum();
        prop_assert_eq!(j.len(), expected);
    }

    /// Join with an empty relation is empty; product cardinality is the
    /// product of cardinalities.
    #[test]
    fn join_and_product_with_extremes(
        xs in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..16),
        ys in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..8),
    ) {
        let r = relation(&xs);
        let empty = Relation::new(Schema::new(["k", "w"]));
        prop_assert_eq!(r.natural_join(&empty).unwrap().len(), 0);
        let s = relation_w(&ys).rename("k", "k2").unwrap().rename("w", "w2").unwrap();
        prop_assert_eq!(r.product(&s).unwrap().len(), r.len() * s.len());
    }

    /// Set difference: (R − S) has no row of S, and R − ∅ = distinct(R).
    #[test]
    fn minus_laws(
        xs in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..16),
        ys in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..16),
    ) {
        let (r, s) = (relation(&xs), relation(&ys));
        let d = r.minus(&s).unwrap();
        let s_rows: std::collections::HashSet<Vec<Value>> =
            s.rows().map(|x| x.to_vec()).collect();
        for row in d.rows() {
            prop_assert!(!s_rows.contains(row));
        }
        let empty = Relation::new(r.schema().clone());
        let d0 = r.minus(&empty).unwrap();
        prop_assert_eq!(multiset(&d0), multiset(&r.project_distinct(&["k", "v"]).unwrap()));
    }

    /// group_count totals equal the relation's cardinality.
    #[test]
    fn group_count_totals(rows in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..24)) {
        let r = relation(&rows);
        let g = r.group_count(&["k"]).unwrap();
        let total: i64 = g
            .rows()
            .map(|row| row[1].as_int().unwrap())
            .sum();
        prop_assert_eq!(total as usize, r.len());
    }

    /// update-then-count equals count of the union of rewritten parts.
    #[test]
    fn update_is_partition_rewrite(rows in proptest::collection::vec((any::<i64>(), any::<u8>()), 0..24)) {
        let mut r = relation(&rows);
        let before_a = r.count_where(&Predicate::col_eq("v", "a")).unwrap();
        let before_b = r.count_where(&Predicate::col_eq("v", "b")).unwrap();
        let changed = r
            .update("v", Value::text("b"), &Predicate::col_eq("v", "a"))
            .unwrap();
        prop_assert_eq!(changed, before_a);
        let after_b = r.count_where(&Predicate::col_eq("v", "b")).unwrap();
        prop_assert_eq!(after_b, before_a + before_b);
        prop_assert_eq!(r.count_where(&Predicate::col_eq("v", "a")).unwrap(), 0);
    }
}
