//! Error type for relational operations.

use std::fmt;

/// Errors raised by relational operators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelationalError {
    /// A referenced column does not exist in the relation's schema.
    UnknownColumn(String),
    /// A row had the wrong number of cells for the schema.
    ArityMismatch {
        /// Columns the schema defines.
        expected: usize,
        /// Cells the row supplied.
        got: usize,
    },
    /// Two relations were combined by an operator that requires identical
    /// schemas (union, difference), but the schemas differ.
    SchemaMismatch {
        /// Left operand's schema rendering.
        left: String,
        /// Right operand's schema rendering.
        right: String,
    },
    /// A cartesian product or join would produce duplicate column names.
    DuplicateColumn(String),
    /// An aggregate (`min`/`max`) was applied to an empty relation.
    EmptyAggregate,
    /// An aggregate or comparison met a value of the wrong kind.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it found.
        got: &'static str,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            RelationalError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            RelationalError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: [{left}] vs [{right}]")
            }
            RelationalError::DuplicateColumn(c) => {
                write!(f, "operation would duplicate column `{c}`")
            }
            RelationalError::EmptyAggregate => write!(f, "aggregate over empty relation"),
            RelationalError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}
