//! The [`Relation`] type and its operators.

use crate::{Predicate, RelationalError, Schema, Value};
use std::collections::HashSet;
use std::fmt;

/// An in-memory relation with **bag** (multiset) semantics: duplicate rows
/// are kept and counted, exactly as in SQL and in the paper's `allRights`
/// relation, where each row represents one propagation path.
///
/// ```
/// use ucra_relational::{Predicate, Relation, Schema, Value};
///
/// let mut sdag = Relation::new(Schema::new(["subject", "child"]));
/// sdag.push_row([Value::Int(1), Value::Int(2)]).unwrap();
/// sdag.push_row([Value::Int(1), Value::Int(3)]).unwrap();
///
/// let mut labels = Relation::new(Schema::new(["subject", "mode"]));
/// labels.push_row([Value::Int(1), Value::text("+")]).unwrap();
///
/// // ⋈ joins on the shared `subject` column: the label reaches both edges.
/// let joined = labels.natural_join(&sdag).unwrap();
/// assert_eq!(joined.len(), 2);
/// assert_eq!(joined.count_where(&Predicate::col_eq("mode", "+")).unwrap(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows, counting duplicates (SQL `count(*)`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Appends a row; its arity must match the schema.
    pub fn push_row<I>(&mut self, row: I) -> Result<(), RelationalError>
    where
        I: IntoIterator<Item = Value>,
    {
        let row: Vec<Value> = row.into_iter().collect();
        if row.len() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// σ — rows satisfying `pred`, duplicates preserved.
    pub fn select(&self, pred: &Predicate) -> Result<Relation, RelationalError> {
        let mut out = Relation::new(self.schema.clone());
        for row in &self.rows {
            if pred.eval(&self.schema, row)? {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    /// π — bag projection onto the named columns (duplicates preserved,
    /// as in SQL `SELECT col…` without `DISTINCT`).
    pub fn project(&self, columns: &[&str]) -> Result<Relation, RelationalError> {
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.index_of(c))
            .collect::<Result<_, _>>()?;
        let mut out = Relation::new(Schema::new(columns.iter().map(|c| c.to_string())));
        for row in &self.rows {
            out.rows.push(idx.iter().map(|&i| row[i].clone()).collect());
        }
        Ok(out)
    }

    /// π with `DISTINCT` — set projection, used where the paper treats a
    /// projection as a set (e.g. Fig. 4 Line 7's `Auth`).
    pub fn project_distinct(&self, columns: &[&str]) -> Result<Relation, RelationalError> {
        let mut out = self.project(columns)?;
        let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(out.rows.len());
        out.rows.retain(|r| seen.insert(r.clone()));
        Ok(out)
    }

    /// ∪ — bag union (SQL `UNION ALL`); schemas must be identical.
    pub fn union_all(&self, other: &Relation) -> Result<Relation, RelationalError> {
        self.check_same_schema(other)?;
        let mut out = self.clone();
        out.rows.extend(other.rows.iter().cloned());
        Ok(out)
    }

    /// − — set difference: distinct rows of `self` that do not occur in
    /// `other` (relational-algebra difference, as in Fig. 5 Line 4).
    pub fn minus(&self, other: &Relation) -> Result<Relation, RelationalError> {
        self.check_same_schema(other)?;
        let exclude: HashSet<&Vec<Value>> = other.rows.iter().collect();
        let mut out = Relation::new(self.schema.clone());
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        for row in &self.rows {
            if !exclude.contains(row) && seen.insert(row.clone()) {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    /// ⋈ — natural join on all common column names (hash join on the key
    /// of common columns; bag semantics: each matching pair produces one
    /// output row).
    pub fn natural_join(&self, other: &Relation) -> Result<Relation, RelationalError> {
        let common = self.schema.common_columns(&other.schema);
        let left_key: Vec<usize> = common
            .iter()
            .map(|c| self.schema.index_of(c))
            .collect::<Result<_, _>>()?;
        let right_key: Vec<usize> = common
            .iter()
            .map(|c| other.schema.index_of(c))
            .collect::<Result<_, _>>()?;
        // Output schema: all of self's columns, then other's non-common ones.
        let right_extra: Vec<usize> = (0..other.schema.arity())
            .filter(|&i| !common.contains(&other.schema.columns()[i]))
            .collect();
        let mut names: Vec<String> = self.schema.columns().to_vec();
        names.extend(
            right_extra
                .iter()
                .map(|&i| other.schema.columns()[i].clone()),
        );
        let mut out = Relation::new(Schema::new(names));

        // Build side: hash the smaller relation? Keep it simple and hash
        // `other`; spec-grade performance is not the goal here.
        let mut index: std::collections::HashMap<Vec<&Value>, Vec<&Vec<Value>>> =
            std::collections::HashMap::new();
        for row in &other.rows {
            let key: Vec<&Value> = right_key.iter().map(|&i| &row[i]).collect();
            index.entry(key).or_default().push(row);
        }
        for lrow in &self.rows {
            let key: Vec<&Value> = left_key.iter().map(|&i| &lrow[i]).collect();
            if let Some(matches) = index.get(&key) {
                for rrow in matches {
                    let mut row = lrow.clone();
                    row.extend(right_extra.iter().map(|&i| rrow[i].clone()));
                    out.rows.push(row);
                }
            }
        }
        Ok(out)
    }

    /// × — cartesian product; column names must be disjoint.
    pub fn product(&self, other: &Relation) -> Result<Relation, RelationalError> {
        for c in other.schema.columns() {
            if self.schema.contains(c) {
                return Err(RelationalError::DuplicateColumn(c.clone()));
            }
        }
        let mut names: Vec<String> = self.schema.columns().to_vec();
        names.extend(other.schema.columns().iter().cloned());
        let mut out = Relation::new(Schema::new(names));
        for l in &self.rows {
            for r in &other.rows {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                out.rows.push(row);
            }
        }
        Ok(out)
    }

    /// ρ — renames one column (e.g. Fig. 5 Line 8, where the propagated
    /// relation's `child` column becomes the next iteration's `subject`).
    pub fn rename(&self, from: &str, to: &str) -> Result<Relation, RelationalError> {
        let i = self.schema.index_of(from)?;
        if self.schema.contains(to) && from != to {
            return Err(RelationalError::DuplicateColumn(to.to_string()));
        }
        let mut names: Vec<String> = self.schema.columns().to_vec();
        names[i] = to.to_string();
        Ok(Relation {
            schema: Schema::new(names),
            rows: self.rows.clone(),
        })
    }

    /// Appends a constant column to every row (used to materialise the
    /// iteration counter `i` as the `dis` column in Fig. 5).
    pub fn with_const_column(&self, name: &str, value: Value) -> Result<Relation, RelationalError> {
        if self.schema.contains(name) {
            return Err(RelationalError::DuplicateColumn(name.to_string()));
        }
        let mut names: Vec<String> = self.schema.columns().to_vec();
        names.push(name.to_string());
        let mut out = Relation::new(Schema::new(names));
        for row in &self.rows {
            let mut r = row.clone();
            r.push(value.clone());
            out.rows.push(r);
        }
        Ok(out)
    }

    /// SQL `UPDATE self SET column = value WHERE pred` (Fig. 4 Line 3).
    /// Returns the number of rows changed.
    pub fn update(
        &mut self,
        column: &str,
        value: Value,
        pred: &Predicate,
    ) -> Result<usize, RelationalError> {
        let ci = self.schema.index_of(column)?;
        let mut changed = 0;
        // Evaluate against an immutable view before mutating each row.
        for i in 0..self.rows.len() {
            if pred.eval(&self.schema, &self.rows[i])? {
                self.rows[i][ci] = value.clone();
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// `count(σ_pred self)` — convenience combining Fig. 4's Lines 4–5.
    pub fn count_where(&self, pred: &Predicate) -> Result<usize, RelationalError> {
        let mut n = 0;
        for row in &self.rows {
            if pred.eval(&self.schema, row)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// `SELECT group_cols, count(*) GROUP BY group_cols` — the grouped
    /// counterpart of `count()`, used by analyses over the propagation
    /// relation (e.g. votes per distance stratum).
    ///
    /// The output schema is `group_cols` plus a trailing `count` column;
    /// groups appear in first-occurrence order.
    pub fn group_count(&self, group_cols: &[&str]) -> Result<Relation, RelationalError> {
        let idx: Vec<usize> = group_cols
            .iter()
            .map(|c| self.schema.index_of(c))
            .collect::<Result<_, _>>()?;
        if self.schema.contains("count") && !group_cols.contains(&"count") {
            return Err(RelationalError::DuplicateColumn("count".to_string()));
        }
        let mut names: Vec<String> = group_cols.iter().map(|c| c.to_string()).collect();
        names.push("count".to_string());
        let mut out = Relation::new(Schema::new(names));
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut counts: std::collections::HashMap<Vec<Value>, i64> =
            std::collections::HashMap::new();
        for row in &self.rows {
            let key: Vec<Value> = idx.iter().map(|&i| row[i].clone()).collect();
            match counts.entry(key.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(1);
                    order.push(key);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    *e.get_mut() += 1;
                }
            }
        }
        for key in order {
            let n = counts[&key];
            let mut row = key;
            row.push(Value::Int(n));
            out.rows.push(row);
        }
        Ok(out)
    }

    /// `min(column)` over an integer column.
    pub fn min_int(&self, column: &str) -> Result<i64, RelationalError> {
        self.fold_int(column, |a, b| a.min(b))
    }

    /// `max(column)` over an integer column.
    pub fn max_int(&self, column: &str) -> Result<i64, RelationalError> {
        self.fold_int(column, |a, b| a.max(b))
    }

    fn fold_int(&self, column: &str, f: impl Fn(i64, i64) -> i64) -> Result<i64, RelationalError> {
        let ci = self.schema.index_of(column)?;
        let mut acc: Option<i64> = None;
        for row in &self.rows {
            let v = row[ci].as_int().ok_or(RelationalError::TypeMismatch {
                expected: "int",
                got: row[ci].kind(),
            })?;
            acc = Some(match acc {
                None => v,
                Some(a) => f(a, v),
            });
        }
        acc.ok_or(RelationalError::EmptyAggregate)
    }

    fn check_same_schema(&self, other: &Relation) -> Result<(), RelationalError> {
        if self.schema == other.schema {
            Ok(())
        } else {
            Err(RelationalError::SchemaMismatch {
                left: self.schema.to_string(),
                right: other.schema.to_string(),
            })
        }
    }

    /// Sorted copy of the rows — convenient for order-insensitive
    /// comparisons in tests and for stable text output.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl fmt::Display for Relation {
    /// Renders a small fixed-width table, in the spirit of the paper's
    /// Tables 1 and 4.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers = self.schema.columns();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:w$}")?;
                first = false;
            }
            writeln!(f)
        };
        line(f, headers)?;
        for row in &rendered {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rights() -> Relation {
        // Paper Table 1 (dis, mode only).
        let mut r = Relation::new(Schema::new(["dis", "mode"]));
        for (d, m) in [(1, "-"), (1, "d"), (2, "d"), (1, "+"), (3, "+"), (3, "d")] {
            r.push_row([Value::Int(d), Value::text(m)]).unwrap();
        }
        r
    }

    #[test]
    fn push_row_checks_arity() {
        let mut r = Relation::new(Schema::new(["a", "b"]));
        assert!(matches!(
            r.push_row([Value::Int(1)]),
            Err(RelationalError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn select_keeps_duplicates() {
        let mut r = Relation::new(Schema::new(["m"]));
        r.push_row([Value::text("+")]).unwrap();
        r.push_row([Value::text("+")]).unwrap();
        let s = r.select(&Predicate::col_eq("m", "+")).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn project_bag_vs_distinct() {
        let r = rights();
        assert_eq!(r.project(&["mode"]).unwrap().len(), 6);
        let d = r.project_distinct(&["mode"]).unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn union_all_counts_duplicates() {
        let r = rights();
        let u = r.union_all(&r).unwrap();
        assert_eq!(u.len(), 12);
    }

    #[test]
    fn union_requires_same_schema() {
        let r = rights();
        let other = Relation::new(Schema::new(["x"]));
        assert!(matches!(
            r.union_all(&other),
            Err(RelationalError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn minus_is_set_difference() {
        let mut a = Relation::new(Schema::new(["v"]));
        for x in [1, 1, 2, 3] {
            a.push_row([Value::Int(x)]).unwrap();
        }
        let mut b = Relation::new(Schema::new(["v"]));
        b.push_row([Value::Int(2)]).unwrap();
        let d = a.minus(&b).unwrap();
        assert_eq!(
            d.sorted_rows(),
            vec![vec![Value::Int(1)], vec![Value::Int(3)]]
        );
    }

    #[test]
    fn natural_join_on_common_column() {
        let mut sdag = Relation::new(Schema::new(["subject", "child"]));
        sdag.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        sdag.push_row([Value::Int(1), Value::Int(3)]).unwrap();
        let mut p = Relation::new(Schema::new(["subject", "mode"]));
        p.push_row([Value::Int(1), Value::text("+")]).unwrap();
        p.push_row([Value::Int(9), Value::text("-")]).unwrap();
        let j = p.natural_join(&sdag).unwrap();
        assert_eq!(j.schema().columns(), &["subject", "mode", "child"]);
        assert_eq!(j.len(), 2); // subject 1 matches both edges; 9 matches none
    }

    #[test]
    fn natural_join_bag_multiplicity() {
        let mut l = Relation::new(Schema::new(["k"]));
        l.push_row([Value::Int(1)]).unwrap();
        l.push_row([Value::Int(1)]).unwrap();
        let mut r = Relation::new(Schema::new(["k", "v"]));
        r.push_row([Value::Int(1), Value::Int(10)]).unwrap();
        r.push_row([Value::Int(1), Value::Int(20)]).unwrap();
        assert_eq!(l.natural_join(&r).unwrap().len(), 4);
    }

    #[test]
    fn join_with_no_common_columns_is_product() {
        let mut l = Relation::new(Schema::new(["a"]));
        l.push_row([Value::Int(1)]).unwrap();
        l.push_row([Value::Int(2)]).unwrap();
        let mut r = Relation::new(Schema::new(["b"]));
        r.push_row([Value::Int(3)]).unwrap();
        // With no common columns every pair matches (empty key).
        assert_eq!(l.natural_join(&r).unwrap().len(), 2);
        assert_eq!(l.product(&r).unwrap().len(), 2);
    }

    #[test]
    fn product_rejects_shared_names() {
        let l = Relation::new(Schema::new(["a"]));
        let r = Relation::new(Schema::new(["a"]));
        assert!(matches!(
            l.product(&r),
            Err(RelationalError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn update_rewrites_matching_rows() {
        let mut r = rights();
        let n = r
            .update("mode", Value::text("+"), &Predicate::col_eq("mode", "d"))
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(r.count_where(&Predicate::col_eq("mode", "+")).unwrap(), 5);
        assert_eq!(r.count_where(&Predicate::col_eq("mode", "d")).unwrap(), 0);
    }

    #[test]
    fn aggregates() {
        let r = rights();
        assert_eq!(r.min_int("dis").unwrap(), 1);
        assert_eq!(r.max_int("dis").unwrap(), 3);
        let empty = Relation::new(Schema::new(["dis"]));
        assert_eq!(empty.min_int("dis"), Err(RelationalError::EmptyAggregate));
        assert!(matches!(
            r.min_int("mode"),
            Err(RelationalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn group_count_by_mode() {
        let r = rights();
        let g = r.group_count(&["mode"]).unwrap();
        assert_eq!(g.schema().columns(), &["mode", "count"]);
        let rows = g.sorted_rows();
        assert_eq!(
            rows,
            vec![
                vec![Value::text("+"), Value::Int(2)],
                vec![Value::text("-"), Value::Int(1)],
                vec![Value::text("d"), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn group_count_by_two_columns_and_empty_group() {
        let r = rights();
        let g = r.group_count(&["dis", "mode"]).unwrap();
        assert_eq!(g.len(), 6); // Table 1 has no duplicate (dis, mode)
        assert!(g.rows().all(|row| row[2] == Value::Int(1)));
        // Grouping by nothing counts everything.
        let all = r.group_count(&[]).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all.rows().next().unwrap()[0], Value::Int(6));
    }

    #[test]
    fn group_count_rejects_count_collision() {
        let mut r = Relation::new(Schema::new(["count", "x"]));
        r.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        assert!(matches!(
            r.group_count(&["x"]),
            Err(RelationalError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn rename_changes_schema_only() {
        let r = rights();
        let renamed = r.rename("dis", "distance").unwrap();
        assert_eq!(renamed.schema().columns(), &["distance", "mode"]);
        assert_eq!(renamed.len(), r.len());
        assert!(matches!(
            r.rename("dis", "mode"),
            Err(RelationalError::DuplicateColumn(_))
        ));
        assert!(matches!(
            r.rename("nope", "x"),
            Err(RelationalError::UnknownColumn(_))
        ));
    }

    #[test]
    fn with_const_column_appends() {
        let r = rights();
        let c = r.with_const_column("i", Value::Int(4)).unwrap();
        assert_eq!(c.schema().columns(), &["dis", "mode", "i"]);
        assert!(c.rows().all(|row| row[2] == Value::Int(4)));
        assert!(matches!(
            r.with_const_column("mode", Value::Int(0)),
            Err(RelationalError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let r = rights();
        let text = r.to_string();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap().trim(), "dis | mode");
        assert_eq!(text.lines().count(), 7);
    }
}
