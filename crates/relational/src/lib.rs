//! # `ucra-relational` — a bag-semantics relational algebra engine and the
//! executable specification of the paper's algorithms
//!
//! The paper states both of its algorithms in relational algebra over SQL
//! style **bag** (multiset) relations: Function `Propagate()` (Fig. 5) as a
//! loop of joins, projections and unions, and Algorithm `Resolve()` (Fig. 4)
//! as selections, an `update`, and `count()` aggregates. This crate supplies
//!
//! 1. a minimal in-memory relational engine with exactly the operators the
//!    figures use — selection ([`Relation::select`]), projection
//!    ([`Relation::project`]), natural join ([`Relation::natural_join`]),
//!    bag union ([`Relation::union_all`]), set difference
//!    ([`Relation::minus`]), cartesian product ([`Relation::product`]),
//!    `update … set … where` ([`Relation::update`]), `count()` and min/max
//!    aggregates; and
//! 2. a **literal transcription** of Fig. 4 and Fig. 5 on top of it
//!    ([`spec`]), line-numbered to match the paper.
//!
//! The transcription is deliberately unoptimized. It serves as the oracle
//! against which `ucra-core`'s production engines (`path_enum`, `counting`)
//! are property-tested, and as the slowest rung of the engine-comparison
//! ablation benchmark.
//!
//! Bag semantics matter here: `allRights` (paper Table 1) carries one row
//! **per path** from a labeled ancestor, and the Majority policy counts
//! duplicates as distinct votes.
//!
//! ## Example
//!
//! ```
//! use ucra_relational::{Relation, Schema, Value, Predicate};
//!
//! let mut r = Relation::new(Schema::new(["subject", "mode"]));
//! r.push_row([Value::Int(1), Value::text("+")]).unwrap();
//! r.push_row([Value::Int(2), Value::text("-")]).unwrap();
//! r.push_row([Value::Int(3), Value::text("+")]).unwrap();
//!
//! let pos = r.select(&Predicate::col_eq("mode", Value::text("+"))).unwrap();
//! assert_eq!(pos.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod predicate;
mod relation;
mod schema;
pub mod spec;
mod value;

pub use error::RelationalError;
pub use predicate::Predicate;
pub use relation::Relation;
pub use schema::Schema;
pub use value::Value;
