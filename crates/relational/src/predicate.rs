//! A tiny predicate AST for selections and updates.

use crate::{RelationalError, Schema, Value};

/// A boolean condition over one row, as used by `σ` (selection) and the
/// `where` clause of [`crate::Relation::update`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (selects every row).
    True,
    /// `column = value`.
    ColEqVal(String, Value),
    /// `column <> value` — e.g. Fig. 4 Line 2's `mode <> "d"`.
    ColNeVal(String, Value),
    /// `column_a = column_b`.
    ColEqCol(String, String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`.
    pub fn col_eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::ColEqVal(column.into(), value.into())
    }

    /// `column <> value`.
    pub fn col_ne(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::ColNeVal(column.into(), value.into())
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate on one row laid out per `schema`.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> Result<bool, RelationalError> {
        Ok(match self {
            Predicate::True => true,
            Predicate::ColEqVal(c, v) => &row[schema.index_of(c)?] == v,
            Predicate::ColNeVal(c, v) => &row[schema.index_of(c)?] != v,
            Predicate::ColEqCol(a, b) => row[schema.index_of(a)?] == row[schema.index_of(b)?],
            Predicate::And(a, b) => a.eval(schema, row)? && b.eval(schema, row)?,
            Predicate::Or(a, b) => a.eval(schema, row)? || b.eval(schema, row)?,
            Predicate::Not(p) => !p.eval(schema, row)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["dis", "mode"])
    }

    fn row(dis: i64, mode: &str) -> Vec<Value> {
        vec![Value::Int(dis), Value::text(mode)]
    }

    #[test]
    fn eq_and_ne() {
        let s = schema();
        let p = Predicate::col_eq("mode", "d");
        assert!(p.eval(&s, &row(1, "d")).unwrap());
        assert!(!p.eval(&s, &row(1, "+")).unwrap());
        let n = Predicate::col_ne("mode", "d");
        assert!(!n.eval(&s, &row(1, "d")).unwrap());
        assert!(n.eval(&s, &row(1, "+")).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let s = schema();
        let p = Predicate::col_eq("mode", "+").and(Predicate::col_eq("dis", 1i64));
        assert!(p.eval(&s, &row(1, "+")).unwrap());
        assert!(!p.eval(&s, &row(2, "+")).unwrap());
        let q = Predicate::col_eq("mode", "+").or(Predicate::col_eq("mode", "-"));
        assert!(q.eval(&s, &row(9, "-")).unwrap());
        assert!(!q.eval(&s, &row(9, "d")).unwrap());
        assert!(q.clone().not().eval(&s, &row(9, "d")).unwrap());
    }

    #[test]
    fn col_eq_col() {
        let s = Schema::new(["a", "b"]);
        let p = Predicate::ColEqCol("a".into(), "b".into());
        assert!(p.eval(&s, &[Value::Int(3), Value::Int(3)]).unwrap());
        assert!(!p.eval(&s, &[Value::Int(3), Value::Int(4)]).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let p = Predicate::col_eq("nope", 1i64);
        assert!(matches!(
            p.eval(&s, &row(1, "+")),
            Err(RelationalError::UnknownColumn(_))
        ));
    }

    #[test]
    fn true_selects_everything() {
        let s = schema();
        assert!(Predicate::True.eval(&s, &row(0, "d")).unwrap());
    }
}
