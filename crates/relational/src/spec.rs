//! Executable specification: a literal, line-numbered transcription of the
//! paper's Function `Propagate()` (Fig. 5) and Algorithm `Resolve()`
//! (Fig. 4) over the relational engine.
//!
//! This module exists to be *obviously* faithful to the paper, not fast:
//! every step quotes the corresponding figure line. `ucra-core`'s
//! production engines are property-tested for bag-equivalence against it.
//!
//! ## Two documented clarifications of the figures
//!
//! 1. **Line 3 (Fig. 5)** joins `SDAG′` with the filtered EACM. Taken
//!    literally, a subject appearing only in `SDAG′`'s `child` column — in
//!    particular the queried sink `s` itself — would never receive its own
//!    explicit authorization, contradicting §3.2 ("the *dis* value for
//!    explicit authorizations is 0") and Line 12 (which selects `subject =
//!    s` rows, including distance-0 ones). We therefore join the **node
//!    set** of the sub-hierarchy `H` (which always contains `s`) with the
//!    EACM.
//! 2. **Line 4 (Fig. 5)** computes the unlabeled roots as
//!    `π_subject SDAG′ − π_child SDAG′ − π_subject P`. When `H` is the
//!    single node `s` (a subject with no ancestors), `SDAG′` has no tuples
//!    and the projection misses `s`, even though Step 2 of §3 says *all*
//!    unlabeled roots of `H` receive the default. We compute roots from the
//!    node set of `H` instead, which agrees with the figure whenever `H`
//!    has at least one edge.

use crate::{Predicate, Relation, RelationalError, Schema, Value};
use std::collections::BTreeSet;

/// A definite authorization sign: the result of `Resolve()` and the value
/// domain of the Preference rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Positive authorization (`+`): access granted.
    Pos,
    /// Negative authorization (`-`): access denied.
    Neg,
}

impl Sign {
    /// The paper's one-character rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            Sign::Pos => "+",
            Sign::Neg => "-",
        }
    }
}

/// `dRule` — the Default policy parameter (Fig. 4): `"+"`, `"-"`, or `"0"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefaultRule {
    /// Unlabeled root ancestors are initialised to `+` (open systems).
    Pos,
    /// Unlabeled root ancestors are initialised to `-` (closed systems).
    Neg,
    /// `"0"`: no default policy; `d` rows are discarded (Fig. 4 Line 2).
    NoDefault,
}

/// `lRule` — the Locality policy parameter (Fig. 4): `min()`, `max()`, or
/// `identity()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalityRule {
    /// `min()`: the most specific authorization takes precedence.
    Min,
    /// `max()`: the most general (global) authorization takes precedence.
    Max,
    /// `identity()`: no locality policy; all rows pass the filter.
    Identity,
}

/// `mRule` — the Majority policy parameter (Fig. 4): `before`, `after`, or
/// `skip` (relative to the locality filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MajorityRule {
    /// Count votes over all of `allRights` (majority applied before
    /// locality).
    Before,
    /// Apply the locality filter first, then count votes (majority applied
    /// after locality).
    After,
    /// No majority policy.
    Skip,
}

/// Schema of the `P` / `allRights` relations:
/// `(subject, object, permission, dis, mode)`.
pub fn all_rights_schema() -> Schema {
    Schema::new(["subject", "object", "permission", "dis", "mode"])
}

/// Schema of the SDAG relation: `(subject, child)`.
pub fn sdag_schema() -> Schema {
    Schema::new(["subject", "child"])
}

/// Schema of the EACM relation: `(subject, object, permission, mode)`.
pub fn eacm_schema() -> Schema {
    Schema::new(["subject", "object", "permission", "mode"])
}

/// Builds the SDAG relation from `(parent, child)` edges.
pub fn sdag_relation(edges: &[(i64, i64)]) -> Relation {
    let mut r = Relation::new(sdag_schema());
    for &(p, c) in edges {
        r.push_row([Value::Int(p), Value::Int(c)]).expect("arity 2");
    }
    r
}

/// Builds the EACM relation from `(subject, object, permission, sign)`
/// explicit authorizations.
pub fn eacm_relation(entries: &[(i64, i64, i64, Sign)]) -> Relation {
    let mut r = Relation::new(eacm_schema());
    for &(s, o, p, sign) in entries {
        r.push_row([
            Value::Int(s),
            Value::Int(o),
            Value::Int(p),
            Value::text(sign.symbol()),
        ])
        .expect("arity 4");
    }
    r
}

/// `ancestors(s) = {s} ∪ {x | ∃y ⟨y,s⟩ ∈ SDAG ∧ x ∈ ancestors(y)}` —
/// computed as a fixpoint over the SDAG relation, exactly as defined in
/// the header of Fig. 5. (The paper's definition recurses through parents:
/// `⟨y, s⟩ ∈ SDAG` makes `y` a parent of `s`.)
pub fn ancestors(sdag: &Relation, s: i64) -> Result<BTreeSet<i64>, RelationalError> {
    let si = sdag.schema().index_of("subject")?;
    let ci = sdag.schema().index_of("child")?;
    let mut anc: BTreeSet<i64> = BTreeSet::new();
    anc.insert(s);
    loop {
        let mut grew = false;
        for row in sdag.rows() {
            let (parent, child) = (row[si].as_int(), row[ci].as_int());
            if let (Some(p), Some(c)) = (parent, child) {
                if anc.contains(&c) && anc.insert(p) {
                    grew = true;
                }
            }
        }
        if !grew {
            return Ok(anc);
        }
    }
}

/// Function `Propagate()` (Fig. 5), returning the **full** relation `P`
/// (paper Table 4) rather than only the sink's rows.
pub fn propagate_full(
    sdag: &Relation,
    eacm: &Relation,
    s: i64,
    o: i64,
    r: i64,
) -> Result<Relation, RelationalError> {
    // Line 1: SDAG' ← σ_{subject ∈ ancestors(s), child ∈ ancestors(s)} SDAG
    let anc = ancestors(sdag, s)?;
    let si = sdag.schema().index_of("subject")?;
    let ci = sdag.schema().index_of("child")?;
    let mut sdag_p = Relation::new(sdag.schema().clone());
    for row in sdag.rows() {
        let keep = matches!(
            (row[si].as_int(), row[ci].as_int()),
            (Some(p), Some(c)) if anc.contains(&p) && anc.contains(&c)
        );
        if keep {
            sdag_p.push_row(row.to_vec())?;
        }
    }

    // Node set of H = ancestors(s); see module docs, clarification 1.
    let mut nodes = Relation::new(Schema::new(["subject"]));
    for &a in &anc {
        nodes.push_row([Value::Int(a)])?;
    }

    // Line 2: i = 0.
    let mut i: i64 = 0;

    // Line 3: P ← π_{subject,object,permission,i,mode}(nodes ⋈ σ_{permission=r, object=o} EACM)
    let filtered_eacm =
        eacm.select(&Predicate::col_eq("permission", r).and(Predicate::col_eq("object", o)))?;
    let joined = nodes.natural_join(&filtered_eacm)?;
    let mut p = joined.with_const_column("dis", Value::Int(i))?.project(&[
        "subject",
        "object",
        "permission",
        "dis",
        "mode",
    ])?;

    // Line 4: Roots ← nodes − π_child SDAG' − π_subject P
    // (see module docs, clarification 2: `nodes` in place of π_subject SDAG').
    let roots = nodes
        .minus(&sdag_p.project(&["child"])?.rename("child", "subject")?)?
        .minus(&p.project(&["subject"])?)?;

    // Line 5: P ← P ∪ Roots × {⟨o, r, i, "d"⟩}
    let mut default_tuple = Relation::new(Schema::new(["object", "permission", "dis", "mode"]));
    default_tuple.push_row([
        Value::Int(o),
        Value::Int(r),
        Value::Int(i),
        Value::text("d"),
    ])?;
    p = p.union_all(&roots.product(&default_tuple)?.project(&[
        "subject",
        "object",
        "permission",
        "dis",
        "mode",
    ])?)?;

    // Line 6: P' ← σ_{subject ≠ s} P
    let mut p_prime = p.select(&Predicate::col_ne("subject", s))?;

    // Lines 7–11.
    loop {
        // Line 7: i = i + 1
        i += 1;
        // Line 8: P' ← π_{child, object, permission, i, mode}(P' ⋈ SDAG')
        p_prime = p_prime
            .project(&["subject", "object", "permission", "mode"])?
            .natural_join(&sdag_p)?
            .project(&["child", "object", "permission", "mode"])?
            .rename("child", "subject")?
            .with_const_column("dis", Value::Int(i))?
            .project(&["subject", "object", "permission", "dis", "mode"])?;
        // Line 9: P ← P ∪ P'
        p = p.union_all(&p_prime)?;
        // Line 10: P' ← σ_{subject ≠ s} P'
        p_prime = p_prime.select(&Predicate::col_ne("subject", s))?;
        // Line 11: until P' = ∅
        if p_prime.is_empty() {
            break;
        }
    }
    Ok(p)
}

/// Function `Propagate()` (Fig. 5) — Line 12: `σ_{subject = s} P`, the
/// `allRights` relation of the queried subject (paper Table 1).
pub fn propagate(
    sdag: &Relation,
    eacm: &Relation,
    s: i64,
    o: i64,
    r: i64,
) -> Result<Relation, RelationalError> {
    propagate_full(sdag, eacm, s, o, r)?.select(&Predicate::col_eq("subject", s))
}

/// Applies the locality filter of Fig. 4 Line 7:
/// `σ_{dis = lRule(dis)} allRights`.
fn locality_filter(
    all_rights: &Relation,
    l_rule: LocalityRule,
) -> Result<Relation, RelationalError> {
    match l_rule {
        LocalityRule::Identity => Ok(all_rights.clone()),
        LocalityRule::Min | LocalityRule::Max => {
            if all_rights.is_empty() {
                return Ok(all_rights.clone());
            }
            let bound = match l_rule {
                LocalityRule::Min => all_rights.min_int("dis")?,
                LocalityRule::Max => all_rights.max_int("dis")?,
                LocalityRule::Identity => unreachable!(),
            };
            all_rights.select(&Predicate::col_eq("dis", bound))
        }
    }
}

/// The observable trace of one spec-level `Resolve()` run — the columns
/// of the paper's Table 3, for cross-checking against the production
/// resolver's [`crate::Relation`]-free implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecTrace {
    /// The decision.
    pub sign: Sign,
    /// `c₁` (positive votes), when the Majority policy ran.
    pub c1: Option<usize>,
    /// `c₂` (negative votes), when the Majority policy ran.
    pub c2: Option<usize>,
    /// The distinct modes surviving the locality filter, when Line 7 was
    /// reached (sorted `+` before `-`).
    pub auth: Option<Vec<Sign>>,
    /// The Fig. 4 line that returned: 6, 8 or 9.
    pub line: u8,
}

/// Algorithm `Resolve()` (Fig. 4): computes the effective authorization of
/// subject `s` for right `r` on object `o` under the strategy instance
/// `(d_rule, l_rule, m_rule, p_rule)`.
#[allow(clippy::too_many_arguments)]
pub fn resolve(
    sdag: &Relation,
    eacm: &Relation,
    s: i64,
    o: i64,
    r: i64,
    d_rule: DefaultRule,
    l_rule: LocalityRule,
    m_rule: MajorityRule,
    p_rule: Sign,
) -> Result<Sign, RelationalError> {
    Ok(resolve_traced(sdag, eacm, s, o, r, d_rule, l_rule, m_rule, p_rule)?.sign)
}

/// [`resolve`] with the full Table-3 trace.
#[allow(clippy::too_many_arguments)]
pub fn resolve_traced(
    sdag: &Relation,
    eacm: &Relation,
    s: i64,
    o: i64,
    r: i64,
    d_rule: DefaultRule,
    l_rule: LocalityRule,
    m_rule: MajorityRule,
    p_rule: Sign,
) -> Result<SpecTrace, RelationalError> {
    // Line 1: allRights ← Propagate(s, o, r, SDAG, EACM)
    let mut all_rights = propagate(sdag, eacm, s, o, r)?;

    // Lines 2–3: default policy.
    match d_rule {
        DefaultRule::NoDefault => {
            all_rights = all_rights.select(&Predicate::col_ne("mode", "d"))?;
        }
        DefaultRule::Pos => {
            all_rights.update("mode", Value::text("+"), &Predicate::col_eq("mode", "d"))?;
        }
        DefaultRule::Neg => {
            all_rights.update("mode", Value::text("-"), &Predicate::col_eq("mode", "d"))?;
        }
    }

    // Lines 4–6: majority policy.
    let (mut c1, mut c2) = (None, None);
    if m_rule != MajorityRule::Skip {
        let counted = match m_rule {
            MajorityRule::Before => all_rights.clone(),
            MajorityRule::After => locality_filter(&all_rights, l_rule)?,
            MajorityRule::Skip => unreachable!(),
        };
        let pos = counted.count_where(&Predicate::col_eq("mode", "+"))?;
        let neg = counted.count_where(&Predicate::col_eq("mode", "-"))?;
        c1 = Some(pos);
        c2 = Some(neg);
        if pos > neg {
            return Ok(SpecTrace {
                sign: Sign::Pos,
                c1,
                c2,
                auth: None,
                line: 6,
            });
        }
        if neg > pos {
            return Ok(SpecTrace {
                sign: Sign::Neg,
                c1,
                c2,
                auth: None,
                line: 6,
            });
        }
    }

    // Line 7: Auth ← π_mode(σ_{dis = lRule(dis)} allRights)
    let auth_rel = locality_filter(&all_rights, l_rule)?.project_distinct(&["mode"])?;
    let mut auth: Vec<Sign> = auth_rel
        .rows()
        .map(|row| match row[0].as_text() {
            Some("+") => Sign::Pos,
            Some("-") => Sign::Neg,
            other => unreachable!("mode `{other:?}` survived the default policy"),
        })
        .collect();
    auth.sort_by_key(|s| *s == Sign::Neg); // `+` first, as in our core trace

    // Line 8: if count(Auth) = 1 return Auth
    if auth.len() == 1 {
        let sign = auth[0];
        return Ok(SpecTrace {
            sign,
            c1,
            c2,
            auth: Some(auth),
            line: 8,
        });
    }

    // Line 9: return pRule
    Ok(SpecTrace {
        sign: p_rule,
        c1,
        c2,
        auth: Some(auth),
        line: 9,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3 encoded as relations: node ids 1,2,3,5,6 = S1,S2,S3,S5,S6;
    /// 100 = User. Object 10, right 20.
    fn fig3() -> (Relation, Relation) {
        let sdag = sdag_relation(&[(1, 3), (2, 3), (2, 100), (3, 5), (5, 100), (6, 5), (6, 100)]);
        let eacm = eacm_relation(&[(2, 10, 20, Sign::Pos), (5, 10, 20, Sign::Neg)]);
        (sdag, eacm)
    }

    fn dis_mode(rel: &Relation) -> Vec<(i64, String)> {
        let mut v: Vec<(i64, String)> = rel
            .rows()
            .map(|r| (r[3].as_int().unwrap(), r[4].as_text().unwrap().to_string()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn ancestors_of_user() {
        let (sdag, _) = fig3();
        let anc = ancestors(&sdag, 100).unwrap();
        assert_eq!(
            anc.into_iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 5, 6, 100]
        );
    }

    #[test]
    fn ancestors_of_isolated_subject_is_itself() {
        let sdag = sdag_relation(&[(1, 2)]);
        let anc = ancestors(&sdag, 99).unwrap();
        assert_eq!(anc.into_iter().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn propagate_reproduces_table_1() {
        let (sdag, eacm) = fig3();
        let all = propagate(&sdag, &eacm, 100, 10, 20).unwrap();
        assert_eq!(
            dis_mode(&all),
            vec![
                (1, "+".into()),
                (1, "-".into()),
                (1, "d".into()),
                (2, "d".into()),
                (3, "+".into()),
                (3, "d".into()),
            ]
        );
    }

    #[test]
    fn propagate_full_reproduces_table_4() {
        let (sdag, eacm) = fig3();
        let p = propagate_full(&sdag, &eacm, 100, 10, 20).unwrap();
        // Table 4 has 15 rows.
        assert_eq!(p.len(), 15);
        // Spot checks: explicit entries at dis 0 for S2(+), S5(-), defaults
        // on roots S1, S6.
        let zero = p.select(&Predicate::col_eq("dis", 0i64)).unwrap();
        assert_eq!(zero.len(), 4);
        // S5 receives the propagated + at distance 2 (S2→S3→S5) and the
        // default from S1 at distance 2 (S1→S3→S5).
        let s5 = p.select(&Predicate::col_eq("subject", 5i64)).unwrap();
        assert_eq!(
            dis_mode(&s5),
            vec![
                (0, "-".into()),
                (1, "d".into()),
                (2, "+".into()),
                (2, "d".into()),
            ]
        );
    }

    #[test]
    fn explicit_label_on_sink_is_included_at_distance_zero() {
        let sdag = sdag_relation(&[(1, 2)]);
        let eacm = eacam_with_sink_label();
        let all = propagate(&sdag, &eacm, 2, 10, 20).unwrap();
        assert_eq!(dis_mode(&all), vec![(0, "-".into()), (1, "d".into())]);
    }

    fn eacam_with_sink_label() -> Relation {
        eacm_relation(&[(2, 10, 20, Sign::Neg)])
    }

    #[test]
    fn isolated_unlabeled_subject_gets_default_at_distance_zero() {
        let sdag = sdag_relation(&[(1, 2)]); // subject 99 not mentioned
        let eacm = eacm_relation(&[]);
        let all = propagate(&sdag, &eacm, 99, 10, 20).unwrap();
        assert_eq!(dis_mode(&all), vec![(0, "d".into())]);
        // Under D+ the isolated subject is granted access.
        let sign = resolve(
            &sdag,
            &eacm,
            99,
            10,
            20,
            DefaultRule::Pos,
            LocalityRule::Min,
            MajorityRule::Skip,
            Sign::Neg,
        )
        .unwrap();
        assert_eq!(sign, Sign::Pos);
    }

    #[test]
    fn other_objects_and_rights_are_filtered_out() {
        let sdag = sdag_relation(&[(1, 2)]);
        let eacm = eacm_relation(&[
            (1, 10, 20, Sign::Pos),
            (1, 11, 20, Sign::Neg), // different object
            (1, 10, 21, Sign::Neg), // different right
        ]);
        let all = propagate(&sdag, &eacm, 2, 10, 20).unwrap();
        assert_eq!(dis_mode(&all), vec![(1, "+".into())]);
    }

    #[test]
    fn resolve_selected_table_2_entries() {
        let (sdag, eacm) = fig3();
        let run = |d, l, m, p| resolve(&sdag, &eacm, 100, 10, 20, d, l, m, p).unwrap();
        use DefaultRule as D;
        use LocalityRule as L;
        use MajorityRule as M;
        // D+LMP+ → + (majority after locality: 2 vs 1 at distance 1)
        assert_eq!(run(D::Pos, L::Min, M::After, Sign::Pos), Sign::Pos);
        // D-GMP- → - (tie at distance 3, falls through to preference)
        assert_eq!(run(D::Neg, L::Max, M::After, Sign::Neg), Sign::Neg);
        // D-MP- → - (majority before: 2 vs 4)
        assert_eq!(run(D::Neg, L::Identity, M::Before, Sign::Neg), Sign::Neg);
        // D-LP+ → + (conflict at distance 1, preference +)
        assert_eq!(run(D::Neg, L::Min, M::Skip, Sign::Pos), Sign::Pos);
        // D+GP- → + (single mode + at distance 3 after defaults become +)
        assert_eq!(run(D::Pos, L::Max, M::Skip, Sign::Neg), Sign::Pos);
        // GMP- → + (no default; only the + survives at max distance 3)
        assert_eq!(run(D::NoDefault, L::Max, M::After, Sign::Neg), Sign::Pos);
        // P- → - (no default, no locality, no majority; conflict → pref)
        assert_eq!(
            run(D::NoDefault, L::Identity, M::Skip, Sign::Neg),
            Sign::Neg
        );
        // MGP- → + (majority before locality over explicit rows: 2 vs 1)
        assert_eq!(run(D::NoDefault, L::Max, M::Before, Sign::Neg), Sign::Pos);
    }

    #[test]
    fn traced_resolve_matches_paper_table_3() {
        let (sdag, eacm) = fig3();
        let run = |d, l, m, p| resolve_traced(&sdag, &eacm, 100, 10, 20, d, l, m, p).unwrap();
        use DefaultRule as D;
        use LocalityRule as L;
        use MajorityRule as M;
        // D+LMP+: c1=2, c2=1, +, line 6.
        let t = run(D::Pos, L::Min, M::After, Sign::Pos);
        assert_eq!(
            t,
            SpecTrace {
                sign: Sign::Pos,
                c1: Some(2),
                c2: Some(1),
                auth: None,
                line: 6
            }
        );
        // D-GMP-: 1, 1, {+,-}, -, line 9.
        let t = run(D::Neg, L::Max, M::After, Sign::Neg);
        assert_eq!(
            t,
            SpecTrace {
                sign: Sign::Neg,
                c1: Some(1),
                c2: Some(1),
                auth: Some(vec![Sign::Pos, Sign::Neg]),
                line: 9
            }
        );
        // D+GP-: {+}, +, line 8.
        let t = run(D::Pos, L::Max, M::Skip, Sign::Neg);
        assert_eq!(
            t,
            SpecTrace {
                sign: Sign::Pos,
                c1: None,
                c2: None,
                auth: Some(vec![Sign::Pos]),
                line: 8
            }
        );
    }

    #[test]
    fn empty_all_rights_falls_to_preference() {
        // Subject 99 is isolated and unlabeled; with no default policy the
        // allRights relation is empty and Line 9 returns the preference.
        let sdag = sdag_relation(&[(1, 2)]);
        let eacm = eacm_relation(&[]);
        for p in [Sign::Pos, Sign::Neg] {
            let sign = resolve(
                &sdag,
                &eacm,
                99,
                10,
                20,
                DefaultRule::NoDefault,
                LocalityRule::Min,
                MajorityRule::After,
                p,
            )
            .unwrap();
            assert_eq!(sign, p);
        }
    }
}
