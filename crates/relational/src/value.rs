//! Scalar values stored in relation cells.

use std::fmt;

/// A scalar value in a relation cell.
///
/// The paper's relations only need integers (subject/object/right ids and
/// the distance column `dis`) and short symbolic strings (the `mode` column
/// with values `"+"`, `"-"`, `"d"`), so the value domain is kept to exactly
/// those two kinds.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// An owned string.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Text(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Text(s) => Some(s),
        }
    }

    /// Name of the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Text(_) => "text",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_text(), None);
        assert_eq!(Value::text("+").as_text(), Some("+"));
        assert_eq!(Value::text("+").as_int(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::text("d").to_string(), "d");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(String::from("y")), Value::text("y"));
    }

    #[test]
    fn ordering_is_total_within_kind() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::text("a") < Value::text("b"));
    }
}
