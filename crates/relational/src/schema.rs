//! Relation schemas: ordered, named columns.

use crate::RelationalError;
use std::fmt;

/// An ordered list of column names.
///
/// Columns are dynamically typed (any [`crate::Value`] may appear in any
/// column); the schema only fixes names and positions, which is all the
/// paper's algebra needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Builds a schema from column names.
    ///
    /// # Panics
    ///
    /// Panics if a column name repeats — schemas are tiny and fixed in this
    /// codebase, so a duplicate is a programming error, not input data.
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].contains(c),
                "duplicate column `{c}` in schema"
            );
        }
        Schema { columns }
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    #[inline]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Position of `name`, or an error naming the missing column.
    pub fn index_of(&self, name: &str) -> Result<usize, RelationalError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| RelationalError::UnknownColumn(name.to_string()))
    }

    /// `true` when `name` is a column of this schema.
    pub fn contains(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c == name)
    }

    /// Names common to both schemas, in this schema's order (used by
    /// natural join).
    pub fn common_columns(&self, other: &Schema) -> Vec<String> {
        self.columns
            .iter()
            .filter(|c| other.contains(c))
            .cloned()
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_contains() {
        let s = Schema::new(["subject", "dis", "mode"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("dis").unwrap(), 1);
        assert!(s.contains("mode"));
        assert!(!s.contains("object"));
        assert!(matches!(
            s.index_of("object"),
            Err(RelationalError::UnknownColumn(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        let _ = Schema::new(["a", "a"]);
    }

    #[test]
    fn common_columns_order() {
        let a = Schema::new(["x", "y", "z"]);
        let b = Schema::new(["z", "w", "x"]);
        assert_eq!(a.common_columns(&b), vec!["x".to_string(), "z".to_string()]);
    }

    #[test]
    fn display_joins_names() {
        let s = Schema::new(["a", "b"]);
        assert_eq!(s.to_string(), "a, b");
    }
}
