//! `ucra` — command-line front end for the unified conflict resolution
//! algorithm.
//!
//! ```text
//! ucra demo
//! ucra check   <model> <subject> <object> <right> [strategy]
//! ucra trace   <model> <subject> <object> <right> [strategy]
//! ucra explain <model> <subject> <object> <right> [strategy]
//! ucra matrix  <model> <object> <right> [strategy]
//! ucra strategies <model> <subject> <object> <right>
//! ucra compare <model> <object> <right> <from> <to>
//! ucra summary <model>
//! ucra sod     <model> [strategy]
//! ucra dot     <model> <object> <right>
//! ucra convert <in> <out>
//! ucra lint    <model> [--format json|text] [--deny warnings]
//! ucra lint    --explain <code>
//! ucra impact  <model> --edits <script> [--format json|text] [--deny <class>]
//! ucra gen     <nodes> [--seed N] [--inject-smells]
//! ucra stats   <model> [strategy]
//! ucra bench   [--quick] [--threads <list>]
//! ucra serve   [model] [--addr host:port] [--strategy mnemonic]
//! ```
//!
//! Models load from `.json` (serde) or any other extension as the
//! line-oriented policy format of `ucra-store` (`member`, `grant`,
//! `deny`, `strategy` directives). The strategy argument accepts the
//! paper's mnemonics (`D+LMP-`, `GMP+`, `P-`, …) and falls back to the
//! model's configured `strategy` directive.

use std::process::ExitCode;
use ucra_store::{text, AccessModel};

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ucra demo
      walk through the paper's motivating example
  ucra check  <model> <subject> <object> <right> [strategy]
      print + or - for one triple
  ucra trace  <model> <subject> <object> <right> [strategy]
      print the Table-3 style trace (c1, c2, Auth, mode, line)
  ucra matrix <model> <object> <right> [strategy]
      print the effective authorization of every subject
  ucra strategies <model> <subject> <object> <right>
      print the decision under all 48 strategy instances
  ucra explain <model> <subject> <object> <right> [strategy]
      say which ancestors and which policy decided
  ucra compare <model> <object> <right> <from> <to>
      impact report: which subjects change when switching strategies
  ucra summary <model>
      hierarchy statistics (nodes, edges, depth, labels)
  ucra sod <model> [strategy]
      check the model's separation-of-duty constraints
  ucra dot <model> <object> <right>
      Graphviz DOT of the hierarchy with explicit signs
  ucra convert <in> <out>
      convert between .json and policy-text model formats
  ucra lint <model> [--format json|text] [--deny warnings]
      static policy analysis; exits 0 clean, 1 on errors,
      2 on warnings with --deny warnings
  ucra lint --explain <code>
      print one rule's full documentation (UCRA010, no-op-edit, ...)
  ucra impact <model> --edits <script> [--format json|text]
              [--deny warnings|escalation] [--sensitive <glob>]
              [--mass-flip-pct <n>] [--strategy mnemonic]
      dry-run an edit script (subject/member/grant/deny/revoke/
      strategy lines): static blast cones, the exact effective diff
      on a copy-on-write overlay (the model file is never modified),
      and UCRA1xx findings; --deny escalation exits 2 when the
      script grants access the base policy denies
  ucra gen <nodes> [--seed N] [--inject-smells]
      print a synthetic policy; --inject-smells plants one of
      every smell `ucra lint` detects
  ucra stats <model> [strategy]
      batch-check every subject against every labeled pair and
      print the session's cache and sweep-kernel counters
  ucra bench [--quick] [--threads <list>] [--backend <name>]
      benchmark the fused-sweep kernel vs the legacy sweep and
      write BENCH_sweep.json at the repo root; --threads takes a
      comma-separated list of worker counts to sample (e.g. 1,2,4);
      --backend pins the kernel backend (scalar, sse2 or avx2 —
      clamped to what the host supports)
  ucra serve [model] [--addr host:port] [--strategy mnemonic]
      run the HTTP/JSON authorization daemon (default 127.0.0.1:7171)
      over the model, or over an empty installation when no model is
      given; --strategy sets the session strategy when the model
      names none (default D+LMP+)";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter().map(String::as_str);
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match it.next() {
        Some("demo") => done(commands::demo()),
        Some("check") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let [s, o, r] = take3(rest)?;
            let strategy = commands::pick_strategy(&model, rest.get(3).map(String::as_str))?;
            done(commands::check(&model, s, o, r, strategy))
        }
        Some("trace") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let [s, o, r] = take3(rest)?;
            let strategy = commands::pick_strategy(&model, rest.get(3).map(String::as_str))?;
            done(commands::trace(&model, s, o, r, strategy))
        }
        Some("matrix") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let [o, r] = take2(rest)?;
            let strategy = commands::pick_strategy(&model, rest.get(2).map(String::as_str))?;
            done(commands::matrix(&model, o, r, strategy))
        }
        Some("strategies") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let [s, o, r] = take3(rest)?;
            done(commands::strategies(&model, s, o, r))
        }
        Some("explain") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let [s, o, r] = take3(rest)?;
            let strategy = commands::pick_strategy(&model, rest.get(3).map(String::as_str))?;
            done(commands::explain(&model, s, o, r, strategy))
        }
        Some("compare") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            if rest.len() < 4 {
                return Err("compare needs <object> <right> <from-strategy> <to-strategy>".into());
            }
            let from = rest[2]
                .parse()
                .map_err(|e: ucra_core::CoreError| e.to_string())?;
            let to = rest[3]
                .parse()
                .map_err(|e: ucra_core::CoreError| e.to_string())?;
            done(commands::compare(&model, &rest[0], &rest[1], from, to))
        }
        Some("dot") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let [o, r] = take2(rest)?;
            done(commands::dot(&model, o, r))
        }
        Some("summary") => {
            let (model, _) = load_model_and_rest(&args[1..])?;
            done(commands::summary(&model))
        }
        Some("sod") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let strategy = commands::pick_strategy(&model, rest.first().map(String::as_str))?;
            // Violations are a reported outcome, not a usage error: exit
            // non-zero without the usage banner.
            Ok(if commands::sod(&model, strategy)? {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("convert") => {
            let [input, output] = take2(&args[1..])?;
            done(commands::convert(input, output))
        }
        Some("lint") => {
            let mut path = None;
            let mut json = false;
            let mut deny_warnings = false;
            let mut explain = None;
            let mut rest = args[1..].iter().map(String::as_str);
            while let Some(arg) = rest.next() {
                match arg {
                    "--format" => match rest.next() {
                        Some("json") => json = true,
                        Some("text") => json = false,
                        other => {
                            return Err(format!(
                                "--format takes `json` or `text`, got {:?}",
                                other.unwrap_or("nothing")
                            ))
                        }
                    },
                    "--deny" => match rest.next() {
                        Some("warnings") => deny_warnings = true,
                        other => {
                            return Err(format!(
                                "--deny takes `warnings`, got {:?}",
                                other.unwrap_or("nothing")
                            ))
                        }
                    },
                    "--explain" => {
                        explain = Some(
                            rest.next()
                                .ok_or("--explain takes a rule code or name, e.g. UCRA102")?
                                .to_string(),
                        );
                    }
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown lint flag `{flag}`"))
                    }
                    p if path.is_none() => path = Some(p),
                    p => return Err(format!("lint takes one <model> path, got also `{p}`")),
                }
            }
            if let Some(code) = explain {
                return done(commands::lint_explain(&code));
            }
            commands::lint(path.ok_or("missing <model> path")?, json, deny_warnings)
        }
        Some("impact") => {
            let mut path = None;
            let mut edits = None;
            let mut json = false;
            let mut deny = commands::ImpactDeny::Nothing;
            let mut opts = ucra_lint::ImpactOptions::default();
            let mut strategy = None;
            let mut rest = args[1..].iter().map(String::as_str);
            while let Some(arg) = rest.next() {
                match arg {
                    "--edits" => {
                        edits = Some(
                            rest.next()
                                .ok_or("--edits takes a script path")?
                                .to_string(),
                        );
                    }
                    "--format" => match rest.next() {
                        Some("json") => json = true,
                        Some("text") => json = false,
                        other => {
                            return Err(format!(
                                "--format takes `json` or `text`, got {:?}",
                                other.unwrap_or("nothing")
                            ))
                        }
                    },
                    "--deny" => match rest.next() {
                        Some("warnings") => deny = commands::ImpactDeny::Warnings,
                        Some("escalation") => deny = commands::ImpactDeny::Escalation,
                        other => {
                            return Err(format!(
                                "--deny takes `warnings` or `escalation`, got {:?}",
                                other.unwrap_or("nothing")
                            ))
                        }
                    },
                    "--sensitive" => {
                        opts.sensitive = Some(
                            rest.next()
                                .ok_or("--sensitive takes an object/right glob, e.g. payroll/*")?
                                .to_string(),
                        );
                    }
                    "--mass-flip-pct" => {
                        opts.mass_flip_pct = rest
                            .next()
                            .and_then(|s| s.parse().ok())
                            .filter(|&n| n <= 100)
                            .ok_or("--mass-flip-pct takes a percentage (0-100)")?;
                    }
                    "--strategy" => {
                        strategy = Some(
                            rest.next()
                                .ok_or("--strategy takes a mnemonic")?
                                .parse()
                                .map_err(|e: ucra_core::CoreError| e.to_string())?,
                        );
                    }
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown impact flag `{flag}`"))
                    }
                    p if path.is_none() => path = Some(p),
                    p => return Err(format!("impact takes one <model> path, got also `{p}`")),
                }
            }
            let model = load_model(path.ok_or("missing <model> path")?)?;
            commands::impact(
                &model,
                &edits.ok_or("missing --edits <script> path")?,
                json,
                deny,
                &opts,
                strategy,
            )
        }
        Some("gen") => {
            let mut nodes = None;
            let mut seed = 0;
            let mut inject_smells = false;
            let mut rest = args[1..].iter().map(String::as_str);
            while let Some(arg) = rest.next() {
                match arg {
                    "--seed" => {
                        seed = rest
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or("--seed takes an unsigned integer")?;
                    }
                    "--inject-smells" => inject_smells = true,
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown gen flag `{flag}`"))
                    }
                    n if nodes.is_none() => {
                        nodes = Some(n.parse().map_err(|_| format!("bad node count `{n}`"))?);
                    }
                    n => return Err(format!("gen takes one <nodes> count, got also `{n}`")),
                }
            }
            done(commands::generate(
                nodes.ok_or("missing <nodes> count")?,
                seed,
                inject_smells,
            ))
        }
        Some("bench") => {
            let mut quick = false;
            let mut threads: Option<Vec<usize>> = None;
            let mut backend = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--threads" => {
                        let raw = rest
                            .next()
                            .ok_or("--threads expects a comma-separated list, e.g. 1,2,4")?;
                        let list = raw
                            .split(',')
                            .map(|part| {
                                part.trim()
                                    .parse::<usize>()
                                    .ok()
                                    .filter(|&n| n >= 1)
                                    .ok_or_else(|| {
                                        format!("--threads expects positive integers, got `{part}`")
                                    })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        if list.is_empty() {
                            return Err("--threads expects at least one count".into());
                        }
                        threads = Some(list);
                    }
                    "--backend" => {
                        let raw = rest
                            .next()
                            .ok_or("--backend expects scalar, sse2 or avx2")?;
                        backend = Some(raw.parse().map_err(|()| {
                            format!("unknown backend `{raw}` (expected scalar, sse2 or avx2)")
                        })?);
                    }
                    other => return Err(format!("unknown bench flag `{other}`")),
                }
            }
            done(commands::bench(quick, threads.as_deref(), backend))
        }
        Some("serve") => {
            let mut path = None;
            let mut addr = "127.0.0.1:7171".to_string();
            let mut strategy = None;
            let mut rest = args[1..].iter().map(String::as_str);
            while let Some(arg) = rest.next() {
                match arg {
                    "--addr" => {
                        addr = rest.next().ok_or("--addr takes host:port")?.to_string();
                    }
                    "--strategy" => {
                        strategy = Some(
                            rest.next()
                                .ok_or("--strategy takes a mnemonic")?
                                .parse()
                                .map_err(|e: ucra_core::CoreError| e.to_string())?,
                        );
                    }
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown serve flag `{flag}`"))
                    }
                    p if path.is_none() => path = Some(p),
                    p => return Err(format!("serve takes one [model] path, got also `{p}`")),
                }
            }
            let model = path.map(load_model).transpose()?;
            done(commands::serve(model.as_ref(), &addr, strategy))
        }
        Some("stats") => {
            let (model, rest) = load_model_and_rest(&args[1..])?;
            let strategy = commands::pick_strategy(&model, rest.first().map(String::as_str))?;
            done(commands::stats(&model, strategy))
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

fn load_model_and_rest(args: &[String]) -> Result<(AccessModel, &[String]), String> {
    let path = args.first().ok_or("missing <model> path")?;
    Ok((load_model(path)?, &args[1..]))
}

pub(crate) fn load_model(path: &str) -> Result<AccessModel, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".json") {
        AccessModel::from_json(&content).map_err(|e| e.to_string())
    } else {
        text::parse(&content).map_err(|e| e.to_string())
    }
}

fn take3(args: &[String]) -> Result<[&str; 3], String> {
    if args.len() < 3 {
        return Err(format!("expected 3 arguments, got {}", args.len()));
    }
    Ok([&args[0], &args[1], &args[2]])
}

fn take2(args: &[String]) -> Result<[&str; 2], String> {
    if args.len() < 2 {
        return Err(format!("expected 2 arguments, got {}", args.len()));
    }
    Ok([&args[0], &args[1]])
}
