//! Command implementations for the `ucra` CLI.

use ucra_core::motivating::motivating_example;
use ucra_core::{Resolver, Strategy};
use ucra_store::{text, AccessModel};

/// Resolves the strategy to use: an explicit CLI argument wins, then the
/// model's configured default. Unknown mnemonics are an error with a
/// nearest-legitimate-mnemonic suggestion, never a panic.
pub fn pick_strategy(model: &AccessModel, arg: Option<&str>) -> Result<Strategy, String> {
    match arg {
        Some(text) => parse_strategy(text),
        None => model.default_strategy().ok_or_else(|| {
            "no strategy: pass one (e.g. D-LP-) or add a `strategy` line to the model".to_string()
        }),
    }
}

/// Parses a strategy mnemonic, suggesting the nearest of the 48
/// legitimate instances on failure.
fn parse_strategy(text: &str) -> Result<Strategy, String> {
    text.parse::<Strategy>().map_err(|e| {
        let (suggestion, distance) = ucra_lint::nearest_mnemonic(text);
        if distance <= 2 {
            format!("{e}; did you mean `{suggestion}`?")
        } else {
            format!("{e}; see `ucra lint` for the 48 legitimate instances")
        }
    })
}

/// `ucra demo` — the paper's motivating example, end to end.
pub fn demo() -> Result<(), String> {
    let ex = motivating_example();
    let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
    println!("The motivating example of the paper (Fig. 1):");
    println!("  S2 grants obj/read, S4 grants obj/read, S5 denies obj/read.");
    println!("  User belongs to S2's and S5's spheres via several paths.\n");
    println!("allRights of <User, obj, read> (Table 1):");
    let mut records = resolver
        .all_rights_records(ex.user, ex.obj, ex.read)
        .map_err(|e| e.to_string())?;
    records.sort_by_key(|r| (r.dis, r.mode));
    for rec in &records {
        println!(
            "  dis {}  mode {}  from {}",
            rec.dis,
            rec.mode,
            ex.name(rec.source)
        );
    }
    println!("\nDecision under every strategy family:");
    for mnemonic in [
        "D+LMP+", "D-LMP-", "D-LP+", "D+GP-", "MP-", "GMP-", "P-", "D-MGP+",
    ] {
        let strategy = parse_strategy(mnemonic)?;
        let res = resolver
            .resolve_traced(ex.user, ex.obj, ex.read, strategy)
            .map_err(|e| e.to_string())?;
        println!("  {mnemonic:>7} -> {}   ({res})", res.sign);
    }
    println!("\nSame data, 48 strategies, one algorithm — pick yours with `strategy`.");
    Ok(())
}

/// `ucra check`.
pub fn check(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let sign = model
        .check_with(subject, object, right, strategy)
        .map_err(|e| e.to_string())?;
    println!("{sign}");
    Ok(())
}

/// `ucra trace`.
pub fn trace(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let res = model
        .check_traced(subject, object, right, strategy)
        .map_err(|e| e.to_string())?;
    println!("strategy {strategy}: {res}");
    Ok(())
}

/// `ucra matrix`.
pub fn matrix(
    model: &AccessModel,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let names: Vec<String> = model.subject_names().map(str::to_string).collect();
    println!("effective authorizations for {object}/{right} under {strategy}:");
    for name in names {
        let sign = model
            .check_with(&name, object, right, strategy)
            .map_err(|e| e.to_string())?;
        println!("  {sign} {name}");
    }
    Ok(())
}

/// `ucra strategies`.
pub fn strategies(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
) -> Result<(), String> {
    for strategy in Strategy::all_instances() {
        let sign = model
            .check_with(subject, object, right, strategy)
            .map_err(|e| e.to_string())?;
        println!("{:>7} {sign}", strategy.mnemonic());
    }
    Ok(())
}

/// `ucra explain`.
pub fn explain(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let text = model
        .explain(subject, object, right, strategy)
        .map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// `ucra compare` — the impact report of switching strategies.
pub fn compare(
    model: &AccessModel,
    object: &str,
    right: &str,
    from: Strategy,
    to: Strategy,
) -> Result<(), String> {
    use ucra_core::EffectiveMatrix;
    let o = model.object_id(object).map_err(|e| e.to_string())?;
    let r = model.right_id(right).map_err(|e| e.to_string())?;
    let a = EffectiveMatrix::compute_for_pairs(model.hierarchy(), model.eacm(), from, &[(o, r)])
        .map_err(|e| e.to_string())?;
    let b = EffectiveMatrix::compute_for_pairs(model.hierarchy(), model.eacm(), to, &[(o, r)])
        .map_err(|e| e.to_string())?;
    let diff = a.diff(&b);
    println!(
        "switching {from} -> {to} on {object}/{right} changes {} of {} subjects:",
        diff.changed.len(),
        model.subject_count()
    );
    for d in &diff.changed {
        // Subjects without a name table entry still get a stable,
        // actionable handle (never an anonymous `?`).
        let name = model
            .subject_name(d.subject)
            .map_or_else(|| format!("subject#{}", d.subject.index()), str::to_string);
        println!("  {name}: {} -> {}", d.before, d.after);
    }
    if diff.default_flip() {
        let (before, after) = diff.default_signs;
        println!(
            "note: every object/right pair with no explicit authorization flips {before} -> {after} for all subjects"
        );
    }
    Ok(())
}

/// `ucra dot`.
pub fn dot(model: &AccessModel, object: &str, right: &str) -> Result<(), String> {
    let text = model.to_dot(object, right).map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// `ucra summary`.
pub fn summary(model: &AccessModel) -> Result<(), String> {
    let s = ucra_graph::analysis::summary(model.hierarchy().graph());
    println!("subjects        : {}", s.nodes);
    println!("membership edges: {}", s.edges);
    println!("top-level groups: {}", s.roots);
    println!("individuals     : {}", s.sinks);
    println!("max nesting     : {}", s.depth);
    println!("max group size  : {}", s.max_out_degree);
    println!("max memberships : {}", s.max_in_degree);
    println!("mean group size : {:.2}", s.mean_group_size);
    println!("explicit labels : {}", model.eacm().len());
    match model.default_strategy() {
        Some(st) => println!("strategy        : {st}"),
        None => println!("strategy        : (none configured)"),
    }
    Ok(())
}

/// `ucra sod` — check every declared separation-of-duty constraint.
/// Returns `Ok(true)` when all constraints hold, `Ok(false)` when
/// violations were printed.
pub fn sod(model: &AccessModel, strategy: Strategy) -> Result<bool, String> {
    if model.constraints().is_empty() {
        println!("no constraints declared (add `mutex` lines to the model)");
        return Ok(true);
    }
    let violations = model
        .check_constraints(strategy)
        .map_err(|e| e.to_string())?;
    if violations.is_empty() {
        println!(
            "OK: {} constraint(s) hold under {strategy}",
            model.constraints().len()
        );
        return Ok(true);
    }
    println!("{} violation(s) under {strategy}:", violations.len());
    for v in &violations {
        let held: Vec<String> = v.held.iter().map(|(o, r)| format!("{o}/{r}")).collect();
        println!(
            "  [{}] {} holds {} (allowed: {})",
            v.constraint,
            v.subject,
            held.join(", "),
            v.at_most
        );
    }
    Ok(false)
}

/// `ucra convert`.
pub fn convert(input: &str, output: &str) -> Result<(), String> {
    let model = crate::load_model(input)?;
    let rendered = if output.ends_with(".json") {
        model.to_json()
    } else {
        text::render(&model)
    };
    std::fs::write(output, rendered).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    println!("wrote {output}");
    Ok(())
}

/// `ucra lint` — run the static policy analyser over a model file.
///
/// Returns the process exit code: `0` clean (or infos only), `1` when
/// any error-severity diagnostic is present, `2` when `--deny warnings`
/// upgrades warnings to failures.
pub fn lint(path: &str, json: bool, deny_warnings: bool) -> Result<std::process::ExitCode, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let report = if path.ends_with(".json") {
        let model = AccessModel::from_json(&content).map_err(|e| e.to_string())?;
        ucra_lint::lint_model(&model, None)
    } else {
        ucra_lint::lint_policy_text(&content)
    };
    let rendered = if json {
        report.render_json()
    } else {
        report.render_text()
    };
    print!("{rendered}");
    if !rendered.ends_with('\n') {
        println!();
    }
    Ok(std::process::ExitCode::from(
        report.exit_code(deny_warnings),
    ))
}

/// `ucra lint --explain` — print one rule's full documentation from the
/// registry (no model needed).
pub fn lint_explain(code: &str) -> Result<(), String> {
    let info = ucra_lint::explain(code).ok_or_else(|| {
        let known: Vec<&str> = ucra_lint::codes().iter().map(|i| i.code).collect();
        format!("unknown rule `{code}`; known codes: {}", known.join(", "))
    })?;
    println!("{} ({}) — {}", info.code, info.name, info.severity);
    println!("  {}", info.summary);
    println!();
    println!("{}", info.doc);
    Ok(())
}

/// What `ucra impact --deny` gates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpactDeny {
    /// Fail only on error-severity findings (none are defined today).
    Nothing,
    /// Fail on any warning, like `ucra lint --deny warnings`.
    Warnings,
    /// Fail only on `UCRA102` privilege-escalation findings.
    Escalation,
}

/// `ucra impact` — dry-run an edit script against a model: static blast
/// cones, the exact effective diff via a copy-on-write overlay (the
/// model is never mutated), and the `UCRA1xx` findings.
///
/// Exit codes mirror `ucra lint`: `0` allowed, `1` on error-severity
/// findings, `2` when the `--deny` class is present.
pub fn impact(
    model: &AccessModel,
    edits_path: &str,
    json: bool,
    deny: ImpactDeny,
    opts: &ucra_lint::ImpactOptions,
    strategy: Option<Strategy>,
) -> Result<std::process::ExitCode, String> {
    let edits = std::fs::read_to_string(edits_path)
        .map_err(|e| format!("cannot read `{edits_path}`: {e}"))?;
    let run = ucra_lint::run_impact(model, &edits, strategy, opts)?;
    let rendered = if json {
        ucra_lint::render_impact_json(&run)
    } else {
        ucra_lint::render_impact_text(&run)
    };
    print!("{rendered}");
    if !rendered.ends_with('\n') {
        println!();
    }
    let code = match deny {
        ImpactDeny::Nothing => run.report.exit_code(false),
        ImpactDeny::Warnings => run.report.exit_code(true),
        ImpactDeny::Escalation => {
            if run.report.has_errors() {
                1
            } else if ucra_lint::has_escalation(&run.report) {
                2
            } else {
                0
            }
        }
    };
    Ok(std::process::ExitCode::from(code))
}

/// `ucra gen` — print a synthetic policy in the text format.
///
/// With `inject_smells`, plants one instance of every policy smell the
/// linter detects (and switches the policy to the no-default strategy
/// they fire under), so `ucra gen --inject-smells | ucra lint` has
/// something to find.
pub fn generate(nodes: usize, seed: u64, inject_smells: bool) -> Result<(), String> {
    use ucra_core::{ObjectId, RightId, Sign};
    use ucra_workload::auth::{assign_by_edges, AuthConfig};
    use ucra_workload::layered::{layered, LayeredConfig};

    if nodes == 0 {
        return Err("gen needs at least one node".to_string());
    }
    let mut rng = ucra_workload::rng(seed);
    let layers = 4.min(nodes);
    let config = LayeredConfig {
        layers,
        width: nodes.div_ceil(layers),
        density: 0.3,
    };
    let mut hierarchy = layered(config, &mut rng).hierarchy;
    let (mut eacm, _) = assign_by_edges(&hierarchy, AuthConfig::with_rate(0.08), &mut rng);
    let mut strategy: Strategy = "D-LP-"
        .parse()
        .map_err(|e: ucra_core::CoreError| e.to_string())?;
    if inject_smells {
        let (smelly, _manifest) =
            ucra_workload::smells::inject(&mut hierarchy, &mut eacm, ObjectId(0), RightId(0));
        strategy = smelly;
    }

    let mut model = AccessModel::new();
    let name = |s: ucra_core::SubjectId| format!("s{}", s.index());
    for i in 0..hierarchy.subject_count() {
        model.subject(&format!("s{i}"));
    }
    model.object("obj");
    model.right("read");
    for (group, member) in hierarchy.graph().edges() {
        model
            .add_membership(&name(group), &name(member))
            .map_err(|e| e.to_string())?;
    }
    for (subject, _, _, sign) in eacm.iter() {
        match sign {
            Sign::Pos => model.grant(&name(subject), "obj", "read"),
            Sign::Neg => model.deny(&name(subject), "obj", "read"),
        }
        .map_err(|e| e.to_string())?;
    }
    model.set_default_strategy(strategy);
    print!("{}", text::render(&model));
    Ok(())
}

/// `ucra bench` — run the fused-sweep kernel benchmark and write
/// `BENCH_sweep.json` at the repository root. `threads` overrides the
/// default thread-scaling ladder with an explicit list of worker counts.
/// `backend` pins the process-wide kernel backend before any sweep runs
/// (clamped to the host's support level); the report's
/// `host.kernel_backend` records what actually ran.
pub fn bench(
    quick: bool,
    threads: Option<&[usize]>,
    backend: Option<ucra_core::engine::simd::Backend>,
) -> Result<(), String> {
    if let Some(requested) = backend {
        let selected = ucra_core::engine::simd::pin_backend(requested);
        if selected != requested {
            eprintln!(
                "note: backend {requested} unavailable or already pinned; running {selected}"
            );
        }
    }
    let report = match threads {
        Some(list) => ucra_bench::sweep::run_with_threads(quick, list),
        None => ucra_bench::sweep::run(quick),
    }
    .map_err(|e| e.to_string())?;
    print!("{}", report.render());
    let path = ucra_bench::sweep::write_report(&report).map_err(|e| e.to_string())?;
    println!("wrote {path}");
    Ok(())
}

/// `ucra stats` — batch-check every subject against every labeled
/// `(object, right)` pair through an [`ucra_core::AccessSession`] and
/// print the session's cache and sweep-kernel counters. The batch is
/// then replayed twice through a frozen [`ucra_core::SessionSnapshot`]
/// (the daemon's read path), so the decision-memo counters show a real
/// fill-then-hit cycle instead of zeros.
pub fn stats(model: &AccessModel, strategy: Strategy) -> Result<(), String> {
    let session =
        ucra_core::AccessSession::new(model.hierarchy().clone(), model.eacm().clone(), strategy);
    let pairs = model.eacm().object_right_pairs();
    let queries: Vec<_> = model
        .hierarchy()
        .subjects()
        .flat_map(|s| pairs.iter().map(move |&(o, r)| (s, o, r)))
        .collect();
    let signs = session.check_many(&queries).map_err(|e| e.to_string())?;
    let granted = signs.iter().filter(|&&s| s == ucra_core::Sign::Pos).count();
    // The daemon-path replay: one pass fills the snapshot's memo, the
    // second hits it, mirroring what `GET /stats` reports live.
    let snapshot = session.freeze();
    for _ in 0..2 {
        snapshot
            .check_many_with(&queries, strategy)
            .map_err(|e| e.to_string())?;
    }
    let st = snapshot.stats();
    let fusion = if st.kernel_batches == 0 {
        0.0
    } else {
        st.kernel_columns as f64 / st.kernel_batches as f64
    };
    println!(
        "checked {} queries ({} subjects x {} labeled pairs) under {strategy}: {granted} granted",
        queries.len(),
        model.hierarchy().subject_count(),
        pairs.len()
    );
    println!("queries             : {}", st.queries);
    println!("cache hits          : {}", st.cache_hits);
    println!("sweeps              : {}", st.sweeps);
    println!("memo hits           : {}", st.memo_hits);
    println!("memo misses         : {}", st.memo_misses);
    println!("snapshot epoch      : {}", st.snapshot_epoch);
    println!("snapshots published : {}", st.snapshots_published);
    println!("pair invalidations  : {}", st.pair_invalidations);
    println!("full invalidations  : {}", st.full_invalidations);
    println!("partial repairs     : {}", st.partial_repairs);
    println!("rows repaired       : {}", st.rows_repaired);
    println!("matrix repairs      : {}", st.matrix_repairs);
    println!("matrix repair rows  : {}", st.matrix_repair_rows);
    println!("kernel columns      : {}", st.kernel_columns);
    println!("kernel batches      : {}", st.kernel_batches);
    println!("fusion factor       : {fusion:.2} columns/batch");
    println!("narrow sweeps       : {}", st.narrow_sweeps);
    println!("wide escalations    : {}", st.wide_escalations);
    println!("kernel backend      : {}", st.kernel_backend);
    println!(
        "backend sweeps      : scalar {} / sse2 {} / avx2 {}",
        st.sweeps_scalar, st.sweeps_sse2, st.sweeps_avx2
    );
    println!("kernel arena bytes  : {}", st.kernel_arena_bytes);
    println!("scratch bytes (hwm) : {}", st.scratch_retained_bytes);
    println!("context builds      : {}", st.context_builds);
    println!("parallel dispatches : {}", st.parallel_dispatches);
    println!("serial dispatches   : {}", st.serial_dispatches);
    Ok(())
}

/// `ucra serve`: boot the HTTP/JSON daemon and block until killed.
pub fn serve(
    model: Option<&AccessModel>,
    addr: &str,
    strategy: Option<Strategy>,
) -> Result<(), String> {
    let fallback = strategy.unwrap_or_else(|| "D+LMP+".parse().expect("valid mnemonic"));
    let service = std::sync::Arc::new(match model {
        Some(m) => ucra_service::Service::from_model(m, fallback),
        None => ucra_service::Service::empty(fallback),
    });
    let handle = ucra_service::Server::bind(addr, service)
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    println!("ucra daemon listening on http://{}", handle.addr());
    println!(
        "endpoints: /health /stats /lint /check /check_many /explain /impact /edit/*  (ctrl-c stops)"
    );
    // Serve until the process is killed; the acceptor thread owns the
    // listener, so parking the main thread costs nothing.
    loop {
        std::thread::park();
    }
}
