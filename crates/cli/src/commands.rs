//! Command implementations for the `ucra` CLI.

use ucra_core::motivating::motivating_example;
use ucra_core::{Resolver, Strategy};
use ucra_store::{text, AccessModel};

/// Resolves the strategy to use: an explicit CLI argument wins, then the
/// model's configured default.
pub fn pick_strategy(model: &AccessModel, arg: Option<&str>) -> Result<Strategy, String> {
    match arg {
        Some(text) => text.parse::<Strategy>().map_err(|e| e.to_string()),
        None => model.default_strategy().ok_or_else(|| {
            "no strategy: pass one (e.g. D-LP-) or add a `strategy` line to the model".to_string()
        }),
    }
}

/// `ucra demo` — the paper's motivating example, end to end.
pub fn demo() -> Result<(), String> {
    let ex = motivating_example();
    let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
    println!("The motivating example of the paper (Fig. 1):");
    println!("  S2 grants obj/read, S4 grants obj/read, S5 denies obj/read.");
    println!("  User belongs to S2's and S5's spheres via several paths.\n");
    println!("allRights of <User, obj, read> (Table 1):");
    let mut records = resolver
        .all_rights_records(ex.user, ex.obj, ex.read)
        .map_err(|e| e.to_string())?;
    records.sort_by_key(|r| (r.dis, r.mode));
    for rec in &records {
        println!(
            "  dis {}  mode {}  from {}",
            rec.dis,
            rec.mode,
            ex.name(rec.source)
        );
    }
    println!("\nDecision under every strategy family:");
    for mnemonic in [
        "D+LMP+", "D-LMP-", "D-LP+", "D+GP-", "MP-", "GMP-", "P-", "D-MGP+",
    ] {
        let strategy: Strategy = mnemonic.parse().expect("known mnemonic");
        let res = resolver
            .resolve_traced(ex.user, ex.obj, ex.read, strategy)
            .map_err(|e| e.to_string())?;
        println!("  {mnemonic:>7} -> {}   ({res})", res.sign);
    }
    println!("\nSame data, 48 strategies, one algorithm — pick yours with `strategy`.");
    Ok(())
}

/// `ucra check`.
pub fn check(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let sign = model
        .check_with(subject, object, right, strategy)
        .map_err(|e| e.to_string())?;
    println!("{sign}");
    Ok(())
}

/// `ucra trace`.
pub fn trace(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let res = model
        .check_traced(subject, object, right, strategy)
        .map_err(|e| e.to_string())?;
    println!("strategy {strategy}: {res}");
    Ok(())
}

/// `ucra matrix`.
pub fn matrix(
    model: &AccessModel,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let names: Vec<String> = model.subject_names().map(str::to_string).collect();
    println!("effective authorizations for {object}/{right} under {strategy}:");
    for name in names {
        let sign = model
            .check_with(&name, object, right, strategy)
            .map_err(|e| e.to_string())?;
        println!("  {sign} {name}");
    }
    Ok(())
}

/// `ucra strategies`.
pub fn strategies(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
) -> Result<(), String> {
    for strategy in Strategy::all_instances() {
        let sign = model
            .check_with(subject, object, right, strategy)
            .map_err(|e| e.to_string())?;
        println!("{:>7} {sign}", strategy.mnemonic());
    }
    Ok(())
}

/// `ucra explain`.
pub fn explain(
    model: &AccessModel,
    subject: &str,
    object: &str,
    right: &str,
    strategy: Strategy,
) -> Result<(), String> {
    let text = model
        .explain(subject, object, right, strategy)
        .map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// `ucra compare` — the impact report of switching strategies.
pub fn compare(
    model: &AccessModel,
    object: &str,
    right: &str,
    from: Strategy,
    to: Strategy,
) -> Result<(), String> {
    use ucra_core::EffectiveMatrix;
    let o = model.object_id(object).map_err(|e| e.to_string())?;
    let r = model.right_id(right).map_err(|e| e.to_string())?;
    let a = EffectiveMatrix::compute_for_pairs(model.hierarchy(), model.eacm(), from, &[(o, r)])
        .map_err(|e| e.to_string())?;
    let b = EffectiveMatrix::compute_for_pairs(model.hierarchy(), model.eacm(), to, &[(o, r)])
        .map_err(|e| e.to_string())?;
    let diff = a.diff(&b);
    println!(
        "switching {from} -> {to} on {object}/{right} changes {} of {} subjects:",
        diff.changed.len(),
        model.subject_count()
    );
    for d in &diff.changed {
        let name = model.subject_name(d.subject).unwrap_or("?");
        println!("  {name}: {} -> {}", d.before, d.after);
    }
    if diff.default_flip() {
        let (before, after) = diff.default_signs;
        println!(
            "note: every object/right pair with no explicit authorization flips {before} -> {after} for all subjects"
        );
    }
    Ok(())
}

/// `ucra dot`.
pub fn dot(model: &AccessModel, object: &str, right: &str) -> Result<(), String> {
    let text = model.to_dot(object, right).map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// `ucra summary`.
pub fn summary(model: &AccessModel) -> Result<(), String> {
    let s = ucra_graph::analysis::summary(model.hierarchy().graph());
    println!("subjects        : {}", s.nodes);
    println!("membership edges: {}", s.edges);
    println!("top-level groups: {}", s.roots);
    println!("individuals     : {}", s.sinks);
    println!("max nesting     : {}", s.depth);
    println!("max group size  : {}", s.max_out_degree);
    println!("max memberships : {}", s.max_in_degree);
    println!("mean group size : {:.2}", s.mean_group_size);
    println!("explicit labels : {}", model.eacm().len());
    match model.default_strategy() {
        Some(st) => println!("strategy        : {st}"),
        None => println!("strategy        : (none configured)"),
    }
    Ok(())
}

/// `ucra sod` — check every declared separation-of-duty constraint.
/// Returns `Ok(true)` when all constraints hold, `Ok(false)` when
/// violations were printed.
pub fn sod(model: &AccessModel, strategy: Strategy) -> Result<bool, String> {
    if model.constraints().is_empty() {
        println!("no constraints declared (add `mutex` lines to the model)");
        return Ok(true);
    }
    let violations = model
        .check_constraints(strategy)
        .map_err(|e| e.to_string())?;
    if violations.is_empty() {
        println!(
            "OK: {} constraint(s) hold under {strategy}",
            model.constraints().len()
        );
        return Ok(true);
    }
    println!("{} violation(s) under {strategy}:", violations.len());
    for v in &violations {
        let held: Vec<String> = v.held.iter().map(|(o, r)| format!("{o}/{r}")).collect();
        println!(
            "  [{}] {} holds {} (allowed: {})",
            v.constraint,
            v.subject,
            held.join(", "),
            v.at_most
        );
    }
    Ok(false)
}

/// `ucra convert`.
pub fn convert(input: &str, output: &str) -> Result<(), String> {
    let model = crate::load_model(input)?;
    let rendered = if output.ends_with(".json") {
        model.to_json()
    } else {
        text::render(&model)
    };
    std::fs::write(output, rendered).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    println!("wrote {output}");
    Ok(())
}
