//! End-to-end tests of the `ucra` binary: every command exercised on a
//! real model file, with exit codes and output asserted.

use std::path::PathBuf;
use std::process::{Command, Output};

const POLICY: &str = "\
member S1 S3
member S2 S3
member S2 User
member S3 S5
member S5 User
member S6 S5
member S6 User
grant S2 obj read
deny  S5 obj read
strategy D-LP-
";

fn ucra(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ucra"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_policy(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ucra-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, POLICY).unwrap();
    path
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn demo_runs_and_walks_the_motivating_example() {
    let out = ucra(&["demo"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Table 1"));
    assert!(text.contains("D+LMP+"));
}

#[test]
fn check_uses_model_strategy_and_override() {
    let path = write_policy("check.policy");
    let p = path.to_str().unwrap();
    let out = ucra(&["check", p, "User", "obj", "read"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), "-");
    let out = ucra(&["check", p, "User", "obj", "read", "D+LMP+"]);
    assert_eq!(stdout(&out).trim(), "+");
}

#[test]
fn trace_prints_table3_columns() {
    let path = write_policy("trace.policy");
    let out = ucra(&[
        "trace",
        path.to_str().unwrap(),
        "User",
        "obj",
        "read",
        "D-GMP-",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("c1=1"), "{text}");
    assert!(text.contains("line=9"), "{text}");
}

#[test]
fn matrix_lists_every_subject() {
    let path = write_policy("matrix.policy");
    let out = ucra(&["matrix", path.to_str().unwrap(), "obj", "read"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["S1", "S2", "S3", "S5", "S6", "User"] {
        assert!(text.contains(name), "missing {name} in {text}");
    }
}

#[test]
fn strategies_prints_48_rows() {
    let path = write_policy("strategies.policy");
    let out = ucra(&["strategies", path.to_str().unwrap(), "User", "obj", "read"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 48);
}

#[test]
fn explain_names_the_deciding_policy() {
    let path = write_policy("explain.policy");
    let out = ucra(&[
        "explain",
        path.to_str().unwrap(),
        "User",
        "obj",
        "read",
        "D+LMP+",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Majority"), "{text}");
    assert!(text.contains("S5"), "{text}");
}

#[test]
fn compare_reports_strategy_impact() {
    let path = write_policy("compare.policy");
    let out = ucra(&[
        "compare",
        path.to_str().unwrap(),
        "obj",
        "read",
        "D-LP-",
        "D+LP+",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("changes"), "{text}");
    assert!(text.contains("- -> +") || text.contains("+ -> -"), "{text}");
}

#[test]
fn summary_reports_statistics() {
    let path = write_policy("summary.policy");
    let out = ucra(&["summary", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("subjects        : 6"), "{text}");
    assert!(text.contains("explicit labels : 2"), "{text}");
    assert!(text.contains("strategy        : D-LP-"), "{text}");
}

#[test]
fn dot_emits_graphviz_with_signs() {
    let path = write_policy("dot.policy");
    let out = ucra(&["dot", path.to_str().unwrap(), "obj", "read"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("S2 [+]"), "{text}");
    assert!(text.contains("S5 [-]"), "{text}");
}

#[test]
fn convert_round_trips_json() {
    let path = write_policy("convert.policy");
    let dir = path.parent().unwrap();
    let json = dir.join("model.json");
    let back = dir.join("back.policy");
    assert!(
        ucra(&["convert", path.to_str().unwrap(), json.to_str().unwrap()])
            .status
            .success()
    );
    assert!(
        ucra(&["convert", json.to_str().unwrap(), back.to_str().unwrap()])
            .status
            .success()
    );
    let out = ucra(&["check", back.to_str().unwrap(), "User", "obj", "read"]);
    assert_eq!(stdout(&out).trim(), "-");
}

#[test]
fn sod_passes_and_fails_by_strategy() {
    let dir = std::env::temp_dir().join("ucra-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sod.policy");
    std::fs::write(
        &path,
        "member clerks alice\nmember approvers alice\n\
         grant clerks pay issue\ngrant approvers pay approve\n\
         mutex pay-sod 1 pay/issue pay/approve\nstrategy LP-\n",
    )
    .unwrap();
    // Under LP- alice holds both: violation, non-zero exit, no usage spam.
    let out = ucra(&["sod", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("alice"), "{text}");
    assert!(!stderr(&out).contains("usage:"), "{}", stderr(&out));
    // Under D-LP- the other group's negative default ties each grant at
    // distance 1 and P- denies: alice holds neither privilege — clean.
    let out = ucra(&["sod", path.to_str().unwrap(), "D-LP-"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("OK"), "{}", stdout(&out));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = ucra(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn missing_strategy_is_a_clear_error() {
    let dir = std::env::temp_dir().join("ucra-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("nostrat.policy");
    std::fs::write(&path, "member g u\ngrant g o r\n").unwrap();
    let out = ucra(&["check", path.to_str().unwrap(), "u", "o", "r"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("no strategy"), "{}", stderr(&out));
}

#[test]
fn unreadable_model_is_a_clear_error() {
    let out = ucra(&["check", "/nonexistent/x.policy", "a", "b", "c"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn bad_strategy_argument_is_rejected() {
    let path = write_policy("badstrat.policy");
    let out = ucra(&[
        "check",
        path.to_str().unwrap(),
        "User",
        "obj",
        "read",
        "XYZ",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("mnemonic"), "{}", stderr(&out));
}
