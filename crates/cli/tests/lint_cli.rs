//! End-to-end tests for `ucra lint` and `ucra gen`: exit codes, flag
//! handling, and the stability of the JSON output schema.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ucra(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ucra"))
        .args(args)
        .output()
        .expect("spawn ucra")
}

/// Writes a fixture policy to a unique temp path and returns the path.
fn fixture(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ucra-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("write fixture");
    path
}

const CLEAN: &str = "\
member S1 S3
member S2 S3
member S2 User
member S3 S5
member S5 User
member S6 S5
member S6 User
grant S2 obj read
deny S5 obj read
strategy D-LMP+
";

const WARNING_ONLY: &str = "\
member g m
subject lonely
grant g obj read
strategy D-LP-
";

const BAD_STRATEGY: &str = "\
member g m
grant g obj read
strategy D+LMPX
";

#[test]
fn clean_policy_exits_zero_even_with_deny_warnings() {
    let path = fixture("clean", CLEAN);
    let out = ucra(&["lint", path.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("0 error(s), 0 warning(s), 0 info(s)"),
        "{stdout}"
    );
}

#[test]
fn errors_exit_one() {
    let path = fixture("bad-strategy", BAD_STRATEGY);
    let out = ucra(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("UCRA001"), "{stdout}");
    assert!(stdout.contains("did you mean `D+LMP+`?"), "{stdout}");
}

#[test]
fn warnings_exit_zero_without_and_two_with_deny() {
    let path = fixture("warning", WARNING_ONLY);
    let plain = ucra(&["lint", path.to_str().unwrap()]);
    assert_eq!(plain.status.code(), Some(0), "{plain:?}");
    let denied = ucra(&["lint", path.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(denied.status.code(), Some(2), "{denied:?}");
}

/// The JSON schema is a stable interface: tools parse it. Any change to
/// this snapshot is a breaking change for downstream consumers.
#[test]
fn json_output_schema_snapshot() {
    let path = fixture("json-snapshot", WARNING_ONLY);
    let out = ucra(&["lint", path.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.trim_end(),
        r#"{"version":1,"diagnostics":[{"code":"UCRA010","rule":"orphan-subject","severity":"warning","message":"subject `lonely` is isolated: no groups, no members, and no explicit authorizations","span":{"kind":"subject","subject":"lonely","line":2},"help":"connect it with a `member` directive or delete the subject"}],"kernel":[{"rule":"dead-conflict","subjects":3,"pairs_probed":0,"active_rows_max":0,"active_rows_total":0},{"rule":"redundant-label","subjects":3,"pairs_probed":1,"active_rows_max":2,"active_rows_total":2}],"rules":[{"code":"UCRA000","name":"parse-error","severity":"error","summary":"the policy text cannot be parsed"},{"code":"UCRA001","name":"unknown-strategy","severity":"error","summary":"the strategy mnemonic is not one of the 48 legitimate instances"},{"code":"UCRA002","name":"non-canonical-strategy","severity":"warning","summary":"the strategy is legitimate but not in canonical form"},{"code":"UCRA003","name":"no-strategy","severity":"info","summary":"no conflict-resolution strategy is configured"},{"code":"UCRA010","name":"orphan-subject","severity":"warning","summary":"an isolated subject carries no authorizations at all"},{"code":"UCRA011","name":"inert-group","severity":"warning","summary":"a labeled subject is connected to nothing, so its labels propagate nowhere"},{"code":"UCRA012","name":"fragmented-hierarchy","severity":"info","summary":"the hierarchy splits into several disconnected components"},{"code":"UCRA020","name":"redundant-label","severity":"warning","summary":"an explicit label is implied by propagation under all 48 strategies"},{"code":"UCRA021","name":"dead-conflict","severity":"info","summary":"a conflicting label never changes the outcome under the chosen strategy"},{"code":"UCRA030","name":"default-shadowing","severity":"warning","summary":"subjects whose outcome falls through to the preference fallback"},{"code":"UCRA100","name":"no-op-edit","severity":"warning","summary":"an edit changes no effective authorization"},{"code":"UCRA101","name":"shadowed-edit","severity":"warning","summary":"a later edit in the script overwrites this one"},{"code":"UCRA102","name":"privilege-escalation","severity":"warning","summary":"the script grants access that the base policy denies"},{"code":"UCRA103","name":"mass-strategy-flip","severity":"warning","summary":"a strategy swap flips a large share of the matrix"},{"code":"UCRA104","name":"default-flip","severity":"warning","summary":"a strategy swap flips the label-free default sign"}],"summary":{"errors":0,"warnings":1,"infos":0}}"#
    );
}

#[test]
fn lint_rejects_bad_flags() {
    let path = fixture("flags", CLEAN);
    let bad_format = ucra(&["lint", path.to_str().unwrap(), "--format", "yaml"]);
    assert_ne!(bad_format.status.code(), Some(0));
    let unknown = ucra(&["lint", path.to_str().unwrap(), "--fix"]);
    assert_ne!(unknown.status.code(), Some(0));
}

#[test]
fn unknown_mnemonic_on_check_is_an_error_not_a_panic() {
    let path = fixture("check-mnemonic", CLEAN);
    let out = ucra(&[
        "check",
        path.to_str().unwrap(),
        "User",
        "obj",
        "read",
        "D+LMPX",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("did you mean `D+LMP+`?"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn gen_inject_smells_pipes_into_lint_with_findings() {
    let gen = ucra(&["gen", "12", "--seed", "7", "--inject-smells"]);
    assert_eq!(gen.status.code(), Some(0), "{gen:?}");
    let policy = String::from_utf8(gen.stdout).unwrap();
    let path = fixture("gen-smelly", &policy);
    let lint = ucra(&["lint", path.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(lint.status.code(), Some(2), "{lint:?}");
    let stdout = String::from_utf8(lint.stdout).unwrap();
    for code in [
        "UCRA010", "UCRA011", "UCRA012", "UCRA020", "UCRA021", "UCRA030",
    ] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
}

#[test]
fn gen_without_smells_lints_clean() {
    let gen = ucra(&["gen", "12", "--seed", "7"]);
    assert_eq!(gen.status.code(), Some(0), "{gen:?}");
    let policy = String::from_utf8(gen.stdout).unwrap();
    let path = fixture("gen-clean", &policy);
    let lint = ucra(&["lint", path.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(lint.status.code(), Some(0), "{lint:?}");
}
