//! Soundness of the impact analyzer's static blast cones.
//!
//! The analyzer makes two claims per edit. **Static**: the blast cone —
//! computed from graph reachability and the strategy sign/default
//! algebra alone, no sweep — contains every cell the edit can flip.
//! **Exact**: evaluating the script on the copy-on-write overlay and
//! re-resolving only the cone's columns reproduces the true effective
//! diff. This test pins both against a from-scratch
//! [`EffectiveMatrix::compute_for_pairs`] oracle: random DAGs, label
//! placements over a 2×2 pair universe, and scripts mixing every edit
//! class (subject, membership, authorization, revoke, strategy), under
//! **all 48** base strategies.
//!
//! Soundness of the cone is not a nicety — it is exactly what makes the
//! pruned refresh exact, so a cone that misses a flip would surface
//! here as a final-matrix mismatch too.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::collections::BTreeSet;
use ucra_core::impact::{EditOp, EditScript, ImpactAnalysis};
use ucra_core::{Eacm, EffectiveMatrix, ObjectId, RightId, Sign, Strategy, SubjectDag, SubjectId};

const PAIRS: [(ObjectId, RightId); 4] = [
    (ObjectId(0), RightId(0)),
    (ObjectId(0), RightId(1)),
    (ObjectId(1), RightId(0)),
    (ObjectId(1), RightId(1)),
];

#[derive(Debug, Clone)]
struct RandomBase {
    subjects: usize,
    /// Raw (a, b) pairs, oriented low → high at build time (acyclic).
    edges: Vec<(usize, usize)>,
    /// (subject, pair index, sign).
    labels: Vec<(usize, usize, bool)>,
}

/// One raw edit, lowered to a valid [`EditOp`] against evolving scratch
/// state so the script always applies cleanly (no cycles, no
/// contradictory labels) while still covering idempotent sets, revokes
/// of absent records, and same-strategy swaps.
#[derive(Debug, Clone)]
enum RawEdit {
    AddSubject,
    AddMembership(usize, usize),
    Set(usize, usize, bool),
    Revoke(usize, usize),
    Strategy(usize),
}

fn arb_base() -> impl proptest::strategy::Strategy<Value = RandomBase> {
    (
        2usize..8,
        proptest::collection::vec((0usize..64, 0usize..64), 0..12),
        proptest::collection::vec((0usize..64, 0usize..4, any::<bool>()), 0..8),
    )
        .prop_map(|(subjects, edges, labels)| RandomBase {
            subjects,
            edges,
            labels,
        })
}

fn arb_script() -> impl proptest::strategy::Strategy<Value = Vec<RawEdit>> {
    let op = prop_oneof![
        1 => Just(RawEdit::AddSubject),
        2 => (0usize..64, 0usize..64).prop_map(|(a, b)| RawEdit::AddMembership(a, b)),
        3 => (0usize..64, 0usize..4, any::<bool>()).prop_map(|(s, p, g)| RawEdit::Set(s, p, g)),
        2 => (0usize..64, 0usize..4).prop_map(|(s, p)| RawEdit::Revoke(s, p)),
        2 => (0usize..48).prop_map(RawEdit::Strategy),
    ];
    proptest::collection::vec(op, 1..6)
}

fn build_base(base: &RandomBase) -> (SubjectDag, Eacm) {
    let mut hierarchy = SubjectDag::new();
    let ids: Vec<SubjectId> = (0..base.subjects)
        .map(|_| hierarchy.add_subject())
        .collect();
    for &(a, b) in &base.edges {
        let (a, b) = (a % base.subjects, b % base.subjects);
        if a != b {
            // Low → high keeps the graph acyclic; duplicates rejected.
            let _ = hierarchy.add_membership(ids[a.min(b)], ids[a.max(b)]);
        }
    }
    let mut eacm = Eacm::new();
    for &(s, p, pos) in &base.labels {
        let (o, r) = PAIRS[p];
        // A contradictory second label is rejected; the first one wins.
        let _ = eacm.set(
            ids[s % base.subjects],
            o,
            r,
            if pos { Sign::Pos } else { Sign::Neg },
        );
    }
    (hierarchy, eacm)
}

/// Lowers raw edits into a script every mutator accepts, tracking the
/// same scratch state (subject count, edge set, label map) the overlay
/// will evolve through.
fn lower_script(raw: &[RawEdit], hierarchy: &SubjectDag, eacm: &Eacm) -> EditScript {
    let mut count = hierarchy.subject_count();
    let mut edges: BTreeSet<(usize, usize)> = (0..count)
        .flat_map(|g| {
            hierarchy
                .members_of(SubjectId::from_index(g))
                .iter()
                .map(move |m| (g, m.index()))
        })
        .collect();
    let mut labels: std::collections::BTreeMap<(usize, usize), Sign> = eacm
        .iter()
        .map(|(s, o, r, sign)| {
            let p = PAIRS.iter().position(|&q| q == (o, r)).unwrap();
            ((s.index(), p), sign)
        })
        .collect();
    let instances = Strategy::all_instances();
    let mut ops = Vec::new();
    for edit in raw {
        match *edit {
            RawEdit::AddSubject => {
                count += 1;
                ops.push(EditOp::AddSubject);
            }
            RawEdit::AddMembership(a, b) => {
                let (a, b) = (a % count, b % count);
                if a == b {
                    continue;
                }
                let (g, m) = (a.min(b), a.max(b));
                if !edges.insert((g, m)) {
                    continue;
                }
                ops.push(EditOp::AddMembership {
                    group: SubjectId::from_index(g),
                    member: SubjectId::from_index(m),
                });
            }
            RawEdit::Set(s, p, pos) => {
                let s = s % count;
                let mut sign = if pos { Sign::Pos } else { Sign::Neg };
                // Coerce to the recorded sign so the set is accepted
                // (and sometimes a provable no-op).
                if let Some(&existing) = labels.get(&(s, p)) {
                    sign = existing;
                }
                labels.insert((s, p), sign);
                let (o, r) = PAIRS[p];
                ops.push(EditOp::SetAuthorization {
                    subject: SubjectId::from_index(s),
                    object: o,
                    right: r,
                    sign,
                });
            }
            RawEdit::Revoke(s, p) => {
                let s = s % count;
                labels.remove(&(s, p));
                let (o, r) = PAIRS[p];
                ops.push(EditOp::Revoke {
                    subject: SubjectId::from_index(s),
                    object: o,
                    right: r,
                });
            }
            RawEdit::Strategy(ix) => {
                ops.push(EditOp::SetStrategy {
                    strategy: instances[ix % instances.len()],
                });
            }
        }
    }
    EditScript::new(ops)
}

/// Replays the script directly on plain clones — the independent oracle
/// the overlay's incremental evaluation must match.
fn apply_oracle(hierarchy: &mut SubjectDag, eacm: &mut Eacm, strategy: &mut Strategy, op: &EditOp) {
    match *op {
        EditOp::AddSubject => {
            hierarchy.add_subject();
        }
        EditOp::AddMembership { group, member } => {
            hierarchy
                .add_membership(group, member)
                .expect("lowered scripts only add fresh acyclic edges");
        }
        EditOp::SetAuthorization {
            subject,
            object,
            right,
            sign,
        } => {
            eacm.set(subject, object, right, sign)
                .expect("lowered scripts never contradict");
        }
        EditOp::Revoke {
            subject,
            object,
            right,
        } => {
            eacm.unset(subject, object, right);
        }
        EditOp::SetStrategy { strategy: s } => *strategy = s,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every base strategy (all 48) and a random script over every
    /// edit class: the overlay's final matrix equals the from-scratch
    /// oracle, every per-step oracle flip lies inside that step's
    /// static cone, every whole-script flip lies inside the union
    /// cone, default flips are claimed by some cone, and the overlay
    /// never flushes.
    #[test]
    fn static_cone_contains_every_exact_flip(base in arb_base(), raw in arb_script()) {
        let (hierarchy, eacm) = build_base(&base);
        let script = lower_script(&raw, &hierarchy, &eacm);
        for &base_strategy in &Strategy::all_instances() {
            let analysis =
                ImpactAnalysis::analyze(&hierarchy, &eacm, base_strategy, &script).unwrap();
            prop_assert_eq!(analysis.overlay_stats.full_invalidations, 0);

            // Replay on the oracle, checking each step's flips against
            // that step's static cone.
            let mut h = hierarchy.clone();
            let mut e = eacm.clone();
            let mut s = base_strategy;
            let mut prev =
                EffectiveMatrix::compute_for_pairs(&h, &e, s, &analysis.pairs).unwrap();
            for (ix, op) in script.ops.iter().enumerate() {
                apply_oracle(&mut h, &mut e, &mut s, op);
                let next =
                    EffectiveMatrix::compute_for_pairs(&h, &e, s, &analysis.pairs).unwrap();
                let step = prev.diff(&next);
                let cone = &analysis.cones[ix];
                for flip in &step.changed {
                    prop_assert!(
                        cone.contains(flip.subject, flip.object, flip.right),
                        "edit #{ix} {:?}: flip {:?} escapes its static cone {:?}",
                        op, flip, cone
                    );
                }
                if step.default_flip() {
                    prop_assert!(cone.default_flip,
                        "edit #{ix} {:?} flips the default sign outside its cone", op);
                }
                // The overlay's exact per-step outcome matches the
                // oracle's (same cells, both exact).
                let mut ours: Vec<_> = analysis.outcomes[ix]
                    .flips
                    .iter()
                    .map(|f| (f.subject, f.object, f.right, f.before, f.after))
                    .collect();
                let mut oracle: Vec<_> = step
                    .changed
                    .iter()
                    .map(|f| (f.subject, f.object, f.right, f.before, f.after))
                    .collect();
                ours.sort_unstable();
                oracle.sort_unstable();
                prop_assert_eq!(ours, oracle, "edit #{ix} {:?}", op);
                prev = next;
            }

            // Whole-script: incremental columns == from-scratch oracle.
            prop_assert_eq!(&analysis.final_matrix, &prev);
            for flip in &analysis.diff.changed {
                prop_assert!(analysis.cone_contains(flip.subject, flip.object, flip.right));
            }
            if analysis.diff.default_flip() {
                prop_assert!(analysis.cones.iter().any(|c| c.default_flip));
            }
        }
    }
}
