//! Edge-case and failure-injection tests for the core engines that the
//! random-world property suites are unlikely to hit.

use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::engine::path_enum::{self, PropagateOptions};
use ucra_core::ids::{ObjectId, RightId};
use ucra_core::{
    resolve_histogram, CoreError, DistanceHistogram, Eacm, Mode, Resolver, Sign, Strategy,
    SubjectDag,
};

const O: ObjectId = ObjectId(0);
const R: RightId = RightId(0);

/// A long chain: distances up to 500 — exercises deep propagation and
/// locality extremes far from the toy examples.
#[test]
fn deep_chain_locality_extremes() {
    let mut h = SubjectDag::new();
    let ids = h.add_subjects(501);
    for w in ids.windows(2) {
        h.add_membership(w[0], w[1]).unwrap();
    }
    let mut eacm = Eacm::new();
    eacm.grant(ids[0], O, R).unwrap(); // the root, distance 500
    eacm.deny(ids[400], O, R).unwrap(); // distance 100
    let sink = ids[500];
    let resolver = Resolver::new(&h, &eacm);
    // Most specific: the deny at distance 100.
    assert_eq!(
        resolver
            .resolve(sink, O, R, "LP+".parse().unwrap())
            .unwrap(),
        Sign::Neg
    );
    // Most general: the grant at distance 500.
    assert_eq!(
        resolver
            .resolve(sink, O, R, "GP-".parse().unwrap())
            .unwrap(),
        Sign::Pos
    );
    let hist = resolver.all_rights_histogram(sink, O, R).unwrap();
    assert_eq!(hist.min_dis(), Some(100));
    assert_eq!(hist.max_dis(), Some(500));
}

/// Majority with huge path multiplicities: a 60-diamond chain gives 2⁶⁰
/// votes to the top label; a single opposing vote nearby must lose the
/// majority but win locality.
#[test]
fn exponential_vote_weights() {
    let mut h = SubjectDag::new();
    let mut top = h.add_subject();
    let first = top;
    for _ in 0..60 {
        let l = h.add_subject();
        let rgt = h.add_subject();
        let bottom = h.add_subject();
        h.add_membership(top, l).unwrap();
        h.add_membership(top, rgt).unwrap();
        h.add_membership(l, bottom).unwrap();
        h.add_membership(rgt, bottom).unwrap();
        top = bottom;
    }
    let sink = h.add_subject();
    h.add_membership(top, sink).unwrap();
    let near_deny = h.add_subject();
    h.add_membership(near_deny, sink).unwrap();

    let mut eacm = Eacm::new();
    eacm.grant(first, O, R).unwrap();
    eacm.deny(near_deny, O, R).unwrap();
    let resolver = Resolver::new(&h, &eacm);

    // Majority: 2^60 positive paths vs 1 negative — grant.
    assert_eq!(
        resolver
            .resolve(sink, O, R, "MP-".parse().unwrap())
            .unwrap(),
        Sign::Pos
    );
    // Locality: the deny at distance 1 is most specific.
    assert_eq!(
        resolver
            .resolve(sink, O, R, "LP+".parse().unwrap())
            .unwrap(),
        Sign::Neg
    );
    let hist = resolver.all_rights_histogram(sink, O, R).unwrap();
    assert_eq!(hist.at(121).pos, 1u128 << 60);
}

/// The path-enumeration engine fails cleanly on the same graph where the
/// counting engine succeeds — the documented trade-off.
#[test]
fn engines_diverge_only_in_feasibility_never_in_answers() {
    let mut h = SubjectDag::new();
    let mut top = h.add_subject();
    let first = top;
    for _ in 0..40 {
        let l = h.add_subject();
        let rgt = h.add_subject();
        let bottom = h.add_subject();
        h.add_membership(top, l).unwrap();
        h.add_membership(top, rgt).unwrap();
        h.add_membership(l, bottom).unwrap();
        h.add_membership(rgt, bottom).unwrap();
        top = bottom;
    }
    let mut eacm = Eacm::new();
    eacm.grant(first, O, R).unwrap();
    // Counting: fine.
    let hist = counting::histogram(&h, &eacm, top, O, R, PropagationMode::Both).unwrap();
    assert_eq!(hist.at(80).pos, 1u128 << 40);
    // Path enumeration: clean budget error, not an OOM.
    let err = path_enum::propagate(
        &h,
        &eacm,
        top,
        O,
        R,
        PropagateOptions::with_budget(1_000_000),
    )
    .unwrap_err();
    assert_eq!(err, CoreError::PathBudgetExceeded { budget: 1_000_000 });
}

/// Majority ties at every stratum: the strategy ladder falls all the way
/// through to preference.
#[test]
fn perfectly_balanced_world() {
    let mut h = SubjectDag::new();
    let a = h.add_subject();
    let b = h.add_subject();
    let c = h.add_subject();
    let d = h.add_subject();
    let sink = h.add_subject();
    for p in [a, b] {
        h.add_membership(p, sink).unwrap();
    }
    for (p, q) in [(c, a), (d, b)] {
        h.add_membership(p, q).unwrap();
    }
    let mut eacm = Eacm::new();
    eacm.grant(a, O, R).unwrap();
    eacm.deny(b, O, R).unwrap();
    eacm.deny(c, O, R).unwrap();
    eacm.grant(d, O, R).unwrap();
    let resolver = Resolver::new(&h, &eacm);
    for mnemonic in ["MP+", "LMP+", "GMP+", "MLP+", "MGP+", "LP+", "GP+", "P+"] {
        let res = resolver
            .resolve_traced(sink, O, R, mnemonic.parse().unwrap())
            .unwrap();
        assert_eq!(res.sign, Sign::Pos, "{mnemonic} must fall to P+");
        assert_eq!(res.line.line_number(), 9, "{mnemonic}");
    }
    for mnemonic in ["MP-", "LMP-", "GMP-", "MLP-", "MGP-", "LP-", "GP-", "P-"] {
        let res = resolver
            .resolve_traced(sink, O, R, mnemonic.parse().unwrap())
            .unwrap();
        assert_eq!(res.sign, Sign::Neg, "{mnemonic} must fall to P-");
    }
}

/// Histograms that overflow during default application report the error
/// instead of wrapping.
#[test]
fn default_application_overflow() {
    let mut h = DistanceHistogram::new();
    h.add(1, Mode::Pos, u128::MAX).unwrap();
    h.add(1, Mode::Default, 1).unwrap();
    // Folding the default into pos overflows.
    let err = resolve_histogram(&h, "D+P+".parse::<Strategy>().unwrap()).unwrap_err();
    assert_eq!(err, CoreError::PathCountOverflow);
    // Folding it into neg is fine.
    assert!(resolve_histogram(&h, "D-P+".parse::<Strategy>().unwrap()).is_ok());
    // Dropping it is fine too.
    assert!(resolve_histogram(&h, "P+".parse::<Strategy>().unwrap()).is_ok());
}

/// A subject whose ancestors are entirely labeled (no defaults anywhere)
/// behaves identically under every default rule.
#[test]
fn fully_labeled_cone_is_default_invariant() {
    let mut h = SubjectDag::new();
    let a = h.add_subject();
    let b = h.add_subject();
    let sink = h.add_subject();
    h.add_membership(a, sink).unwrap();
    h.add_membership(b, sink).unwrap();
    let mut eacm = Eacm::new();
    eacm.grant(a, O, R).unwrap();
    eacm.deny(b, O, R).unwrap();
    let resolver = Resolver::new(&h, &eacm);
    for shape in ["LP-", "GMP+", "MP-", "P+"] {
        let base: Strategy = shape.parse().unwrap();
        let plus: Strategy = format!("D+{shape}").parse().unwrap();
        let minus: Strategy = format!("D-{shape}").parse().unwrap();
        let r0 = resolver.resolve(sink, O, R, base).unwrap();
        assert_eq!(resolver.resolve(sink, O, R, plus).unwrap(), r0, "{shape}");
        assert_eq!(resolver.resolve(sink, O, R, minus).unwrap(), r0, "{shape}");
    }
}
