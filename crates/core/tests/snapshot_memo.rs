//! Soundness of the per-snapshot decision memo.
//!
//! A [`SessionSnapshot`] answers memo-first: the first resolution of a
//! `(subject, object, right, strategy)` key runs the real machinery and
//! records the sign; every later hit returns the recorded sign without
//! resolving. That is only sound if the memo can never disagree with
//! the uncached resolver over the frozen state — which this suite pins
//! for random worlds under **all 48** strategy instances, both the
//! filling pass (miss) and the replay pass (hit), and across a
//! republication that carries the memo forward over an unchanged model.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use ucra_core::{
    AccessSession, DecisionMemo, ObjectId, ReadCounters, Resolver, RightId, Sign, Strategy,
    SubjectId,
};

const PAIRS: [(ObjectId, RightId); 4] = [
    (ObjectId(0), RightId(0)),
    (ObjectId(0), RightId(1)),
    (ObjectId(1), RightId(0)),
    (ObjectId(1), RightId(1)),
];

#[derive(Debug, Clone)]
struct RandomBase {
    subjects: usize,
    /// Raw (a, b) pairs, oriented low → high at build time (acyclic).
    edges: Vec<(usize, usize)>,
    /// (subject, pair index, sign).
    labels: Vec<(usize, usize, bool)>,
}

fn arb_base() -> impl proptest::strategy::Strategy<Value = RandomBase> {
    (
        2usize..8,
        proptest::collection::vec((0usize..64, 0usize..64), 0..12),
        proptest::collection::vec((0usize..64, 0usize..4, any::<bool>()), 0..8),
    )
        .prop_map(|(subjects, edges, labels)| RandomBase {
            subjects,
            edges,
            labels,
        })
}

fn build_session(base: &RandomBase) -> AccessSession {
    let mut hierarchy = ucra_core::SubjectDag::new();
    let ids: Vec<SubjectId> = (0..base.subjects)
        .map(|_| hierarchy.add_subject())
        .collect();
    for &(a, b) in &base.edges {
        let (a, b) = (a % base.subjects, b % base.subjects);
        if a != b {
            // Low → high keeps the graph acyclic; duplicates rejected.
            let _ = hierarchy.add_membership(ids[a.min(b)], ids[a.max(b)]);
        }
    }
    let mut eacm = ucra_core::Eacm::new();
    for &(s, p, pos) in &base.labels {
        let (o, r) = PAIRS[p];
        // A contradictory second label is rejected; the first one wins.
        let _ = eacm.set(
            ids[s % base.subjects],
            o,
            r,
            if pos { Sign::Pos } else { Sign::Neg },
        );
    }
    AccessSession::new(hierarchy, eacm, "D-LP-".parse().expect("valid mnemonic"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Memoised snapshot answers — the miss that fills the memo and the
    /// hit that replays it — equal the uncached resolver, for every
    /// subject × pair × all 48 strategies.
    #[test]
    fn memoised_answers_equal_unmemoised_resolution(base in arb_base()) {
        let session = build_session(&base);
        let snapshot = session.freeze();
        let resolver = Resolver::new(snapshot.hierarchy(), snapshot.eacm());
        for strategy in Strategy::all_instances() {
            for s in 0..base.subjects {
                let subject = SubjectId::from_index(s);
                for &(o, r) in &PAIRS {
                    let oracle = resolver
                        .resolve(subject, o, r, strategy)
                        .expect("all names exist");
                    let miss = snapshot
                        .check_with(subject, o, r, strategy)
                        .expect("all names exist");
                    let hit = snapshot
                        .check_with(subject, o, r, strategy)
                        .expect("all names exist");
                    prop_assert_eq!(
                        miss, oracle,
                        "filling pass diverged at s{} {:?} under {}",
                        s, (o, r), strategy
                    );
                    prop_assert_eq!(
                        hit, oracle,
                        "memo replay diverged at s{} {:?} under {}",
                        s, (o, r), strategy
                    );
                }
            }
        }
        // Every key was asked exactly twice: one miss, one hit.
        let stats = snapshot.stats();
        prop_assert_eq!(stats.memo_hits, stats.memo_misses);
        prop_assert_eq!(stats.queries, stats.memo_hits + stats.memo_misses);
    }

    /// Carrying the memo into a successor snapshot of the *same* model
    /// (the service does this on strategy switches and failed edits) is
    /// sound: the successor answers purely from the inherited memo and
    /// still equals the resolver.
    #[test]
    fn a_carried_memo_stays_sound_over_an_unchanged_model(base in arb_base()) {
        let session = build_session(&base);
        let memo = std::sync::Arc::new(DecisionMemo::new());
        let counters = std::sync::Arc::new(ReadCounters::new());
        let first = session.freeze_with(1, std::sync::Arc::clone(&counters), std::sync::Arc::clone(&memo));
        let strategies = Strategy::all_instances();
        // Fill through epoch 1 with a handful of strategies (all 48
        // twice per case would dominate the suite's runtime).
        for strategy in strategies.iter().step_by(7) {
            for s in 0..base.subjects {
                for &(o, r) in &PAIRS {
                    first
                        .check_with(SubjectId::from_index(s), o, r, *strategy)
                        .expect("all names exist");
                }
            }
        }
        let second = session.freeze_with(2, counters, memo);
        let resolver = Resolver::new(second.hierarchy(), second.eacm());
        let before = second.stats();
        for strategy in strategies.iter().step_by(7) {
            for s in 0..base.subjects {
                let subject = SubjectId::from_index(s);
                for &(o, r) in &PAIRS {
                    let got = second
                        .check_with(subject, o, r, *strategy)
                        .expect("all names exist");
                    let oracle = resolver
                        .resolve(subject, o, r, *strategy)
                        .expect("all names exist");
                    prop_assert_eq!(got, oracle);
                }
            }
        }
        let stats = second.stats();
        prop_assert_eq!(stats.snapshot_epoch, 2);
        prop_assert!(
            stats.memo_hits > before.memo_hits,
            "epoch 2 never hit the inherited memo"
        );
        prop_assert_eq!(
            stats.memo_misses, before.memo_misses,
            "epoch 2 re-resolved a carried key"
        );
    }
}
