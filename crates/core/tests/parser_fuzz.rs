//! Fuzz-style property tests for the strategy mnemonic parser: no input
//! may panic, accepted inputs must round-trip, and the accepted language
//! is exactly the 48 canonical mnemonics (modulo whitespace and Unicode
//! sign forms).

use proptest::prelude::*;
use ucra_core::Strategy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parser_never_panics(input in ".{0,24}") {
        let _ = input.parse::<Strategy>();
    }

    /// Strings over the mnemonic alphabet either fail cleanly or parse to
    /// a strategy whose own mnemonic parses back to the same value.
    #[test]
    fn accepted_inputs_round_trip(input in "[DLGMP+\\-⁺⁻ ]{0,10}") {
        if let Ok(s) = input.parse::<Strategy>() {
            let again: Strategy = s.mnemonic().parse().unwrap();
            prop_assert_eq!(s, again);
        }
    }

    /// Every accepted input normalises to one of the 48 instances.
    #[test]
    fn accepted_inputs_are_canonical(input in "[DLGMP+\\-]{0,8}") {
        if let Ok(s) = input.parse::<Strategy>() {
            prop_assert!(Strategy::all_instances().contains(&s), "{}", s);
        }
    }
}

/// The accepted language (over ASCII, no whitespace) is exactly the 48
/// mnemonics: exhaustively enumerate all candidate strings up to the
/// maximum mnemonic length over the alphabet and compare.
#[test]
fn accepted_language_is_exactly_the_48_mnemonics() {
    let alphabet = ['D', 'L', 'G', 'M', 'P', '+', '-'];
    let expected: std::collections::BTreeSet<String> = Strategy::all_instances()
        .into_iter()
        .map(|s| s.mnemonic())
        .collect();
    let mut accepted = std::collections::BTreeSet::new();
    // Longest mnemonic is 6 chars (e.g. D+LMP-). 7^6 ≈ 118k candidates:
    // cheap, exhaustive, and catches both over- and under-acceptance.
    let mut stack: Vec<String> = vec![String::new()];
    while let Some(prefix) = stack.pop() {
        if prefix.parse::<Strategy>().is_ok() {
            accepted.insert(prefix.clone());
        }
        if prefix.len() < 6 {
            for c in alphabet {
                let mut next = prefix.clone();
                next.push(c);
                stack.push(next);
            }
        }
    }
    assert_eq!(accepted, expected);
}
