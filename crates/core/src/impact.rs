//! Change-impact analysis: what does an edit script do to the matrix?
//!
//! Given a base installation (hierarchy + explicit matrix + strategy)
//! and an **edit script** in the session's own edit vocabulary —
//! subject, membership, authorization, revoke, strategy — this module
//! answers two questions, one cheap and sound, one exact:
//!
//! 1. **Static blast cone** ([`EditCone`], per edit): a sound
//!    over-approximation of the `(subject, object, right)` cells the
//!    edit can flip, computed from graph reachability and the strategy
//!    sign/default algebra alone — **no sweep runs**. A membership edge
//!    `group → member` can only flip cells of `member`'s descendant
//!    cone — restricted further to pairs labeled on `group`'s ancestor
//!    cone when the strategy discards defaults (new propagation paths
//!    must pass through the new edge), and to all labeled pairs
//!    otherwise, since the edge also reroutes default records; a
//!    label edit flips only the edited subject's descendant cone on the
//!    edited pair; a strategy swap flips everything only when its
//!    default-only sign changes, otherwise only cells with a labeled
//!    ancestor (bounded here by labeled subjects' descendant cones over
//!    labeled pairs).
//! 2. **Exact effective diff** ([`ImpactAnalysis::diff`]): the script is
//!    evaluated on a **copy-on-write overlay** — a scratch
//!    [`AccessSession`] built from clones of the base hierarchy and
//!    matrix, so the base is never mutated — through the session's
//!    incremental cone-repair mutators (edits repair cached sweep
//!    tables, never flush them). After each edit, only the columns
//!    inside that edit's static cone are re-resolved; soundness of the
//!    cone is exactly what makes this pruning exact, and is pinned by
//!    the `impact_soundness` proptest against a full-recompute oracle
//!    under all 48 strategies.
//!
//! The result reuses [`MatrixDiff`] for the before/after report, plus
//! per-edit [`EditOutcome`]s (which edits were no-ops, which flipped
//! how much) that the static analyser's `UCRA1xx` diagnostics are built
//! on.

use crate::effective::{EffectiveDiff, EffectiveMatrix, MatrixDiff};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;
use crate::session::{AccessSession, SessionStats};
use crate::strategy::Strategy;
use std::collections::BTreeMap;
use ucra_graph::traverse::{cone_topo_order, Direction};

/// One edit in the session's edit vocabulary, by id. Name resolution is
/// the caller's business (`ucra-store` lowers name-based scripts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Declare the next subject (ids are dense: the new subject is
    /// `subject_count()` at the time the op applies).
    AddSubject,
    /// Add a membership edge `group → member`.
    AddMembership {
        /// The group gaining a member.
        group: SubjectId,
        /// The new member.
        member: SubjectId,
    },
    /// Record (or idempotently re-record) an explicit authorization.
    SetAuthorization {
        /// The labeled subject.
        subject: SubjectId,
        /// The labeled object.
        object: ObjectId,
        /// The labeled right.
        right: RightId,
        /// The sign to record.
        sign: Sign,
    },
    /// Remove an explicit authorization if present.
    Revoke {
        /// The target subject.
        subject: SubjectId,
        /// The target object.
        object: ObjectId,
        /// The target right.
        right: RightId,
    },
    /// Switch the conflict-resolution strategy.
    SetStrategy {
        /// The new strategy.
        strategy: Strategy,
    },
}

impl EditOp {
    /// A short human-readable rendering (ids, not names) for reports.
    pub fn describe(&self) -> String {
        match self {
            EditOp::AddSubject => "subject".to_string(),
            EditOp::AddMembership { group, member } => {
                format!("member s{} s{}", group.index(), member.index())
            }
            EditOp::SetAuthorization {
                subject,
                object,
                right,
                sign,
            } => format!(
                "{} s{} {object} {right}",
                if *sign == Sign::Pos { "grant" } else { "deny" },
                subject.index()
            ),
            EditOp::Revoke {
                subject,
                object,
                right,
            } => format!("revoke s{} {object} {right}", subject.index()),
            EditOp::SetStrategy { strategy } => format!("strategy {strategy}"),
        }
    }
}

/// An ordered list of edits, applied first to last.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditScript {
    /// The edits, in application order.
    pub ops: Vec<EditOp>,
}

impl EditScript {
    /// A script over the given ops.
    pub fn new(ops: Vec<EditOp>) -> Self {
        EditScript { ops }
    }
}

/// The static blast cone of one edit: a sound over-approximation of the
/// cells the edit can flip, as a subject set × pair set (either side
/// `None` = unrestricted) plus a default-column flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditCone {
    /// Subjects whose cells can flip; sorted. `None` means every
    /// subject (including ones added later in the script).
    pub subjects: Option<Vec<SubjectId>>,
    /// `(object, right)` pairs whose columns can flip; sorted. `None`
    /// means every pair, including label-free ones.
    pub pairs: Option<Vec<(ObjectId, RightId)>>,
    /// Whether the uniform sign of label-free pairs can flip (only a
    /// strategy swap whose default-only sign differs sets this).
    pub default_flip: bool,
}

impl EditCone {
    /// The provably-empty cone (an edit that cannot flip anything).
    pub fn empty() -> Self {
        EditCone {
            subjects: Some(Vec::new()),
            pairs: Some(Vec::new()),
            default_flip: false,
        }
    }

    /// `true` when the cone is provably empty.
    pub fn is_empty(&self) -> bool {
        !self.default_flip
            && (self.subjects.as_deref() == Some(&[]) || self.pairs.as_deref() == Some(&[]))
    }

    /// Sound membership test: `false` proves the cell cannot flip.
    pub fn contains(&self, subject: SubjectId, object: ObjectId, right: RightId) -> bool {
        let subject_in = self
            .subjects
            .as_ref()
            .is_none_or(|s| s.binary_search(&subject).is_ok());
        let pair_in = self
            .pairs
            .as_ref()
            .is_none_or(|p| p.binary_search(&(object, right)).is_ok());
        subject_in && pair_in
    }

    /// Upper bound on affected cells, clamped to the tracked universe.
    pub fn cell_bound(&self, total_subjects: usize, total_pairs: usize) -> usize {
        if self.is_empty() {
            return 0;
        }
        let s = self.subjects.as_ref().map_or(total_subjects, Vec::len);
        let p = self.pairs.as_ref().map_or(total_pairs, Vec::len);
        (s * p).min(total_subjects * total_pairs)
    }
}

/// What one edit actually did to the overlay, exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditOutcome {
    /// Cells (of subjects that existed before this edit) whose
    /// effective sign flipped at this step. `before`/`after` are the
    /// signs under the strategy in force before/after the step.
    pub flips: Vec<EffectiveDiff>,
    /// Whether this step flipped the label-free default sign.
    pub default_flip: bool,
    /// Columns re-resolved for this step — the cone pairs, i.e. the
    /// exact-diff work the static cone could not rule out.
    pub refreshed_pairs: usize,
    /// For [`EditOp::Revoke`]: whether an explicit record existed.
    pub removed_label: bool,
}

impl EditOutcome {
    /// `true` when the edit provably changed nothing effective.
    pub fn is_noop(&self) -> bool {
        self.flips.is_empty() && !self.default_flip
    }
}

/// The full impact report of one edit script against one base.
#[derive(Debug, Clone)]
pub struct ImpactAnalysis {
    /// The base strategy.
    pub base_strategy: Strategy,
    /// The strategy after the script (differs only via
    /// [`EditOp::SetStrategy`]).
    pub final_strategy: Strategy,
    /// Subjects in the base hierarchy.
    pub base_subjects: usize,
    /// Subjects after the script.
    pub final_subjects: usize,
    /// The tracked `(object, right)` pairs: every pair labeled in the
    /// base plus every pair an edit touches. Sorted. Cells outside
    /// these pairs are label-free on both sides and covered by the
    /// default-sign component of [`ImpactAnalysis::diff`].
    pub pairs: Vec<(ObjectId, RightId)>,
    /// Per-edit static blast cones, index-aligned with the script.
    pub cones: Vec<EditCone>,
    /// Per-edit exact outcomes, index-aligned with the script.
    pub outcomes: Vec<EditOutcome>,
    /// The base effective matrix over the tracked pairs.
    pub base_matrix: EffectiveMatrix,
    /// The overlay's effective matrix after the whole script.
    pub final_matrix: EffectiveMatrix,
    /// Exact base → final diff over the tracked pairs (reused
    /// [`MatrixDiff`]; cells of script-added subjects are reported in
    /// [`ImpactAnalysis::added_grants`] instead, since they have no
    /// "before" side).
    pub diff: MatrixDiff,
    /// `(subject, object, right)` cells of script-added subjects whose
    /// final effective sign is `+`.
    pub added_grants: Vec<(SubjectId, ObjectId, RightId)>,
    /// The overlay session's counters — the proof that evaluation went
    /// through the incremental-repair path (`full_invalidations == 0`)
    /// and how many sweeps/repairs the exact diff cost.
    pub overlay_stats: SessionStats,
}

impl ImpactAnalysis {
    /// Analyzes `script` against the base installation. The base parts
    /// are only read (cloned into the overlay); the caller's session, if
    /// any, is untouched.
    pub fn analyze(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
        script: &EditScript,
    ) -> Result<ImpactAnalysis, CoreError> {
        // The tracked pair universe: labeled in the base, or touched by
        // the script. Everything else is label-free on both sides and
        // fully described by the strategies' default-only signs.
        let mut pairs = eacm.object_right_pairs();
        for op in &script.ops {
            match *op {
                EditOp::SetAuthorization { object, right, .. }
                | EditOp::Revoke { object, right, .. } => pairs.push((object, right)),
                _ => {}
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        let base_subjects = hierarchy.subject_count();
        let mut overlay = AccessSession::new(hierarchy.clone(), eacm.clone(), strategy);

        // Materialise the base columns once, straight from a fused
        // multi-column compute (no per-pair session sweeps); each edit
        // then refreshes only the columns inside its static cone (the
        // cone's soundness is what makes this pruning exact). The
        // overlay session's own sweep cache warms lazily, per edit, over
        // just that edit's cone pairs.
        let base_matrix = EffectiveMatrix::compute_for_pairs(hierarchy, eacm, strategy, &pairs)?;
        let mut cols: BTreeMap<(ObjectId, RightId), Vec<Sign>> = base_matrix.columns().clone();

        let mut cones = Vec::with_capacity(script.ops.len());
        let mut outcomes = Vec::with_capacity(script.ops.len());
        for op in &script.ops {
            let cone = static_cone(overlay.hierarchy(), overlay.eacm(), overlay.strategy(), op);
            let before_strategy = overlay.strategy();
            let mut removed_label = false;
            match *op {
                EditOp::AddSubject => {
                    overlay.add_subject();
                    // A fresh subject is a root with no labels and no
                    // ancestors: it cannot appear in any existing cell's
                    // ancestor cone, so existing columns are untouched —
                    // and its own row resolves from its default record
                    // alone, i.e. to the strategy's default-only sign on
                    // every pair. No sweep needed.
                    let sign = before_strategy.default_only_sign();
                    for col in cols.values_mut() {
                        col.push(sign);
                    }
                }
                EditOp::AddMembership { group, member } => {
                    overlay.add_membership(group, member)?;
                }
                EditOp::SetAuthorization {
                    subject,
                    object,
                    right,
                    sign,
                } => {
                    overlay.set_authorization(subject, object, right, sign)?;
                }
                EditOp::Revoke {
                    subject,
                    object,
                    right,
                } => {
                    removed_label = overlay
                        .unset_authorization(subject, object, right)
                        .is_some();
                }
                EditOp::SetStrategy { strategy } => {
                    overlay.set_strategy(strategy);
                }
            }
            let after_strategy = overlay.strategy();

            // Exact per-edit delta: re-resolve exactly the cone's
            // columns against the repaired overlay and compare.
            let refresh: Vec<(ObjectId, RightId)> = match &cone.pairs {
                Some(p) => p.clone(),
                None => pairs.clone(),
            };
            // Warm this edit's cold cone columns in one batched call —
            // they fuse into multi-column kernel sweeps; already-cached
            // pairs are hits. Row resolution below then never sweeps.
            if !refresh.is_empty() && overlay.hierarchy().subject_count() > 0 {
                let probe = SubjectId::from_index(0);
                let queries: Vec<(SubjectId, ObjectId, RightId)> =
                    refresh.iter().map(|&(o, r)| (probe, o, r)).collect();
                overlay.check_many_with(&queries, after_strategy)?;
            }
            let mut flips = Vec::new();
            for &(o, r) in &refresh {
                let col = cols.get_mut(&(o, r)).expect("refresh pairs are tracked");
                match &cone.subjects {
                    // The cone names the subjects that can flip: resolve
                    // only those rows (soundness makes this exact — any
                    // row outside the cone provably kept its sign).
                    Some(subjects) => {
                        let fresh = overlay.resolve_rows_with(o, r, subjects, after_strategy)?;
                        for (&s, &now) in subjects.iter().zip(&fresh) {
                            let was = col[s.index()];
                            if was != now {
                                flips.push(EffectiveDiff {
                                    subject: s,
                                    object: o,
                                    right: r,
                                    before: was,
                                    after: now,
                                });
                                col[s.index()] = now;
                            }
                        }
                    }
                    None => {
                        let fresh = overlay.resolve_column_with(o, r, after_strategy)?;
                        for (ix, (&was, &now)) in col.iter().zip(&fresh).enumerate() {
                            if was != now {
                                flips.push(EffectiveDiff {
                                    subject: SubjectId::from_index(ix),
                                    object: o,
                                    right: r,
                                    before: was,
                                    after: now,
                                });
                            }
                        }
                        *col = fresh;
                    }
                }
            }
            outcomes.push(EditOutcome {
                flips,
                default_flip: before_strategy.default_only_sign()
                    != after_strategy.default_only_sign(),
                refreshed_pairs: refresh.len(),
                removed_label,
            });
            cones.push(cone);
        }

        let final_strategy = overlay.strategy();
        let final_subjects = overlay.hierarchy().subject_count();
        let final_matrix = EffectiveMatrix::from_columns(final_strategy, cols);
        let diff = base_matrix.diff(&final_matrix);
        let mut added_grants = Vec::new();
        for ix in base_subjects..final_subjects {
            let s = SubjectId::from_index(ix);
            for &(o, r) in &pairs {
                if final_matrix.sign(s, o, r) == Some(Sign::Pos) {
                    added_grants.push((s, o, r));
                }
            }
        }
        Ok(ImpactAnalysis {
            base_strategy: strategy,
            final_strategy,
            base_subjects,
            final_subjects,
            pairs,
            cones,
            outcomes,
            base_matrix,
            final_matrix,
            diff,
            added_grants,
            overlay_stats: overlay.stats(),
        })
    }

    /// Sound membership test against the union of all per-edit cones.
    pub fn cone_contains(&self, subject: SubjectId, object: ObjectId, right: RightId) -> bool {
        self.cones
            .iter()
            .any(|c| c.contains(subject, object, right))
    }

    /// Upper bound on affected cells over the whole script, clamped to
    /// the tracked universe.
    pub fn cone_cell_bound(&self) -> usize {
        let total = self.final_subjects * self.pairs.len();
        self.cones
            .iter()
            .map(|c| c.cell_bound(self.final_subjects, self.pairs.len()))
            .sum::<usize>()
            .min(total)
    }

    /// Cells whose final sign is `+` where the base sign was `-`
    /// (grant-gains of pre-existing subjects).
    pub fn gains(&self) -> impl Iterator<Item = &EffectiveDiff> + '_ {
        self.diff.changed.iter().filter(|d| d.after == Sign::Pos)
    }
}

/// The static cone of one edit against the current overlay state.
/// Pure graph reachability + sign algebra: no sweep runs here.
fn static_cone(hierarchy: &SubjectDag, eacm: &Eacm, strategy: Strategy, op: &EditOp) -> EditCone {
    match *op {
        // A fresh subject is an isolated root: no existing cell's
        // ancestor cone can change, only the new row materialises.
        EditOp::AddSubject => EditCone {
            subjects: Some(vec![SubjectId::from_index(hierarchy.subject_count())]),
            pairs: None,
            default_flip: false,
        },
        // A new edge `group → member` adds propagation paths that all
        // pass through the edge, so only `member`'s descendant cone can
        // observe a change. Which pairs those subjects can flip on
        // depends on the default rule: under `NoDefault` only explicit
        // labels resolve, and the new paths carry only labels recorded
        // on `group`'s ancestor cone (distances from any other labeled
        // subject are unchanged — no new path reaches them). Under
        // `D+`/`D-` the edge also reroutes **default records** (roots
        // above `group` now default into the member's cone at new
        // distances, and the member may stop being a root), which can
        // retip any labeled pair; label-free pairs stay uniform at the
        // default-only sign either way.
        EditOp::AddMembership { group, member } => {
            let mut subjects = cone_topo_order(hierarchy.graph(), &[member], Direction::Down);
            subjects.sort_unstable();
            let mut pairs: Vec<(ObjectId, RightId)>;
            if strategy.default_rule() == crate::strategy::DefaultRule::NoDefault {
                let mut up = cone_topo_order(hierarchy.graph(), &[group], Direction::Up);
                up.sort_unstable();
                pairs = eacm
                    .iter()
                    .filter(|&(s, _, _, _)| up.binary_search(&s).is_ok())
                    .map(|(_, o, r, _)| (o, r))
                    .collect();
            } else {
                pairs = eacm.object_right_pairs();
            }
            pairs.sort_unstable();
            pairs.dedup();
            EditCone {
                subjects: Some(subjects),
                pairs: Some(pairs),
                default_flip: false,
            }
        }
        // A label edit re-derives only the edited subject's descendant
        // cone, on the edited pair (the counting recurrence reads
        // `own(v)` at `v` only). Idempotent re-sets are provably empty.
        EditOp::SetAuthorization {
            subject,
            object,
            right,
            sign,
        } => {
            if eacm.label(subject, object, right) == Some(sign) {
                return EditCone::empty();
            }
            label_cone(hierarchy, subject, object, right)
        }
        // Revoking an absent record is provably empty.
        EditOp::Revoke {
            subject,
            object,
            right,
        } => {
            if eacm.label(subject, object, right).is_none() {
                return EditCone::empty();
            }
            label_cone(hierarchy, subject, object, right)
        }
        // The sign/default algebra: a swap to the same canonical
        // instance flips nothing; a swap that keeps the default-only
        // sign can flip only cells that see at least one label (bounded
        // by labeled subjects' descendant cones over labeled pairs);
        // a swap that changes the default-only sign can flip every
        // cell, including the unmaterialised label-free pairs.
        EditOp::SetStrategy { strategy: new } => {
            if new.canonicalized() == strategy.canonicalized() {
                return EditCone::empty();
            }
            if new.default_only_sign() != strategy.default_only_sign() {
                return EditCone {
                    subjects: None,
                    pairs: None,
                    default_flip: true,
                };
            }
            let seeds: Vec<SubjectId> = {
                let mut s: Vec<SubjectId> = eacm
                    .iter()
                    .filter(|&(s, _, _, _)| hierarchy.contains(s))
                    .map(|(s, _, _, _)| s)
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let mut subjects = cone_topo_order(hierarchy.graph(), &seeds, Direction::Down);
            subjects.sort_unstable();
            let mut pairs = eacm.object_right_pairs();
            pairs.sort_unstable();
            EditCone {
                subjects: Some(subjects),
                pairs: Some(pairs),
                default_flip: false,
            }
        }
    }
}

/// Descendant cone of one labeled subject on one pair. Labels may be
/// pre-recorded for subjects not yet in the hierarchy; until the subject
/// exists no sweep can observe them, so the cone is empty.
fn label_cone(
    hierarchy: &SubjectDag,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
) -> EditCone {
    if !hierarchy.contains(subject) {
        return EditCone::empty();
    }
    let mut subjects = cone_topo_order(hierarchy.graph(), &[subject], Direction::Down);
    subjects.sort_unstable();
    EditCone {
        subjects: Some(subjects),
        pairs: Some(vec![(object, right)]),
        default_flip: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating::motivating_example;

    fn base() -> (SubjectDag, Eacm, Strategy) {
        let ex = motivating_example();
        (ex.hierarchy, ex.eacm, "D+LMP+".parse().unwrap())
    }

    #[test]
    fn empty_script_is_empty_impact() {
        let (h, e, s) = base();
        let a = ImpactAnalysis::analyze(&h, &e, s, &EditScript::default()).unwrap();
        assert!(a.diff.is_empty());
        assert!(a.cones.is_empty());
        assert_eq!(a.base_matrix, a.final_matrix);
        assert_eq!(a.overlay_stats.full_invalidations, 0);
    }

    #[test]
    fn revoke_of_redundant_label_is_exact_noop_with_nonempty_cone() {
        let (h, e, s) = base();
        let ex = motivating_example();
        // Re-granting S2's own sign is idempotent: provably empty cone.
        let idem = EditScript::new(vec![EditOp::SetAuthorization {
            subject: ex.s[1],
            object: ex.obj,
            right: ex.read,
            sign: Sign::Pos,
        }]);
        let a = ImpactAnalysis::analyze(&h, &e, s, &idem).unwrap();
        assert!(a.cones[0].is_empty());
        assert!(a.outcomes[0].is_noop());
        // Revoking a live label has a non-empty static cone even when
        // the exact outcome happens to be a no-op or not.
        let rev = EditScript::new(vec![EditOp::Revoke {
            subject: ex.s[1],
            object: ex.obj,
            right: ex.read,
        }]);
        let a = ImpactAnalysis::analyze(&h, &e, s, &rev).unwrap();
        assert!(!a.cones[0].is_empty());
        assert!(a.outcomes[0].removed_label);
        for f in &a.outcomes[0].flips {
            assert!(a.cones[0].contains(f.subject, f.object, f.right));
        }
    }

    #[test]
    fn strategy_swap_with_default_flip_has_universal_cone() {
        let (h, e, s) = base();
        let script = EditScript::new(vec![EditOp::SetStrategy {
            strategy: "D-LP-".parse().unwrap(),
        }]);
        let a = ImpactAnalysis::analyze(&h, &e, s, &script).unwrap();
        assert!(a.cones[0].default_flip);
        assert!(a.diff.default_flip());
        assert!(a.outcomes[0].default_flip);
    }

    #[test]
    fn added_subject_then_grant_reports_added_grant() {
        let (h, e, s) = base();
        let ex = motivating_example();
        let new = SubjectId::from_index(h.subject_count());
        let script = EditScript::new(vec![
            EditOp::AddSubject,
            EditOp::SetAuthorization {
                subject: new,
                object: ex.obj,
                right: ex.read,
                sign: Sign::Pos,
            },
        ]);
        let a = ImpactAnalysis::analyze(&h, &e, s, &script).unwrap();
        assert_eq!(a.final_subjects, a.base_subjects + 1);
        assert!(a.added_grants.contains(&(new, ex.obj, ex.read)));
        // Existing subjects' cells are untouched by an isolated new
        // subject plus its own label.
        assert!(a.diff.changed.is_empty());
    }

    #[test]
    fn base_parts_are_never_mutated() {
        let (h, e, s) = base();
        let ex = motivating_example();
        let before_e = e.clone();
        let (subjects, memberships) = (h.subject_count(), h.membership_count());
        let script = EditScript::new(vec![
            EditOp::AddSubject,
            EditOp::SetStrategy {
                strategy: "GMP-".parse().unwrap(),
            },
            EditOp::Revoke {
                subject: ex.s[4],
                object: ex.obj,
                right: ex.read,
            },
        ]);
        let a = ImpactAnalysis::analyze(&h, &e, s, &script).unwrap();
        assert_eq!(h.subject_count(), subjects);
        assert_eq!(h.membership_count(), memberships);
        assert_eq!(e, before_e);
        assert_eq!(a.overlay_stats.full_invalidations, 0);
    }
}
