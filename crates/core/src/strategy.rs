//! The conflict-resolution strategy framework (§2 of the paper).
//!
//! A *strategy instance* fixes the four parameters of Algorithm
//! `Resolve()` (Fig. 4): the Default rule (`dRule`), the Locality rule
//! (`lRule`), the Majority rule (`mRule`) and the Preference rule
//! (`pRule`). §2.2 derives exactly **48 legitimate instances** from the
//! ten combined strategies DLP, DLMP, DP, DMLP, DMP (Chinaei & Zhang) and
//! LP, LMP, P, MLP, MP (this paper's extension): the Preference policy is
//! always last, Default (when present) always first, and Locality/Majority
//! are optional in either order.
//!
//! The raw parameter space has 3·3·3·2 = 54 points; the 6-point surplus is
//! the observation that when `lRule = identity()` the locality filter does
//! nothing, so applying Majority *before* or *after* it is the same
//! strategy. [`Strategy::new`] canonicalises that case to `Before`, making
//! strategies with equal behaviour compare equal and making
//! [`Strategy::all_instances`] enumerate exactly the paper's 48.
//!
//! Strategies have a mnemonic syntax identical to the paper's:
//! `D+LMP-` is *default-positive, locality (most specific), then majority,
//! then preference-negative*; `GMP+` is *globality, then majority, then
//! preference-positive* with no default; `P-` is pure closed-world
//! preference. [`Strategy`] implements [`std::str::FromStr`] and
//! [`std::fmt::Display`] for this syntax. Unicode superscripts used in the
//! paper's tables (`D⁺LMP⁻`) are accepted on input.

use crate::error::CoreError;
use crate::mode::Sign;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// `dRule` — what happens to the `d` placeholders on unlabeled root
/// ancestors (Fig. 4 Lines 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DefaultRule {
    /// `"+"` — defaults become positive (open systems).
    Pos,
    /// `"-"` — defaults become negative (closed systems, e.g. military).
    Neg,
    /// `"0"` — no default policy: `d` rows are discarded.
    NoDefault,
}

/// `lRule` — which distance stratum of `allRights` survives the locality
/// filter (Fig. 4 Line 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LocalityRule {
    /// `min()` — the most specific authorization takes precedence
    /// (paper mnemonic letter `L`).
    MostSpecific,
    /// `max()` — the most general authorization takes precedence
    /// ("globality", mnemonic letter `G`).
    MostGeneral,
    /// `identity()` — no locality policy; every row passes.
    Identity,
}

/// `mRule` — whether the Majority vote is taken, and whether it is counted
/// before or after the locality filter (Fig. 4 Lines 4–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MajorityRule {
    /// Count over all of `allRights` (strategy shapes `M…L…` / `M…G…` /
    /// plain `M`).
    Before,
    /// Apply the locality filter first, count over the surviving stratum
    /// (strategy shapes `…LM…` / `…GM…`).
    After,
    /// No majority policy.
    Skip,
}

/// A complete, canonical strategy instance: the four parameters of
/// `Resolve()`.
///
/// Use [`Strategy::new`] (which canonicalises), the mnemonic parser
/// (`"D+LMP-".parse()`), or [`Strategy::all_instances`].
///
/// ```
/// use ucra_core::{DefaultRule, LocalityRule, MajorityRule, Sign, Strategy};
///
/// let s: Strategy = "D+LMP-".parse().unwrap();
/// assert_eq!(s.default_rule(), DefaultRule::Pos);
/// assert_eq!(s.locality_rule(), LocalityRule::MostSpecific);
/// assert_eq!(s.majority_rule(), MajorityRule::After);
/// assert_eq!(s.preference_rule(), Sign::Neg);
/// assert_eq!(s.to_string(), "D+LMP-");
/// assert_eq!(Strategy::all_instances().len(), 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Strategy {
    default: DefaultRule,
    locality: LocalityRule,
    majority: MajorityRule,
    preference: Sign,
}

impl Strategy {
    /// Builds a strategy from raw parameters, canonicalising the one
    /// redundancy in the parameter space: with `lRule = identity()` the
    /// locality filter is a no-op, so `Majority::After` ≡
    /// `Majority::Before` and is normalised to `Before`.
    pub fn new(
        default: DefaultRule,
        locality: LocalityRule,
        majority: MajorityRule,
        preference: Sign,
    ) -> Strategy {
        let majority = match (locality, majority) {
            (LocalityRule::Identity, MajorityRule::After) => MajorityRule::Before,
            (_, m) => m,
        };
        Strategy {
            default,
            locality,
            majority,
            preference,
        }
    }

    /// Builds a strategy **without** canonicalising — exactly what a
    /// derived deserialiser can produce from persisted data, since serde
    /// fills the fields directly and never calls [`Strategy::new`].
    /// Exists so validation layers (e.g. `ucra_lint`) can exercise that
    /// surface; always prefer [`Strategy::new`].
    #[doc(hidden)]
    pub fn from_raw_parts(
        default: DefaultRule,
        locality: LocalityRule,
        majority: MajorityRule,
        preference: Sign,
    ) -> Strategy {
        Strategy {
            default,
            locality,
            majority,
            preference,
        }
    }

    /// The canonical twin of this instance: identical behaviour, equal to
    /// the [`Strategy::new`] result for the same parameters. A no-op for
    /// strategies built through the public constructors.
    #[must_use]
    pub fn canonicalized(&self) -> Strategy {
        Strategy::new(self.default, self.locality, self.majority, self.preference)
    }

    /// `true` when this instance is in canonical form (always the case
    /// unless it was deserialised from non-canonical raw parameters).
    pub fn is_canonical(&self) -> bool {
        *self == self.canonicalized()
    }

    /// The Default rule.
    pub fn default_rule(&self) -> DefaultRule {
        self.default
    }

    /// The Locality rule.
    pub fn locality_rule(&self) -> LocalityRule {
        self.locality
    }

    /// The Majority rule (canonical: never `After` with `Identity`
    /// locality).
    pub fn majority_rule(&self) -> MajorityRule {
        self.majority
    }

    /// The Preference rule.
    pub fn preference_rule(&self) -> Sign {
        self.preference
    }

    /// The sign this strategy resolves any **non-empty pure-default**
    /// histogram to (every record `Default`, at any mix of distances).
    ///
    /// After the Default rule fires, such a histogram is uniformly
    /// positive, uniformly negative, or empty (`NoDefault` discards the
    /// `d` rows): the Locality filter keeps a stratum of the same sign,
    /// a Majority vote over one sign is unanimous, and an empty stream
    /// falls through to Preference. So the result depends only on
    /// `dRule`/`pRule` — this is the closed form the sparsity-pruned
    /// kernel uses for every subject outside a column's label cone.
    pub fn default_only_sign(&self) -> Sign {
        match self.default {
            DefaultRule::Pos => Sign::Pos,
            DefaultRule::Neg => Sign::Neg,
            DefaultRule::NoDefault => self.preference,
        }
    }

    /// All 48 legitimate strategy instances, in a stable order: grouped by
    /// Default rule (`+`, `-`, none), then by policy shape, then by
    /// preference sign.
    pub fn all_instances() -> Vec<Strategy> {
        let mut out = Vec::with_capacity(48);
        for default in [DefaultRule::Pos, DefaultRule::Neg, DefaultRule::NoDefault] {
            for (locality, majority) in [
                (LocalityRule::MostSpecific, MajorityRule::Skip), // …LP…
                (LocalityRule::MostSpecific, MajorityRule::After), // …LMP…
                (LocalityRule::MostSpecific, MajorityRule::Before), // …MLP…
                (LocalityRule::MostGeneral, MajorityRule::Skip),  // …GP…
                (LocalityRule::MostGeneral, MajorityRule::After), // …GMP…
                (LocalityRule::MostGeneral, MajorityRule::Before), // …MGP…
                (LocalityRule::Identity, MajorityRule::Skip),     // …P…
                (LocalityRule::Identity, MajorityRule::Before),   // …MP…
            ] {
                for preference in [Sign::Pos, Sign::Neg] {
                    out.push(Strategy::new(default, locality, majority, preference));
                }
            }
        }
        debug_assert_eq!(out.len(), 48);
        out
    }

    /// The paper's mnemonic for this instance, e.g. `D+LMP-`, `GMP+`,
    /// `P-`.
    pub fn mnemonic(&self) -> String {
        let mut s = String::new();
        match self.default {
            DefaultRule::Pos => s.push_str("D+"),
            DefaultRule::Neg => s.push_str("D-"),
            DefaultRule::NoDefault => {}
        }
        let locality_letter = match self.locality {
            LocalityRule::MostSpecific => Some('L'),
            LocalityRule::MostGeneral => Some('G'),
            LocalityRule::Identity => None,
        };
        match (self.majority, locality_letter) {
            (MajorityRule::Skip, Some(l)) => s.push(l),
            (MajorityRule::Skip, None) => {}
            (MajorityRule::Before, Some(l)) => {
                s.push('M');
                s.push(l);
            }
            (MajorityRule::Before, None) => s.push('M'),
            (MajorityRule::After, Some(l)) => {
                s.push(l);
                s.push('M');
            }
            (MajorityRule::After, None) => {
                // Only reachable through a non-canonical deserialised
                // instance (`from_raw_parts`): with identity locality the
                // filter is a no-op, so After behaves as Before — render
                // the canonical twin instead of aborting on display.
                s.push('M');
            }
        }
        s.push('P');
        s.push(self.preference.symbol());
        s
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// The ten *combined strategies* of the paper's Fig. 2 (extended in
/// §2.2): a shape abstracts over the per-policy modes and names which
/// policies participate, in which order.
///
/// Chinaei & Zhang's five shapes (with Default) plus this paper's five
/// default-free shapes. Each shape generates 2, 4 or 8 instances
/// depending on how many of its policies are two-moded; together they
/// generate exactly the 48 instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the paper's mnemonics, documented above
pub enum StrategyShape {
    Dlp,
    Dlmp,
    Dp,
    Dmlp,
    Dmp,
    Lp,
    Lmp,
    P,
    Mlp,
    Mp,
}

impl StrategyShape {
    /// All ten shapes, Fig. 2 order then the §2.2 extension.
    pub fn all() -> [StrategyShape; 10] {
        use StrategyShape::*;
        [Dlp, Dlmp, Dp, Dmlp, Dmp, Lp, Lmp, P, Mlp, Mp]
    }

    /// The shape's mnemonic skeleton, e.g. `DLMP`.
    pub fn name(self) -> &'static str {
        match self {
            StrategyShape::Dlp => "DLP",
            StrategyShape::Dlmp => "DLMP",
            StrategyShape::Dp => "DP",
            StrategyShape::Dmlp => "DMLP",
            StrategyShape::Dmp => "DMP",
            StrategyShape::Lp => "LP",
            StrategyShape::Lmp => "LMP",
            StrategyShape::P => "P",
            StrategyShape::Mlp => "MLP",
            StrategyShape::Mp => "MP",
        }
    }

    /// `true` for the five shapes that include the Default policy
    /// (Chinaei & Zhang's original framework).
    pub fn has_default(self) -> bool {
        matches!(
            self,
            StrategyShape::Dlp
                | StrategyShape::Dlmp
                | StrategyShape::Dp
                | StrategyShape::Dmlp
                | StrategyShape::Dmp
        )
    }

    /// The strategy instances this shape generates (§2.2's counting:
    /// 8 for D?L?P?, 8 for D?L?M P?, 8 for D?ML?P?, 4 for D?P?/D?MP?,
    /// 4 for L?P?/L?MP?/ML?P?, 2 for P?/MP?).
    pub fn instances(self) -> Vec<Strategy> {
        let defaults: &[DefaultRule] = if self.has_default() {
            &[DefaultRule::Pos, DefaultRule::Neg]
        } else {
            &[DefaultRule::NoDefault]
        };
        let localities: &[LocalityRule] = match self {
            StrategyShape::Dp | StrategyShape::P | StrategyShape::Dmp | StrategyShape::Mp => {
                &[LocalityRule::Identity]
            }
            _ => &[LocalityRule::MostSpecific, LocalityRule::MostGeneral],
        };
        let majority = match self {
            StrategyShape::Dlp | StrategyShape::Dp | StrategyShape::Lp | StrategyShape::P => {
                MajorityRule::Skip
            }
            StrategyShape::Dlmp | StrategyShape::Lmp => MajorityRule::After,
            StrategyShape::Dmlp | StrategyShape::Dmp | StrategyShape::Mlp | StrategyShape::Mp => {
                MajorityRule::Before
            }
        };
        let mut out = Vec::new();
        for &d in defaults {
            for &l in localities {
                for p in [Sign::Pos, Sign::Neg] {
                    out.push(Strategy::new(d, l, majority, p));
                }
            }
        }
        out
    }
}

impl Strategy {
    /// The combined-strategy shape this instance belongs to.
    pub fn shape(&self) -> StrategyShape {
        let with_default = self.default != DefaultRule::NoDefault;
        match (with_default, self.locality, self.majority) {
            (true, LocalityRule::Identity, MajorityRule::Skip) => StrategyShape::Dp,
            (true, LocalityRule::Identity, _) => StrategyShape::Dmp,
            (true, _, MajorityRule::Skip) => StrategyShape::Dlp,
            (true, _, MajorityRule::After) => StrategyShape::Dlmp,
            (true, _, MajorityRule::Before) => StrategyShape::Dmlp,
            (false, LocalityRule::Identity, MajorityRule::Skip) => StrategyShape::P,
            (false, LocalityRule::Identity, _) => StrategyShape::Mp,
            (false, _, MajorityRule::Skip) => StrategyShape::Lp,
            (false, _, MajorityRule::After) => StrategyShape::Lmp,
            (false, _, MajorityRule::Before) => StrategyShape::Mlp,
        }
    }
}

impl FromStr for Strategy {
    type Err = CoreError;

    /// Parses the paper's mnemonics. ASCII `+`/`-` and the Unicode
    /// superscripts `⁺`/`⁻` used in the paper's tables are both accepted.
    fn from_str(input: &str) -> Result<Strategy, CoreError> {
        let bad = |reason: &'static str| CoreError::BadMnemonic {
            input: input.to_string(),
            reason,
        };
        // Normalise superscript signs to ASCII.
        let text: String = input
            .trim()
            .chars()
            .map(|c| match c {
                '⁺' => '+',
                '⁻' | '−' => '-',
                other => other,
            })
            .collect();
        let mut chars = text.chars().peekable();

        let default = if chars.peek() == Some(&'D') {
            chars.next();
            match chars.next() {
                Some('+') => DefaultRule::Pos,
                Some('-') => DefaultRule::Neg,
                _ => return Err(bad("`D` must be followed by `+` or `-`")),
            }
        } else {
            DefaultRule::NoDefault
        };

        // Middle section: one of "", "L", "G", "M", "ML", "MG", "LM", "GM".
        let mut middle = String::new();
        while matches!(chars.peek(), Some('L' | 'G' | 'M')) {
            middle.push(chars.next().expect("peeked"));
        }
        let (locality, majority) = match middle.as_str() {
            "" => (LocalityRule::Identity, MajorityRule::Skip),
            "L" => (LocalityRule::MostSpecific, MajorityRule::Skip),
            "G" => (LocalityRule::MostGeneral, MajorityRule::Skip),
            "M" => (LocalityRule::Identity, MajorityRule::Before),
            "ML" => (LocalityRule::MostSpecific, MajorityRule::Before),
            "MG" => (LocalityRule::MostGeneral, MajorityRule::Before),
            "LM" => (LocalityRule::MostSpecific, MajorityRule::After),
            "GM" => (LocalityRule::MostGeneral, MajorityRule::After),
            _ => return Err(bad("policy letters must form L, G, M, ML, MG, LM or GM")),
        };

        if chars.next() != Some('P') {
            return Err(bad("expected `P` before the preference sign"));
        }
        let preference = match chars.next() {
            Some('+') => Sign::Pos,
            Some('-') => Sign::Neg,
            _ => return Err(bad("`P` must be followed by `+` or `-`")),
        };
        if chars.next().is_some() {
            return Err(bad("trailing characters after the preference sign"));
        }
        Ok(Strategy::new(default, locality, majority, preference))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_48_distinct_instances() {
        let all = Strategy::all_instances();
        assert_eq!(all.len(), 48);
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), 48);
    }

    #[test]
    fn raw_parts_expose_the_non_canonical_surface() {
        let raw = Strategy::from_raw_parts(
            DefaultRule::Pos,
            LocalityRule::Identity,
            MajorityRule::After,
            Sign::Pos,
        );
        assert!(!raw.is_canonical());
        assert_eq!(raw.majority_rule(), MajorityRule::After);
        // Displaying the non-canonical twin must not abort: it renders
        // the behaviourally identical canonical mnemonic.
        assert_eq!(raw.mnemonic(), "D+MP+");
        let canon = raw.canonicalized();
        assert!(canon.is_canonical());
        assert_eq!(canon.majority_rule(), MajorityRule::Before);
        assert_eq!(canon.mnemonic(), "D+MP+");
        // Everything built through the public constructor is canonical.
        for s in Strategy::all_instances() {
            assert!(s.is_canonical());
        }
    }

    #[test]
    fn canonicalisation_collapses_identity_after() {
        let a = Strategy::new(
            DefaultRule::Pos,
            LocalityRule::Identity,
            MajorityRule::After,
            Sign::Pos,
        );
        let b = Strategy::new(
            DefaultRule::Pos,
            LocalityRule::Identity,
            MajorityRule::Before,
            Sign::Pos,
        );
        assert_eq!(a, b);
        assert_eq!(a.majority_rule(), MajorityRule::Before);
    }

    #[test]
    fn raw_space_collapses_to_48() {
        let mut set = HashSet::new();
        for d in [DefaultRule::Pos, DefaultRule::Neg, DefaultRule::NoDefault] {
            for l in [
                LocalityRule::MostSpecific,
                LocalityRule::MostGeneral,
                LocalityRule::Identity,
            ] {
                for m in [
                    MajorityRule::Before,
                    MajorityRule::After,
                    MajorityRule::Skip,
                ] {
                    for p in [Sign::Pos, Sign::Neg] {
                        set.insert(Strategy::new(d, l, m, p));
                    }
                }
            }
        }
        assert_eq!(set.len(), 48);
    }

    #[test]
    fn mnemonics_are_unique_and_round_trip() {
        let mut seen = HashSet::new();
        for s in Strategy::all_instances() {
            let m = s.mnemonic();
            assert!(seen.insert(m.clone()), "duplicate mnemonic {m}");
            let parsed: Strategy = m.parse().unwrap();
            assert_eq!(parsed, s, "mnemonic {m} did not round-trip");
        }
    }

    #[test]
    fn paper_mnemonics_parse_to_expected_parameters() {
        let s: Strategy = "D+LMP-".parse().unwrap();
        assert_eq!(s.default_rule(), DefaultRule::Pos);
        assert_eq!(s.locality_rule(), LocalityRule::MostSpecific);
        assert_eq!(s.majority_rule(), MajorityRule::After);
        assert_eq!(s.preference_rule(), Sign::Neg);

        let s: Strategy = "MGP+".parse().unwrap();
        assert_eq!(s.default_rule(), DefaultRule::NoDefault);
        assert_eq!(s.locality_rule(), LocalityRule::MostGeneral);
        assert_eq!(s.majority_rule(), MajorityRule::Before);
        assert_eq!(s.preference_rule(), Sign::Pos);

        let s: Strategy = "P-".parse().unwrap();
        assert_eq!(s.default_rule(), DefaultRule::NoDefault);
        assert_eq!(s.locality_rule(), LocalityRule::Identity);
        assert_eq!(s.majority_rule(), MajorityRule::Skip);
        assert_eq!(s.preference_rule(), Sign::Neg);
    }

    #[test]
    fn unicode_superscripts_are_accepted() {
        let a: Strategy = "D⁺LMP⁻".parse().unwrap();
        let b: Strategy = "D+LMP-".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mp_parses_with_identity_locality() {
        let s: Strategy = "D-MP-".parse().unwrap();
        assert_eq!(s.locality_rule(), LocalityRule::Identity);
        assert_eq!(s.majority_rule(), MajorityRule::Before);
        assert_eq!(s.mnemonic(), "D-MP-");
    }

    #[test]
    fn rejects_malformed_mnemonics() {
        for bad in [
            "",
            "D",
            "DP+",
            "D+",
            "D+P",
            "XP+",
            "D+LLP-",
            "D+MLMP-",
            "LMP",
            "P",
            "P0",
            "D+LMP-extra",
            "LPM+",
            "MM P+",
            "GLP+",
        ] {
            assert!(
                bad.parse::<Strategy>().is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn default_only_sign_matches_resolution_on_pure_default_histograms() {
        use crate::engine::DistanceHistogram;
        use crate::mode::Mode;
        use crate::resolve::resolve_histogram;
        // Pure-default histograms of several shapes: single stratum,
        // multiple strata, large counts.
        let shapes: [&[(u32, u128)]; 3] = [&[(0, 1)], &[(1, 2), (3, 5)], &[(7, 1 << 40)]];
        for strata in shapes {
            let mut h = DistanceHistogram::new();
            for &(d, count) in strata {
                h.add(d, Mode::Default, count).unwrap();
            }
            for s in Strategy::all_instances() {
                assert_eq!(
                    resolve_histogram(&h, s).unwrap().sign,
                    s.default_only_sign(),
                    "strategy {s}"
                );
            }
        }
    }

    #[test]
    fn whitespace_is_trimmed() {
        let s: Strategy = "  GP+ ".parse().unwrap();
        assert_eq!(s.mnemonic(), "GP+");
    }

    #[test]
    fn shapes_partition_the_48_instances_with_the_papers_counts() {
        // §2.2: DLP, DLMP, DMLP generate 8 instances each; DP, DMP 4
        // each (32 with default); LP, LMP, MLP 4 each; P, MP 2 each
        // (16 default-free).
        use StrategyShape::*;
        let expected_counts = [
            (Dlp, 8),
            (Dlmp, 8),
            (Dmlp, 8),
            (Dp, 4),
            (Dmp, 4),
            (Lp, 4),
            (Lmp, 4),
            (Mlp, 4),
            (P, 2),
            (Mp, 2),
        ];
        let mut total = 0;
        let mut seen = HashSet::new();
        for (shape, count) in expected_counts {
            let instances = shape.instances();
            assert_eq!(instances.len(), count, "shape {}", shape.name());
            for s in instances {
                assert_eq!(s.shape(), shape, "{s} classifies back to its shape");
                assert!(seen.insert(s), "{s} generated by two shapes");
                total += 1;
            }
        }
        assert_eq!(total, 48);
        // And the flat enumeration agrees with the union.
        for s in Strategy::all_instances() {
            assert!(seen.contains(&s));
        }
    }

    #[test]
    fn shape_names_and_default_flag() {
        assert_eq!(StrategyShape::Dlmp.name(), "DLMP");
        assert!(StrategyShape::Dlmp.has_default());
        assert!(!StrategyShape::Mlp.has_default());
        assert_eq!(StrategyShape::all().len(), 10);
    }

    #[test]
    fn all_instances_match_papers_ten_shapes() {
        // Count instances per shape: DLP/DLMP/DMLP: 8 each (2 default
        // modes × 2 locality letters? no — L vs G are separate shapes in
        // the count below). Shape counting per §2.2: paths ending with
        // a, b, d = 8 instances each; c, e = 4 each; plus 16 default-free.
        let all = Strategy::all_instances();
        let with_default = all
            .iter()
            .filter(|s| s.default_rule() != DefaultRule::NoDefault)
            .count();
        let without_default = all.len() - with_default;
        assert_eq!(with_default, 32);
        assert_eq!(without_default, 16);
    }
}
