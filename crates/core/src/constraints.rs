//! Separation-of-duty constraints — the paper's fourth future-work item:
//! *"we suggest to enhance the framework by adding other access control
//! constraints such as separation of duties and conflict of interests."*
//!
//! A [`SodConstraint`] names a set of privileges (⟨object, right⟩ pairs)
//! of which no single subject may *effectively* hold more than a given
//! number. The checker evaluates constraints against a materialised
//! [`EffectiveMatrix`], so violations reflect derived authorizations under
//! the chosen strategy — the same explicit matrix can satisfy a
//! constraint under `D-LP-` and violate it under `D+P+`.

use crate::effective::EffectiveMatrix;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::mode::Sign;
use serde::{Deserialize, Serialize};

/// A privilege: one cell of the access matrix.
pub type Privilege = (ObjectId, RightId);

/// "Of these privileges, no subject may hold more than `at_most`."
///
/// `at_most = 1` is classical static separation of duty (e.g. *issue
/// payment* and *approve payment* must not concentrate in one subject).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SodConstraint {
    /// Descriptive name used in violation reports.
    pub name: String,
    /// The mutually exclusive privileges.
    pub privileges: Vec<Privilege>,
    /// Maximum number of these privileges one subject may hold.
    pub at_most: usize,
}

impl SodConstraint {
    /// A pairwise-exclusive constraint (`at_most = 1`).
    pub fn mutual_exclusion(name: impl Into<String>, privileges: Vec<Privilege>) -> Self {
        SodConstraint {
            name: name.into(),
            privileges,
            at_most: 1,
        }
    }
}

/// One subject exceeding a constraint's bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SodViolation {
    /// The violated constraint's name.
    pub constraint: String,
    /// The subject holding too many privileges.
    pub subject: SubjectId,
    /// The privileges the subject effectively holds from the constrained
    /// set.
    pub held: Vec<Privilege>,
    /// The constraint's bound.
    pub at_most: usize,
}

/// Checks `constraints` against an effective matrix, reporting every
/// subject that effectively holds more than a constraint allows.
///
/// Privileges whose `(object, right)` pair was not materialised in the
/// matrix count as *not held* — materialise all constrained pairs (e.g.
/// via [`EffectiveMatrix::compute_for_pairs`]) for a complete check.
pub fn check_sod(
    hierarchy: &SubjectDag,
    matrix: &EffectiveMatrix,
    constraints: &[SodConstraint],
) -> Vec<SodViolation> {
    let mut violations = Vec::new();
    for c in constraints {
        for subject in hierarchy.subjects() {
            let held: Vec<Privilege> = c
                .privileges
                .iter()
                .copied()
                .filter(|&(o, r)| matrix.sign(subject, o, r) == Some(Sign::Pos))
                .collect();
            if held.len() > c.at_most {
                violations.push(SodViolation {
                    constraint: c.name.clone(),
                    subject,
                    held,
                    at_most: c.at_most,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Eacm;
    use crate::strategy::Strategy;

    /// clerk and approver groups share one member, eve.
    fn payment_world() -> (SubjectDag, Eacm, [SubjectId; 5], Privilege, Privilege) {
        let mut h = SubjectDag::new();
        let clerks = h.add_subject();
        let approvers = h.add_subject();
        let alice = h.add_subject();
        let bob = h.add_subject();
        let eve = h.add_subject();
        h.add_membership(clerks, alice).unwrap();
        h.add_membership(clerks, eve).unwrap();
        h.add_membership(approvers, bob).unwrap();
        h.add_membership(approvers, eve).unwrap();
        let issue = (ObjectId(0), RightId(0));
        let approve = (ObjectId(0), RightId(1));
        let mut eacm = Eacm::new();
        eacm.grant(clerks, issue.0, issue.1).unwrap();
        eacm.grant(approvers, approve.0, approve.1).unwrap();
        (
            h,
            eacm,
            [clerks, approvers, alice, bob, eve],
            issue,
            approve,
        )
    }

    #[test]
    fn detects_the_double_role_holder() {
        let (h, eacm, [_, _, _, _, eve], issue, approve) = payment_world();
        // Note the default-free strategy: under D-LP- the *other* group is
        // an unlabeled root whose negative default ties with the grant at
        // distance 1, and P- denies — eve would hold neither privilege.
        let strategy: Strategy = "LP-".parse().unwrap();
        let matrix =
            EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &[issue, approve]).unwrap();
        let constraint = SodConstraint::mutual_exclusion("issue-vs-approve", vec![issue, approve]);
        let violations = check_sod(&h, &matrix, &[constraint]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].subject, eve);
        assert_eq!(violations[0].held.len(), 2);
        assert_eq!(violations[0].at_most, 1);
    }

    #[test]
    fn no_violation_when_bound_is_two() {
        let (h, eacm, _, issue, approve) = payment_world();
        let strategy: Strategy = "LP-".parse().unwrap();
        let matrix =
            EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &[issue, approve]).unwrap();
        let constraint = SodConstraint {
            name: "relaxed".into(),
            privileges: vec![issue, approve],
            at_most: 2,
        };
        assert!(check_sod(&h, &matrix, &[constraint]).is_empty());
    }

    #[test]
    fn strategy_changes_can_introduce_violations() {
        // Under an open default (D+), *everyone* effectively holds both
        // privileges, so every subject violates mutual exclusion; under
        // the closed default only eve does.
        let (h, eacm, _, issue, approve) = payment_world();
        let constraint = SodConstraint::mutual_exclusion("issue-vs-approve", vec![issue, approve]);
        let closed = EffectiveMatrix::compute_for_pairs(
            &h,
            &eacm,
            "LP-".parse().unwrap(),
            &[issue, approve],
        )
        .unwrap();
        let open = EffectiveMatrix::compute_for_pairs(
            &h,
            &eacm,
            "D+LP+".parse().unwrap(),
            &[issue, approve],
        )
        .unwrap();
        assert_eq!(
            check_sod(&h, &closed, std::slice::from_ref(&constraint)).len(),
            1
        );
        assert_eq!(
            check_sod(&h, &open, std::slice::from_ref(&constraint)).len(),
            h.subject_count()
        );
    }

    #[test]
    fn unmaterialised_privileges_count_as_not_held() {
        let (h, eacm, _, issue, approve) = payment_world();
        let matrix = EffectiveMatrix::compute_for_pairs(
            &h,
            &eacm,
            "LP-".parse().unwrap(),
            &[issue], // approve not materialised
        )
        .unwrap();
        let constraint = SodConstraint::mutual_exclusion("issue-vs-approve", vec![issue, approve]);
        assert!(check_sod(&h, &matrix, &[constraint]).is_empty());
    }
}
