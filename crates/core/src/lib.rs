//! # `ucra-core` — A Unified Conflict Resolution Algorithm
//!
//! A faithful, production-grade implementation of *A Unified Conflict
//! Resolution Algorithm* (A. H. Chinaei, H. R. Chinaei, F. Wm. Tompa,
//! 2007): hybrid (positive + negative) authorizations over DAG-structured
//! subject hierarchies, resolved by one parametric algorithm that covers
//! all **48 legitimate strategy instances** built from four policies —
//! Default, Locality/Globality, Majority and Preference.
//!
//! ## Model (§2)
//!
//! * [`SubjectDag`] — the subject hierarchy: groups point to members, a
//!   subject may belong to several groups (a DAG, not a tree).
//! * [`Eacm`] — the sparse *explicit* access control matrix: at most one
//!   `+`/`-` per ⟨subject, object, right⟩.
//! * [`Strategy`] — one of the 48 instances, e.g. `"D+LMP-"`,
//!   `"GMP+"`, `"P-"` (the paper's mnemonics parse directly).
//!
//! ## Algorithms (§3)
//!
//! * [`engine::path_enum`] — Function `Propagate()` (Fig. 5) exactly as
//!   published: one record per propagation path.
//! * [`engine::counting`] — a bag-equivalent dynamic program that stays
//!   polynomial on path-exponential hierarchies (our optimisation).
//! * [`resolve_histogram`] / [`Resolver`] — Algorithm `Resolve()`
//!   (Fig. 4) with a [`Resolution`] trace matching the paper's Table 3.
//! * [`dominance()`](dominance::dominance) — the `Dominance()` baseline of Chinaei & Zhang,
//!   specialised to D⁻LP⁻, used by the paper's Figure 7(a) comparison.
//!
//! ## Extensions (the paper's §6 future work, implemented)
//!
//! * [`MemoResolver`] — caches one propagation sweep per
//!   `(object, right)` pair (future work #1).
//! * [`objects`] — mixed subject + object hierarchies (future work #2).
//! * [`engine::counting::PropagationMode`] — first/second/both
//!   propagation modes (future work #3).
//! * [`constraints`] — separation-of-duty checking over effective
//!   matrices (future work #4).
//!
//! ## Quick start
//!
//! ```
//! use ucra_core::{Resolver, Sign, Strategy};
//!
//! // The paper's motivating example ships as a fixture.
//! let ex = ucra_core::motivating::motivating_example();
//! let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
//!
//! // Is User allowed to read obj? Depends on the enterprise's strategy:
//! let open: Strategy = "D+LMP+".parse().unwrap();
//! let closed: Strategy = "D-LP-".parse().unwrap();
//! assert_eq!(resolver.resolve(ex.user, ex.obj, ex.read, open).unwrap(), Sign::Pos);
//! assert_eq!(resolver.resolve(ex.user, ex.obj, ex.read, closed).unwrap(), Sign::Neg);
//! ```

// `deny`, not `forbid`: exactly two modules opt out. The persistent
// thread pool ([`pool`]) contains one audited `unsafe` block — the
// lifetime erasure that lets parked workers run a caller-borrowed
// closure (see the soundness argument there) — and [`engine::simd`]
// confines the `#[target_feature]` intrinsic kernels and the
// cache-line-aligned lane buffer behind a capability-checked safe API
// (see its dispatch-soundness argument). Every other module is
// `unsafe`-free and cannot opt out silently; CI runs the pool's and the
// lane buffer's tests under Miri, where the intrinsic paths are
// compiled out and the scalar oracle runs instead.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod dominance;
pub mod effective;
pub mod engine;
mod error;
pub mod explain;
mod hierarchy;
pub mod ids;
pub mod impact;
pub mod invalidation;
mod matrix;
mod memo;
mod mode;
pub mod motivating;
pub mod objects;
pub mod pool;
pub mod related;
mod resolve;
pub mod session;
mod strategy;

pub use dominance::{dominance, dominance_specialized, dominance_with_stats, DominanceStats};
pub use effective::{
    columns_for_strategies, columns_for_strategies_in, EffectiveDiff, EffectiveMatrix, MatrixDiff,
    PARALLEL_WORK_THRESHOLD,
};
pub use engine::kernel::{FusedSweep, SweepContext, SweepScratch};
pub use engine::{AuthRecord, DistanceHistogram, ModeCounts};
pub use error::CoreError;
pub use explain::{explain, explain_with_mode, Explanation};
pub use hierarchy::SubjectDag;
pub use ids::{ObjectId, RightId, SubjectId};
pub use impact::{EditCone, EditOp, EditOutcome, EditScript, ImpactAnalysis};
pub use invalidation::RepairPlan;
pub use matrix::Eacm;
pub use memo::{DecisionMemo, MemoKey, MemoResolver, ReadCounters};
pub use mode::{Mode, Sign};
pub use resolve::{resolve_histogram, DecisionLine, Engine, Resolution, Resolver};
pub use session::{AccessSession, SessionSnapshot, SessionStats};
pub use strategy::{DefaultRule, LocalityRule, MajorityRule, Strategy, StrategyShape};
