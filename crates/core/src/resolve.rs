//! Algorithm `Resolve()` (Fig. 4): the unified parametric conflict
//! resolution algorithm, plus the [`Resolver`] facade tying hierarchy,
//! matrix, engine and strategy together.

use crate::engine::counting::{self, PropagationMode};
use crate::engine::path_enum::{self, PropagateOptions};
use crate::engine::{AuthRecord, DistanceHistogram};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;
use crate::strategy::{DefaultRule, LocalityRule, MajorityRule, Strategy};
use std::collections::BTreeSet;
use std::fmt;

/// Which line of Fig. 4 produced the decision — the paper's Table 3
/// reports this as its `Line` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionLine {
    /// Line 6: the Majority policy was decisive.
    Majority,
    /// Line 8: the Locality filter left a single authorization mode.
    Locality,
    /// Line 9: the Preference rule broke the remaining conflict.
    Preference,
}

impl DecisionLine {
    /// The line number as printed in Fig. 4 / Table 3.
    pub fn line_number(self) -> u8 {
        match self {
            DecisionLine::Majority => 6,
            DecisionLine::Locality => 8,
            DecisionLine::Preference => 9,
        }
    }
}

/// The outcome of one `Resolve()` run with its trace — the columns of the
/// paper's Table 3 (`c₁`, `c₂`, `Auth`, `mode`, `Line`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The effective authorization (the `mode` column).
    pub sign: Sign,
    /// `c₁` — positive votes counted by the Majority policy (`None` when
    /// the strategy skips Majority: Table 3's "n/a").
    pub c1: Option<u128>,
    /// `c₂` — negative votes (see [`Resolution::c1`]).
    pub c2: Option<u128>,
    /// `Auth` — the distinct modes surviving the locality filter; `None`
    /// when the algorithm returned before Line 7.
    pub auth: Option<BTreeSet<Sign>>,
    /// Which line of Fig. 4 decided.
    pub line: DecisionLine,
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opt = |v: &Option<u128>| v.map_or("n/a".to_string(), |x| x.to_string());
        let auth = match &self.auth {
            None => "n/a".to_string(),
            Some(set) if set.is_empty() => "∅".to_string(),
            Some(set) => set
                .iter()
                .map(|s| s.symbol().to_string())
                .collect::<Vec<_>>()
                .join(","),
        };
        write!(
            f,
            "c1={} c2={} Auth={} mode={} line={}",
            opt(&self.c1),
            opt(&self.c2),
            auth,
            self.sign,
            self.line.line_number()
        )
    }
}

/// A histogram over definite signs only: the `allRights` bag after the
/// Default policy (Fig. 4 Lines 2–3) has eliminated `d` rows.
#[derive(Debug, Clone, Default)]
struct SignHistogram {
    strata: Vec<(u32, u128, u128)>, // (dis, pos, neg), sorted by dis
}

impl SignHistogram {
    /// Applies the Default policy to strata supplied in increasing
    /// distance order. Accepting an iterator (rather than a
    /// [`DistanceHistogram`]) lets the columnar kernel resolve directly
    /// from its flat arena rows without materialising a `BTreeMap`.
    fn apply_default(
        strata_in: impl Iterator<Item = (u32, crate::engine::ModeCounts)>,
        rule: DefaultRule,
    ) -> Result<Self, CoreError> {
        let mut strata = Vec::new();
        for (dis, c) in strata_in {
            let (mut pos, mut neg) = (c.pos, c.neg);
            match rule {
                DefaultRule::NoDefault => {}
                DefaultRule::Pos => {
                    pos = pos.checked_add(c.def).ok_or(CoreError::PathCountOverflow)?;
                }
                DefaultRule::Neg => {
                    neg = neg.checked_add(c.def).ok_or(CoreError::PathCountOverflow)?;
                }
            }
            if pos > 0 || neg > 0 {
                strata.push((dis, pos, neg));
            }
        }
        Ok(SignHistogram { strata })
    }

    fn totals(&self) -> Result<(u128, u128), CoreError> {
        let mut pos: u128 = 0;
        let mut neg: u128 = 0;
        for &(_, p, n) in &self.strata {
            pos = pos.checked_add(p).ok_or(CoreError::PathCountOverflow)?;
            neg = neg.checked_add(n).ok_or(CoreError::PathCountOverflow)?;
        }
        Ok((pos, neg))
    }

    /// Counts in the stratum selected by the locality rule
    /// (`σ_{dis = lRule(dis)}` of Fig. 4 Line 7), or the whole histogram
    /// for `identity()`.
    fn locality_counts(&self, rule: LocalityRule) -> Result<(u128, u128), CoreError> {
        match rule {
            LocalityRule::Identity => self.totals(),
            LocalityRule::MostSpecific => {
                Ok(self.strata.first().map_or((0, 0), |&(_, p, n)| (p, n)))
            }
            LocalityRule::MostGeneral => Ok(self.strata.last().map_or((0, 0), |&(_, p, n)| (p, n))),
        }
    }
}

/// Algorithm `Resolve()` (Fig. 4) over a pre-computed `allRights`
/// histogram.
///
/// Splitting propagation from resolution means one propagation can be
/// replayed under any of the 48 strategy instances — the histogram keeps
/// `d` rows intact, and the Default rule is applied here.
pub fn resolve_histogram(
    hist: &DistanceHistogram,
    strategy: Strategy,
) -> Result<Resolution, CoreError> {
    resolve_strata(hist.strata(), strategy)
}

/// Algorithm `Resolve()` over raw `(distance, counts)` strata supplied in
/// increasing distance order (all-zero strata are ignored). This is the
/// allocation-free entry point the columnar kernel resolves through; it
/// is exactly [`resolve_histogram`] without the `BTreeMap` detour.
pub(crate) fn resolve_strata(
    strata: impl Iterator<Item = (u32, crate::engine::ModeCounts)>,
    strategy: Strategy,
) -> Result<Resolution, CoreError> {
    // Lines 2–3: the Default policy.
    let signs = SignHistogram::apply_default(strata, strategy.default_rule())?;

    // Lines 4–6: the Majority policy.
    let (mut c1, mut c2) = (None, None);
    if strategy.majority_rule() != MajorityRule::Skip {
        let (p, n) = match strategy.majority_rule() {
            MajorityRule::Before => signs.totals()?,
            MajorityRule::After => signs.locality_counts(strategy.locality_rule())?,
            MajorityRule::Skip => unreachable!(),
        };
        c1 = Some(p);
        c2 = Some(n);
        if p > n {
            return Ok(Resolution {
                sign: Sign::Pos,
                c1,
                c2,
                auth: None,
                line: DecisionLine::Majority,
            });
        }
        if n > p {
            return Ok(Resolution {
                sign: Sign::Neg,
                c1,
                c2,
                auth: None,
                line: DecisionLine::Majority,
            });
        }
    }

    // Line 7: Auth ← π_mode(σ_{dis = lRule(dis)} allRights).
    let (p, n) = signs.locality_counts(strategy.locality_rule())?;
    let mut auth = BTreeSet::new();
    if p > 0 {
        auth.insert(Sign::Pos);
    }
    if n > 0 {
        auth.insert(Sign::Neg);
    }

    // Line 8: a single surviving mode wins.
    if auth.len() == 1 {
        let sign = *auth.iter().next().expect("len checked");
        return Ok(Resolution {
            sign,
            c1,
            c2,
            auth: Some(auth),
            line: DecisionLine::Locality,
        });
    }

    // Line 9: the Preference rule.
    Ok(Resolution {
        sign: strategy.preference_rule(),
        c1,
        c2,
        auth: Some(auth),
        line: DecisionLine::Preference,
    })
}

/// Which propagation engine a [`Resolver`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The counting dynamic program (default; polynomial).
    #[default]
    Counting,
    /// Paper-faithful per-path enumeration with a record budget.
    PathEnum(PropagateOptions),
}

/// The query facade: binds a hierarchy and an explicit matrix, and
/// answers effective-authorization questions under any strategy.
///
/// ```
/// use ucra_core::{Eacm, Resolver, Sign, Strategy, SubjectDag};
/// use ucra_core::ids::{ObjectId, RightId};
///
/// let mut h = SubjectDag::new();
/// let staff = h.add_subject();
/// let alice = h.add_subject();
/// h.add_membership(staff, alice).unwrap();
///
/// let (report, read) = (ObjectId(0), RightId(0));
/// let mut eacm = Eacm::new();
/// eacm.grant(staff, report, read).unwrap();
///
/// let resolver = Resolver::new(&h, &eacm);
/// let strategy: Strategy = "D-LP-".parse().unwrap();
/// assert_eq!(resolver.resolve(alice, report, read, strategy).unwrap(), Sign::Pos);
/// ```
#[derive(Debug, Clone)]
pub struct Resolver<'a> {
    hierarchy: &'a SubjectDag,
    eacm: &'a Eacm,
    engine: Engine,
    propagation_mode: PropagationMode,
}

impl<'a> Resolver<'a> {
    /// A resolver with the default (counting) engine and the paper's
    /// propagation semantics.
    pub fn new(hierarchy: &'a SubjectDag, eacm: &'a Eacm) -> Self {
        Resolver {
            hierarchy,
            eacm,
            engine: Engine::default(),
            propagation_mode: PropagationMode::Both,
        }
    }

    /// Selects the propagation engine. A [`Engine::PathEnum`] choice
    /// also adopts the mode carried in its options, so the two
    /// configuration paths cannot disagree.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        if let Engine::PathEnum(opts) = engine {
            self.propagation_mode = opts.mode;
        }
        self.engine = engine;
        self
    }

    /// Selects the propagation mode (paper future work #3). The mode is
    /// the single source of truth for **both** engines — the counting
    /// sweep and the per-path enumeration (including
    /// [`Resolver::all_rights_records`]) honour it, so a record-level
    /// trace can never contradict the counting-engine decision it
    /// explains.
    #[must_use]
    pub fn with_propagation_mode(mut self, mode: PropagationMode) -> Self {
        self.propagation_mode = mode;
        self
    }

    /// The path-enumeration options in effect: the configured engine's
    /// options (or defaults), with the resolver's propagation mode
    /// applied.
    fn path_enum_options(&self) -> PropagateOptions {
        let base = match self.engine {
            Engine::PathEnum(opts) => opts,
            Engine::Counting => PropagateOptions::default(),
        };
        PropagateOptions {
            mode: self.propagation_mode,
            ..base
        }
    }

    /// The `allRights` histogram for a triple (Steps 1–3 of §3).
    pub fn all_rights_histogram(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<DistanceHistogram, CoreError> {
        match self.engine {
            Engine::Counting => counting::histogram(
                self.hierarchy,
                self.eacm,
                subject,
                object,
                right,
                self.propagation_mode,
            ),
            Engine::PathEnum(_) => {
                let records = path_enum::propagate(
                    self.hierarchy,
                    self.eacm,
                    subject,
                    object,
                    right,
                    self.path_enum_options(),
                )?;
                DistanceHistogram::from_records(&records)
            }
        }
    }

    /// The raw `allRights` records for a triple (paper Table 1). Always
    /// uses path enumeration, since individual records are requested —
    /// under the resolver's configured propagation mode, so the records
    /// summarise to the same histogram the counting engine resolves.
    pub fn all_rights_records(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Vec<AuthRecord>, CoreError> {
        path_enum::propagate(
            self.hierarchy,
            self.eacm,
            subject,
            object,
            right,
            self.path_enum_options(),
        )
    }

    /// The effective authorization of `subject` for `right` on `object`
    /// under `strategy` (Step 4 of §3).
    pub fn resolve(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Sign, CoreError> {
        Ok(self.resolve_traced(subject, object, right, strategy)?.sign)
    }

    /// Like [`Resolver::resolve`], with the Table-3 trace.
    pub fn resolve_traced(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        let hist = self.all_rights_histogram(subject, object, right)?;
        resolve_histogram(&hist, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Mode;

    /// The paper's Table 1 as a histogram.
    fn table1() -> DistanceHistogram {
        let mut h = DistanceHistogram::new();
        for (d, m) in [
            (1, Mode::Neg),
            (1, Mode::Default),
            (2, Mode::Default),
            (1, Mode::Pos),
            (3, Mode::Pos),
            (3, Mode::Default),
        ] {
            h.add(d, m, 1).unwrap();
        }
        h
    }

    fn run(mnemonic: &str) -> Resolution {
        let strategy: Strategy = mnemonic.parse().unwrap();
        resolve_histogram(&table1(), strategy).unwrap()
    }

    #[test]
    fn table_3_trace_rows() {
        // D+LMP+: c1=2, c2=1, Auth n/a, +, line 6.
        let r = run("D+LMP+");
        assert_eq!((r.c1, r.c2), (Some(2), Some(1)));
        assert_eq!(r.auth, None);
        assert_eq!((r.sign, r.line), (Sign::Pos, DecisionLine::Majority));

        // D-GMP-: c1=1, c2=1, Auth {+,-}, -, line 9.
        let r = run("D-GMP-");
        assert_eq!((r.c1, r.c2), (Some(1), Some(1)));
        assert_eq!(r.auth, Some([Sign::Pos, Sign::Neg].into_iter().collect()));
        assert_eq!((r.sign, r.line), (Sign::Neg, DecisionLine::Preference));

        // D-MP-: c1=2, c2=4, -, line 6.
        let r = run("D-MP-");
        assert_eq!((r.c1, r.c2), (Some(2), Some(4)));
        assert_eq!((r.sign, r.line), (Sign::Neg, DecisionLine::Majority));

        // D-LP+: n/a, n/a, Auth {-,+}, +, line 9.
        let r = run("D-LP+");
        assert_eq!((r.c1, r.c2), (None, None));
        assert_eq!((r.sign, r.line), (Sign::Pos, DecisionLine::Preference));

        // D+GP-: n/a, n/a, Auth {+}, +, line 8.
        let r = run("D+GP-");
        assert_eq!((r.c1, r.c2), (None, None));
        assert_eq!(r.auth, Some([Sign::Pos].into_iter().collect()));
        assert_eq!((r.sign, r.line), (Sign::Pos, DecisionLine::Locality));

        // GMP-: c1=1, c2=0, +, line 6.
        let r = run("GMP-");
        assert_eq!((r.c1, r.c2), (Some(1), Some(0)));
        assert_eq!((r.sign, r.line), (Sign::Pos, DecisionLine::Majority));

        // P-: n/a, n/a, Auth {-,+}, -, line 9.
        let r = run("P-");
        assert_eq!((r.c1, r.c2), (None, None));
        assert_eq!((r.sign, r.line), (Sign::Neg, DecisionLine::Preference));

        // MGP-: the paper's Table 3 prints c1=1, c2=0, but Fig. 4 as
        // written (and the §2.2 prose: "two +'s as opposed to only one -")
        // gives c1=2, c2=1; the decision is + at Line 6 either way. We
        // follow Fig. 4. See DESIGN.md §2.3.
        let r = run("MGP-");
        assert_eq!((r.c1, r.c2), (Some(2), Some(1)));
        assert_eq!((r.sign, r.line), (Sign::Pos, DecisionLine::Majority));
    }

    #[test]
    fn table_2_all_48_results() {
        // The full Table 2 of the paper: every strategy instance's result
        // on the motivating example.
        let expected: &[(&str, Sign)] = &[
            ("D+LMP+", Sign::Pos),
            ("D+LMP-", Sign::Pos),
            ("D-LMP+", Sign::Neg),
            ("D-LMP-", Sign::Neg),
            ("D+GMP+", Sign::Pos),
            ("D+GMP-", Sign::Pos),
            ("D-GMP+", Sign::Pos),
            ("D-GMP-", Sign::Neg),
            ("D+MP+", Sign::Pos),
            ("D+MP-", Sign::Pos),
            ("D-MP+", Sign::Neg),
            ("D-MP-", Sign::Neg),
            ("D+LP+", Sign::Pos),
            ("D+LP-", Sign::Neg),
            ("D-LP+", Sign::Pos),
            ("D-LP-", Sign::Neg),
            ("D+GP+", Sign::Pos),
            ("D+GP-", Sign::Pos),
            ("D-GP+", Sign::Pos),
            ("D-GP-", Sign::Neg),
            ("D+P+", Sign::Pos),
            ("D+P-", Sign::Neg),
            ("D-P+", Sign::Pos),
            ("D-P-", Sign::Neg),
            ("LMP+", Sign::Pos),
            ("LMP-", Sign::Neg),
            ("GMP+", Sign::Pos),
            ("GMP-", Sign::Pos),
            ("MP+", Sign::Pos),
            ("MP-", Sign::Pos),
            ("LP+", Sign::Pos),
            ("LP-", Sign::Neg),
            ("GP+", Sign::Pos),
            ("GP-", Sign::Pos),
            ("P+", Sign::Pos),
            ("P-", Sign::Neg),
            ("D+MLP+", Sign::Pos),
            ("D+MLP-", Sign::Pos),
            ("D-MLP+", Sign::Neg),
            ("D-MLP-", Sign::Neg),
            ("D+MGP+", Sign::Pos),
            ("D+MGP-", Sign::Pos),
            ("D-MGP+", Sign::Neg),
            ("D-MGP-", Sign::Neg),
            ("MLP+", Sign::Pos),
            ("MLP-", Sign::Pos),
            ("MGP+", Sign::Pos),
            ("MGP-", Sign::Pos),
        ];
        assert_eq!(expected.len(), 48);
        for &(mnemonic, sign) in expected {
            let r = run(mnemonic);
            assert_eq!(r.sign, sign, "strategy {mnemonic}");
        }
    }

    #[test]
    fn empty_histogram_falls_to_preference() {
        let empty = DistanceHistogram::new();
        for s in Strategy::all_instances() {
            let r = resolve_histogram(&empty, s).unwrap();
            assert_eq!(r.sign, s.preference_rule(), "strategy {s}");
            assert_eq!(r.line, DecisionLine::Preference);
            assert_eq!(r.auth, Some(BTreeSet::new()));
        }
    }

    #[test]
    fn no_default_with_only_default_rows_falls_to_preference() {
        let mut h = DistanceHistogram::new();
        h.add(2, Mode::Default, 3).unwrap();
        let r = resolve_histogram(&h, "LMP+".parse().unwrap()).unwrap();
        assert_eq!((r.sign, r.line), (Sign::Pos, DecisionLine::Preference));
        // With a default policy and no majority, the same rows decide at
        // Line 8 (single surviving mode).
        let r = resolve_histogram(&h, "D-LP+".parse().unwrap()).unwrap();
        assert_eq!((r.sign, r.line), (Sign::Neg, DecisionLine::Locality));
        // With majority, the 3-vs-0 vote catches it earlier, at Line 6.
        let r = resolve_histogram(&h, "D-LMP+".parse().unwrap()).unwrap();
        assert_eq!((r.sign, r.line), (Sign::Neg, DecisionLine::Majority));
        assert_eq!((r.c1, r.c2), (Some(0), Some(3)));
    }

    #[test]
    fn resolver_facade_matches_direct_resolution() {
        let mut h = SubjectDag::new();
        let s1 = h.add_subject();
        let s2 = h.add_subject();
        let s3 = h.add_subject();
        let s5 = h.add_subject();
        let s6 = h.add_subject();
        let user = h.add_subject();
        h.add_membership(s1, s3).unwrap();
        h.add_membership(s2, s3).unwrap();
        h.add_membership(s2, user).unwrap();
        h.add_membership(s3, s5).unwrap();
        h.add_membership(s5, user).unwrap();
        h.add_membership(s6, s5).unwrap();
        h.add_membership(s6, user).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(s2, o, r).unwrap();
        eacm.deny(s5, o, r).unwrap();

        let counting = Resolver::new(&h, &eacm);
        let path_enum =
            Resolver::new(&h, &eacm).with_engine(Engine::PathEnum(PropagateOptions::default()));
        for strategy in Strategy::all_instances() {
            let a = counting.resolve_traced(user, o, r, strategy).unwrap();
            let b = path_enum.resolve_traced(user, o, r, strategy).unwrap();
            assert_eq!(a, b, "engines disagree on {strategy}");
        }
    }

    #[test]
    fn records_honour_the_propagation_mode() {
        // root(+) → mid(-) → leaf: the three modes produce three
        // different bags, and the record-level trace must summarise to
        // exactly the histogram the counting engine resolves.
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let mid = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, mid).unwrap();
        h.add_membership(mid, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(root, o, r).unwrap();
        eacm.deny(mid, o, r).unwrap();
        for mode in [
            PropagationMode::Both,
            PropagationMode::SecondWins,
            PropagationMode::FirstWins,
        ] {
            let resolver = Resolver::new(&h, &eacm).with_propagation_mode(mode);
            let records = resolver.all_rights_records(leaf, o, r).unwrap();
            let from_records = DistanceHistogram::from_records(&records).unwrap();
            let counting = resolver.all_rights_histogram(leaf, o, r).unwrap();
            assert_eq!(from_records, counting, "mode {mode:?}");
            // And the full resolution agrees across engines.
            for strategy in Strategy::all_instances() {
                let a = resolver.resolve_traced(leaf, o, r, strategy).unwrap();
                let b = resolver
                    .clone()
                    .with_engine(Engine::PathEnum(PropagateOptions {
                        mode,
                        ..PropagateOptions::default()
                    }))
                    .resolve_traced(leaf, o, r, strategy)
                    .unwrap();
                assert_eq!(a, b, "mode {mode:?}, strategy {strategy}");
            }
        }
        // SecondWins and Both genuinely differ here — the old behaviour
        // (records always under Both) would have made them equal.
        let both = Resolver::new(&h, &eacm)
            .all_rights_records(leaf, o, r)
            .unwrap();
        let second = Resolver::new(&h, &eacm)
            .with_propagation_mode(PropagationMode::SecondWins)
            .all_rights_records(leaf, o, r)
            .unwrap();
        assert_ne!(
            DistanceHistogram::from_records(&both).unwrap(),
            DistanceHistogram::from_records(&second).unwrap()
        );
    }

    #[test]
    fn with_engine_adopts_the_options_mode() {
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let mid = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, mid).unwrap();
        h.add_membership(mid, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(root, o, r).unwrap();
        eacm.deny(mid, o, r).unwrap();
        let opts = PropagateOptions {
            mode: PropagationMode::SecondWins,
            ..PropagateOptions::default()
        };
        let via_engine = Resolver::new(&h, &eacm).with_engine(Engine::PathEnum(opts));
        let via_mode = Resolver::new(&h, &eacm).with_propagation_mode(PropagationMode::SecondWins);
        assert_eq!(
            via_engine.all_rights_histogram(leaf, o, r).unwrap(),
            via_mode.all_rights_histogram(leaf, o, r).unwrap()
        );
    }

    #[test]
    fn majority_after_counts_only_min_stratum() {
        // Regression guard for the D-LMP+ ordering: majority AFTER
        // locality counts only the min stratum.
        let r = run("D-LMP+");
        assert_eq!((r.c1, r.c2), (Some(1), Some(2)));
        assert_eq!((r.sign, r.line), (Sign::Neg, DecisionLine::Majority));
    }

    #[test]
    fn resolution_display_renders_table3_style() {
        let r = run("D-GMP-");
        let text = r.to_string();
        assert!(text.contains("c1=1"));
        assert!(text.contains("Auth=+,-"));
        assert!(text.contains("line=9"));
        let r = run("D+LMP+");
        assert!(r.to_string().contains("Auth=n/a"));
    }
}
