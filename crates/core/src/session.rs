//! A long-lived, mutable access-control session with precise cache
//! maintenance.
//!
//! The paper's related-work section criticises materialised effective
//! matrices because they are "not self-maintainable with respect to
//! updating the explicit authorizations, and even a slight update …
//! could trigger a drastic modification". The sweep cache avoids that
//! trap: what we materialise per `(object, right)` pair is the
//! *histogram table*, which is
//!
//! * **strategy-independent** — switching the enterprise's conflict
//!   resolution strategy (the paper's headline use case) invalidates
//!   nothing;
//! * **pair-local** — an explicit-matrix update touches exactly one
//!   `(object, right)` sweep;
//! * only hierarchy edits (group membership changes) invalidate
//!   everything, and those are rare in practice.
//!
//! [`AccessSession`] owns the model, tracks these dependencies, and
//! exposes hit/invalidation counters so operators can see the cache
//! behave.

use crate::engine::counting::{self, PropagationMode};
use crate::engine::DistanceHistogram;
use crate::error::CoreError;
use crate::explain::{explain, Explanation};
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;
use crate::resolve::{resolve_histogram, Resolution};
use crate::strategy::Strategy;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache behaviour counters (monotonic, observational).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered.
    pub queries: u64,
    /// Queries served from a cached sweep.
    pub cache_hits: u64,
    /// Sweeps computed.
    pub sweeps: u64,
    /// Sweeps dropped by explicit-matrix updates.
    pub pair_invalidations: u64,
    /// Full cache flushes caused by hierarchy edits.
    pub full_invalidations: u64,
}

/// An owned access-control installation: hierarchy + explicit matrix +
/// configured strategy + self-maintaining sweep cache.
///
/// ```
/// use ucra_core::{AccessSession, Sign};
/// use ucra_core::ids::{ObjectId, RightId};
///
/// let mut session = AccessSession::empty("D-LP-".parse().unwrap());
/// let admins = session.add_subject();
/// let alice = session.add_subject();
/// session.add_membership(admins, alice).unwrap();
/// session.set_authorization(admins, ObjectId(0), RightId(0), Sign::Pos).unwrap();
///
/// assert_eq!(session.check(alice, ObjectId(0), RightId(0)).unwrap(), Sign::Pos);
/// // Switching strategy costs nothing: the cached sweep is reused.
/// session.set_strategy("D+GP+".parse().unwrap());
/// session.check(alice, ObjectId(0), RightId(0)).unwrap();
/// assert_eq!(session.stats().sweeps, 1);
/// ```
#[derive(Debug)]
pub struct AccessSession {
    hierarchy: SubjectDag,
    eacm: Eacm,
    strategy: Strategy,
    cache: RwLock<HashMap<(ObjectId, RightId), Arc<Vec<DistanceHistogram>>>>,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    sweeps: AtomicU64,
    pair_invalidations: AtomicU64,
    full_invalidations: AtomicU64,
}

impl AccessSession {
    /// A new session around an existing model.
    pub fn new(hierarchy: SubjectDag, eacm: Eacm, strategy: Strategy) -> Self {
        AccessSession {
            hierarchy,
            eacm,
            strategy,
            cache: RwLock::new(HashMap::new()),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            pair_invalidations: AtomicU64::new(0),
            full_invalidations: AtomicU64::new(0),
        }
    }

    /// An empty session under the given strategy.
    pub fn empty(strategy: Strategy) -> Self {
        AccessSession::new(SubjectDag::new(), Eacm::new(), strategy)
    }

    /// The current strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Switches the conflict-resolution strategy. **No cache
    /// invalidation** — the cached sweeps keep `d` rows separate, so all
    /// 48 strategies read the same tables. This is the paper's
    /// reconfigure-without-reinstall story, made literal.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Read access to the hierarchy.
    pub fn hierarchy(&self) -> &SubjectDag {
        &self.hierarchy
    }

    /// Read access to the explicit matrix.
    pub fn eacm(&self) -> &Eacm {
        &self.eacm
    }

    /// Adds a subject. Does not invalidate (an isolated new subject
    /// cannot appear in any existing ancestor cone)… except that cached
    /// sweep tables are indexed by subject, so they are extended lazily:
    /// we must still flush. Cheap correctness beats clever staleness.
    pub fn add_subject(&mut self) -> SubjectId {
        self.flush_all();
        self.hierarchy.add_subject()
    }

    /// Adds a membership edge; flushes the whole cache (hierarchy edits
    /// can reroute every ancestor cone).
    pub fn add_membership(&mut self, group: SubjectId, member: SubjectId) -> Result<(), CoreError> {
        self.hierarchy.add_membership(group, member)?;
        self.flush_all();
        Ok(())
    }

    /// Records an explicit authorization; drops only the affected
    /// `(object, right)` sweep.
    pub fn set_authorization(
        &mut self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        sign: Sign,
    ) -> Result<(), CoreError> {
        self.eacm.set(subject, object, right, sign)?;
        self.flush_pair(object, right);
        Ok(())
    }

    /// Removes an explicit authorization; drops only the affected sweep.
    pub fn unset_authorization(
        &mut self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Option<Sign> {
        let removed = self.eacm.unset(subject, object, right);
        if removed.is_some() {
            self.flush_pair(object, right);
        }
        removed
    }

    /// The effective authorization under the session strategy.
    pub fn check(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Sign, CoreError> {
        Ok(self.check_traced(subject, object, right)?.sign)
    }

    /// Like [`AccessSession::check`], with the Table-3 trace.
    pub fn check_traced(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Resolution, CoreError> {
        self.check_traced_with(subject, object, right, self.strategy)
    }

    /// Checks under an explicit strategy (still served by the same
    /// cache).
    pub fn check_traced_with(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        if !self.hierarchy.contains(subject) {
            return Err(CoreError::UnknownSubject(subject));
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        let table = self.sweep(object, right)?;
        resolve_histogram(&table[subject.index()], strategy)
    }

    /// Explains a decision under the session strategy (uncached: the
    /// explanation needs per-path sources).
    pub fn explain(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Explanation, CoreError> {
        explain(&self.hierarchy, &self.eacm, subject, object, right, self.strategy)
    }

    /// Cache/maintenance counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            pair_invalidations: self.pair_invalidations.load(Ordering::Relaxed),
            full_invalidations: self.full_invalidations.load(Ordering::Relaxed),
        }
    }

    fn sweep(
        &self,
        object: ObjectId,
        right: RightId,
    ) -> Result<Arc<Vec<DistanceHistogram>>, CoreError> {
        if let Some(t) = self.cache.read().get(&(object, right)) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(t));
        }
        let table = Arc::new(counting::histograms_all(
            &self.hierarchy,
            &self.eacm,
            object,
            right,
            PropagationMode::Both,
        )?);
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.cache.write();
        let entry = guard
            .entry((object, right))
            .or_insert_with(|| Arc::clone(&table));
        Ok(Arc::clone(entry))
    }

    fn flush_pair(&self, object: ObjectId, right: RightId) {
        if self.cache.write().remove(&(object, right)).is_some() {
            self.pair_invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush_all(&self) {
        let mut guard = self.cache.write();
        if !guard.is_empty() {
            self.full_invalidations.fetch_add(1, Ordering::Relaxed);
        }
        guard.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating::motivating_example;

    fn session() -> (AccessSession, crate::motivating::MotivatingExample) {
        let ex = motivating_example();
        let s = AccessSession::new(
            ex.hierarchy.clone(),
            ex.eacm.clone(),
            "D-LP-".parse().unwrap(),
        );
        (s, ex)
    }

    #[test]
    fn check_matches_resolver_and_counts_hits() {
        let (s, ex) = session();
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Neg);
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Neg);
        let stats = s.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn strategy_switch_preserves_cache() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        s.set_strategy("D+LMP+".parse().unwrap());
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Pos);
        let stats = s.stats();
        assert_eq!(stats.sweeps, 1, "strategy change must not re-sweep");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.pair_invalidations + stats.full_invalidations, 0);
    }

    #[test]
    fn matrix_update_invalidates_only_its_pair() {
        let (mut s, ex) = session();
        let other = ObjectId(9);
        s.check(ex.user, ex.obj, ex.read).unwrap();
        s.check(ex.user, other, ex.read).unwrap();
        assert_eq!(s.stats().sweeps, 2);
        // Update obj's matrix: only that sweep drops.
        s.set_authorization(ex.s[0], ex.obj, ex.read, Sign::Neg).unwrap();
        s.check(ex.user, other, ex.read).unwrap(); // still cached
        assert_eq!(s.stats().sweeps, 2);
        let before = s.check(ex.user, ex.obj, ex.read).unwrap(); // re-swept
        assert_eq!(s.stats().sweeps, 3);
        assert_eq!(s.stats().pair_invalidations, 1);
        // And the answer reflects the update: S1 now denies explicitly,
        // but S5's - at distance 1 already decided D-LP- — assert via a
        // strategy the update actually flips.
        let _ = before;
    }

    #[test]
    fn update_changes_answers() {
        let (mut s, ex) = session();
        // Under D+LP+ the defaults are positive and User gets + (Table 2).
        s.set_strategy("D+LP+".parse().unwrap());
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Pos);
        // Deny at User itself: distance 0 beats everything.
        s.set_authorization(ex.user, ex.obj, ex.read, Sign::Neg).unwrap();
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Neg);
        // Remove it again: back to +.
        assert_eq!(s.unset_authorization(ex.user, ex.obj, ex.read), Some(Sign::Neg));
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Pos);
        assert_eq!(s.stats().pair_invalidations, 2);
    }

    #[test]
    fn hierarchy_edit_flushes_everything() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let newbie = s.add_subject();
        s.add_membership(ex.s[1], newbie).unwrap(); // member of S2
        assert_eq!(s.check(newbie, ex.obj, ex.read).unwrap(), Sign::Pos);
        let stats = s.stats();
        assert!(stats.full_invalidations >= 1);
        assert_eq!(stats.sweeps, 2);
    }

    #[test]
    fn contradictory_update_leaves_cache_intact() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let err = s
            .set_authorization(ex.s[1], ex.obj, ex.read, Sign::Neg)
            .unwrap_err();
        assert!(matches!(err, CoreError::ContradictoryAuthorization { .. }));
        s.check(ex.user, ex.obj, ex.read).unwrap();
        assert_eq!(s.stats().sweeps, 1, "failed update must not invalidate");
    }

    #[test]
    fn explain_uses_session_strategy() {
        let (s, ex) = session();
        let e = s.explain(ex.user, ex.obj, ex.read).unwrap();
        assert_eq!(e.strategy, s.strategy());
        assert_eq!(e.resolution.sign, Sign::Neg);
    }

    #[test]
    fn unknown_subject_rejected() {
        let (s, ex) = session();
        let ghost = SubjectId::from_index(77);
        assert_eq!(
            s.check(ghost, ex.obj, ex.read).unwrap_err(),
            CoreError::UnknownSubject(ghost)
        );
    }
}
