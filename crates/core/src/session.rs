//! A long-lived, mutable access-control session with precise,
//! *incremental* cache maintenance.
//!
//! The paper's related-work section criticises materialised effective
//! matrices because they are "not self-maintainable with respect to
//! updating the explicit authorizations, and even a slight update …
//! could trigger a drastic modification". The sweep cache avoids that
//! trap: what we materialise per `(object, right)` pair is the
//! *histogram table*, which is
//!
//! * **strategy-independent** — switching the enterprise's conflict
//!   resolution strategy (the paper's headline use case) invalidates
//!   nothing;
//! * **pair-local AND cone-local for matrix edits** — an explicit-label
//!   edit touches exactly one `(object, right)` table, and only the
//!   edited subject's descendant cone within it: the session repairs
//!   those rows in place ([`RepairPlan::for_label_edit`]) instead of
//!   dropping the sweep;
//! * **cone-local** — a hierarchy edit dirties only the edited member's
//!   descendant cone, and the session *repairs* exactly those rows of
//!   each cached table in place (a partial topological sweep seeded
//!   from the clean ancestor rows, [`counting::histograms_repair`])
//!   instead of flushing anything. Adding a subject merely appends one
//!   row per cached table.
//!
//! No operation short of a failed repair (checked-arithmetic overflow)
//! ever drops a whole cache, so an edit-heavy installation keeps paying
//! cone-sized costs rather than `O(pairs × (V + E))` re-sweeps. In
//! debug builds every repair is cross-checked against a from-scratch
//! sweep (the old flush-and-recompute path survives only as that
//! oracle).
//!
//! [`AccessSession`] owns the model, tracks these dependencies, and
//! exposes hit/repair counters so operators can see the cache behave.
//! [`AccessSession::check_many`] batches point queries, grouping them by
//! `(object, right)`, fusing the missing sweeps into columnar kernel
//! batches ([`crate::engine::kernel`]), and spreading the batches over
//! the persistent thread pool ([`crate::pool`]). All sweeps — batched
//! and point — share one cached [`crate::SweepContext`] (topo order +
//! CSR adjacency), rebuilt lazily only after hierarchy edits.

use crate::engine::counting::{self, PropagationMode};
use crate::engine::kernel::{with_thread_scratch, FusedSweep, SweepContext, DEFAULT_BATCH_COLUMNS};
use crate::engine::DistanceHistogram;
use crate::error::CoreError;
use crate::explain::{explain, Explanation};
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::invalidation::RepairPlan;
use crate::matrix::Eacm;
use crate::memo::{DecisionMemo, ReadCounters};
use crate::mode::{Mode, Sign};
use crate::pool;
use crate::resolve::{resolve_histogram, Resolution};
use crate::strategy::Strategy;
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Finished sweep tables, keyed by `(object, right)` pair.
type SweepCache = RwLock<HashMap<(ObjectId, RightId), Arc<Vec<DistanceHistogram>>>>;

/// Cache behaviour counters (monotonic, observational).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered.
    pub queries: u64,
    /// Queries served from a cached sweep.
    pub cache_hits: u64,
    /// Sweeps computed.
    pub sweeps: u64,
    /// Sweeps dropped by explicit-matrix updates.
    pub pair_invalidations: u64,
    /// Full cache flushes. Hierarchy edits no longer cause any — they
    /// repair in place (a failed repair drops only its own pair, counted
    /// under `pair_invalidations`) — so this stays `0`; it is retained
    /// so operators can alert on it ever becoming non-zero.
    pub full_invalidations: u64,
    /// Incremental table repairs performed (one per cached pair per
    /// hierarchy edit).
    pub partial_repairs: u64,
    /// Total rows recomputed by incremental repairs — compare against
    /// `subject_count × cached pairs` to see what a flush would have
    /// re-swept.
    pub rows_repaired: u64,
    /// Incremental repairs of a single cached table after an
    /// explicit-label edit (set/overwrite/unset). The flush-a-pair path
    /// these replace survives only as the debug oracle.
    pub matrix_repairs: u64,
    /// Total rows recomputed by matrix-edit repairs — the edited
    /// subject's descendant cone per edit, vs. `subject_count` for the
    /// retired flush-and-resweep.
    pub matrix_repair_rows: u64,
    /// High-water mark of bytes retained by this thread's reusable sweep
    /// scratch (label plane + arena + cone-walk buffers), as last
    /// observed after a sweep. The scratch trims itself back toward
    /// recent batch sizes, so this gauge tracks the recent working set,
    /// not the historical peak.
    pub scratch_retained_bytes: u64,
    /// `(object, right)` columns computed by the fused-sweep kernel.
    pub kernel_columns: u64,
    /// Fused batches executed (`kernel_columns / kernel_batches` is the
    /// realised fusion factor — how many columns each topological walk
    /// amortised over).
    pub kernel_batches: u64,
    /// Total bytes of flat arena the kernel allocated across all
    /// batches — the peak per batch is this divided by `kernel_batches`.
    pub kernel_arena_bytes: u64,
    /// Kernel batches counted in the narrow `u64` lane tier (the
    /// steady-state fast path; `narrow_sweeps / kernel_batches` is the
    /// tier hit rate).
    pub narrow_sweeps: u64,
    /// Kernel batches that demanded the wide `u128` tier because their
    /// path counts crossed the narrow saturation ceiling. Expected to
    /// stay 0 on realistic workloads — a non-zero value means the
    /// hierarchy has extreme path multiplicity (and the sweep paid one
    /// extra narrow attempt per affected batch).
    pub wide_escalations: u64,
    /// The SIMD kernel backend selected for this process
    /// (`"scalar"`/`"sse2"`/`"avx2"`; see
    /// [`crate::engine::simd::active_backend`]). Every backend is
    /// bit-identical — this is provenance, not semantics.
    pub kernel_backend: &'static str,
    /// Narrow-tier sweeps merged by the scalar (autovectorized) backend.
    /// The three per-backend counters partition `narrow_sweeps`; with a
    /// fixed process-wide backend exactly one of them moves.
    pub sweeps_scalar: u64,
    /// Narrow-tier sweeps merged by the SSE2 backend.
    pub sweeps_sse2: u64,
    /// Narrow-tier sweeps merged by the AVX2 backend.
    pub sweeps_avx2: u64,
    /// Batched sweep rounds dispatched to the work-stealing pool
    /// (more than one worker).
    pub parallel_dispatches: u64,
    /// Sweep rounds that ran inline on the calling thread (single
    /// worker, single batch, or a point query).
    pub serial_dispatches: u64,
    /// Shared [`crate::SweepContext`] builds. Stays at 1 across any
    /// number of queries until a hierarchy edit invalidates the cached
    /// context; `queries / context_builds` is the amortisation factor.
    pub context_builds: u64,
    /// Queries answered straight from a snapshot's decision memo
    /// (see [`SessionSnapshot`]). Always 0 on a bare session — the memo
    /// only exists on frozen snapshots, where invalidation is free.
    pub memo_hits: u64,
    /// Snapshot queries that resolved from a histogram and recorded the
    /// decision in the memo for next time.
    pub memo_misses: u64,
    /// Epoch of the snapshot that produced these stats (0 for a bare,
    /// mutable session; snapshots start at epoch 1).
    pub snapshot_epoch: u64,
    /// Snapshots published by the owning service's writer (0 for a bare
    /// session; filled in by the daemon's stats path).
    pub snapshots_published: u64,
}

/// An owned access-control installation: hierarchy + explicit matrix +
/// configured strategy + self-maintaining sweep cache.
///
/// ```
/// use ucra_core::{AccessSession, Sign};
/// use ucra_core::ids::{ObjectId, RightId};
///
/// let mut session = AccessSession::empty("D-LP-".parse().unwrap());
/// let admins = session.add_subject();
/// let alice = session.add_subject();
/// session.add_membership(admins, alice).unwrap();
/// session.set_authorization(admins, ObjectId(0), RightId(0), Sign::Pos).unwrap();
///
/// assert_eq!(session.check(alice, ObjectId(0), RightId(0)).unwrap(), Sign::Pos);
/// // Switching strategy costs nothing: the cached sweep is reused.
/// session.set_strategy("D+GP+".parse().unwrap());
/// session.check(alice, ObjectId(0), RightId(0)).unwrap();
/// assert_eq!(session.stats().sweeps, 1);
/// ```
#[derive(Debug)]
pub struct AccessSession {
    hierarchy: SubjectDag,
    eacm: Eacm,
    strategy: Strategy,
    cache: SweepCache,
    /// Lazily built traversal context, shared by every sweep until a
    /// hierarchy edit invalidates it (matrix edits don't touch it: the
    /// context depends only on the DAG).
    sweep_context: RwLock<Option<Arc<SweepContext>>>,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    sweeps: AtomicU64,
    pair_invalidations: AtomicU64,
    full_invalidations: AtomicU64,
    partial_repairs: AtomicU64,
    rows_repaired: AtomicU64,
    matrix_repairs: AtomicU64,
    matrix_repair_rows: AtomicU64,
    scratch_bytes: AtomicU64,
    kernel_columns: AtomicU64,
    kernel_batches: AtomicU64,
    kernel_arena_bytes: AtomicU64,
    narrow_sweeps: AtomicU64,
    wide_escalations: AtomicU64,
    /// Narrow sweeps per SIMD backend, indexed by
    /// [`crate::engine::simd::Backend::index`].
    backend_sweeps: [AtomicU64; 3],
    parallel_dispatches: AtomicU64,
    serial_dispatches: AtomicU64,
    context_builds: AtomicU64,
}

impl AccessSession {
    /// A new session around an existing model.
    pub fn new(hierarchy: SubjectDag, eacm: Eacm, strategy: Strategy) -> Self {
        AccessSession {
            hierarchy,
            eacm,
            strategy,
            cache: RwLock::new(HashMap::new()),
            sweep_context: RwLock::new(None),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            pair_invalidations: AtomicU64::new(0),
            full_invalidations: AtomicU64::new(0),
            partial_repairs: AtomicU64::new(0),
            rows_repaired: AtomicU64::new(0),
            matrix_repairs: AtomicU64::new(0),
            matrix_repair_rows: AtomicU64::new(0),
            scratch_bytes: AtomicU64::new(0),
            kernel_columns: AtomicU64::new(0),
            kernel_batches: AtomicU64::new(0),
            kernel_arena_bytes: AtomicU64::new(0),
            narrow_sweeps: AtomicU64::new(0),
            wide_escalations: AtomicU64::new(0),
            backend_sweeps: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            parallel_dispatches: AtomicU64::new(0),
            serial_dispatches: AtomicU64::new(0),
            context_builds: AtomicU64::new(0),
        }
    }

    /// An empty session under the given strategy.
    pub fn empty(strategy: Strategy) -> Self {
        AccessSession::new(SubjectDag::new(), Eacm::new(), strategy)
    }

    /// The current strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Switches the conflict-resolution strategy. **No cache
    /// invalidation** — the cached sweeps keep `d` rows separate, so all
    /// 48 strategies read the same tables. This is the paper's
    /// reconfigure-without-reinstall story, made literal.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Read access to the hierarchy.
    pub fn hierarchy(&self) -> &SubjectDag {
        &self.hierarchy
    }

    /// Read access to the explicit matrix.
    pub fn eacm(&self) -> &Eacm {
        &self.eacm
    }

    /// Adds a subject. Does not invalidate anything: an isolated new
    /// subject cannot appear in any existing ancestor cone, so each
    /// cached table just grows by one freshly computed row (the new
    /// subject is a root — its own label if one was pre-recorded, a
    /// pending default otherwise). A row that fails to build (checked-
    /// arithmetic overflow — impossible for a one-record histogram, but
    /// handled rather than trusted) drops only its own pair, exactly
    /// like a failed repair: the pair re-sweeps on next use instead of
    /// aborting the process.
    pub fn add_subject(&mut self) -> SubjectId {
        let id = self.hierarchy.add_subject();
        *self.sweep_context.get_mut() = None;
        let mut guard = self.cache.write();
        let mut failed: Vec<(ObjectId, RightId)> = Vec::new();
        for (&(object, right), table) in guard.iter_mut() {
            let mut row = DistanceHistogram::new();
            let mode = self
                .eacm
                .label(id, object, right)
                .map_or(Mode::Default, Mode::from);
            if row.add(0, mode, 1).is_err() {
                failed.push((object, right));
                continue;
            }
            Arc::make_mut(table).push(row);
        }
        for key in failed {
            guard.remove(&key);
            self.pair_invalidations.fetch_add(1, Ordering::Relaxed);
        }
        id
    }

    /// Adds a membership edge and incrementally repairs every cached
    /// sweep table: only the rows of `member` and its descendants can
    /// have changed, so exactly those are recomputed by a partial
    /// topological sweep seeded from the (clean) ancestor rows. No
    /// cached table is dropped unless its repair itself fails
    /// (checked-arithmetic overflow), in which case only that pair is
    /// re-swept on next use.
    pub fn add_membership(&mut self, group: SubjectId, member: SubjectId) -> Result<(), CoreError> {
        self.hierarchy.add_membership(group, member)?;
        *self.sweep_context.get_mut() = None;
        self.repair_after_edge(member);
        Ok(())
    }

    /// The session's shared sweep context, built on first use after the
    /// last hierarchy edit and reused by every sweep until the next one.
    fn context(&self) -> Arc<SweepContext> {
        if let Some(ctx) = self.sweep_context.read().as_ref() {
            return Arc::clone(ctx);
        }
        let built = Arc::new(SweepContext::new(&self.hierarchy));
        self.context_builds.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.sweep_context.write();
        // A racing builder may have stored one first; keep the stored one
        // so every concurrent caller sweeps over the same arrays.
        Arc::clone(guard.get_or_insert(built))
    }

    /// Repairs all cached tables after a new edge into `member`.
    fn repair_after_edge(&self, member: SubjectId) {
        let mut guard = self.cache.write();
        if guard.is_empty() {
            return;
        }
        let plan = RepairPlan::for_new_edge(&self.hierarchy, member);
        let mut failed: Vec<(ObjectId, RightId)> = Vec::new();
        for (&(object, right), table) in guard.iter_mut() {
            let rows = Arc::make_mut(table);
            match counting::histograms_repair(
                &self.hierarchy,
                &self.eacm,
                object,
                right,
                PropagationMode::Both,
                rows,
                plan.dirty(),
            ) {
                Ok(()) => {
                    self.partial_repairs.fetch_add(1, Ordering::Relaxed);
                    self.rows_repaired
                        .fetch_add(plan.len() as u64, Ordering::Relaxed);
                    // Debug oracle: the retired flush-and-recompute path,
                    // kept as a cross-check that repair is exact.
                    #[cfg(debug_assertions)]
                    if let Ok(fresh) = counting::histograms_all(
                        &self.hierarchy,
                        &self.eacm,
                        object,
                        right,
                        PropagationMode::Both,
                    ) {
                        debug_assert_eq!(
                            rows,
                            &fresh[..],
                            "incremental repair diverged from full sweep \
                             for ({object}, {right})"
                        );
                    }
                }
                Err(_) => failed.push((object, right)),
            }
        }
        for key in failed {
            guard.remove(&key);
            self.pair_invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an explicit authorization and incrementally repairs the
    /// one cached sweep it can have changed: only the rows of `subject`'s
    /// descendant cone in the `(object, right)` table are recomputed; no
    /// sweep is dropped unless the repair itself fails.
    pub fn set_authorization(
        &mut self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        sign: Sign,
    ) -> Result<(), CoreError> {
        self.eacm.set(subject, object, right, sign)?;
        self.repair_pair_after_label_edit(subject, object, right);
        Ok(())
    }

    /// Removes an explicit authorization; cone-repairs the affected sweep
    /// just like [`AccessSession::set_authorization`] (a vanished label
    /// is the default→base transition: the repair re-reads the post-edit
    /// matrix, so the row simply loses its explicit record).
    pub fn unset_authorization(
        &mut self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Option<Sign> {
        let removed = self.eacm.unset(subject, object, right);
        if removed.is_some() {
            self.repair_pair_after_label_edit(subject, object, right);
        }
        removed
    }

    /// Repairs the single cached table an explicit-label edit at
    /// `subject` can have dirtied — the edited subject's descendant cone
    /// of the `(object, right)` sweep. A failed repair (checked-arithmetic
    /// overflow) drops only that pair; the retired flush-the-pair path
    /// survives as the debug oracle below.
    fn repair_pair_after_label_edit(&self, subject: SubjectId, object: ObjectId, right: RightId) {
        if !self.hierarchy.contains(subject) {
            // Labels may be pre-recorded for subjects not yet in the
            // hierarchy; no sweep can observe them until the subject is
            // added, so cached tables are untouched.
            return;
        }
        let mut guard = self.cache.write();
        let Some(table) = guard.get_mut(&(object, right)) else {
            return;
        };
        let plan = RepairPlan::for_label_edit(&self.hierarchy, subject);
        let rows = Arc::make_mut(table);
        match counting::histograms_repair(
            &self.hierarchy,
            &self.eacm,
            object,
            right,
            PropagationMode::Both,
            rows,
            plan.dirty(),
        ) {
            Ok(()) => {
                self.matrix_repairs.fetch_add(1, Ordering::Relaxed);
                self.matrix_repair_rows
                    .fetch_add(plan.len() as u64, Ordering::Relaxed);
                // Debug oracle: the retired flush-and-recompute path,
                // kept as a cross-check that cone repair is exact.
                #[cfg(debug_assertions)]
                if let Ok(fresh) = counting::histograms_all(
                    &self.hierarchy,
                    &self.eacm,
                    object,
                    right,
                    PropagationMode::Both,
                ) {
                    debug_assert_eq!(
                        rows,
                        &fresh[..],
                        "matrix-edit cone repair diverged from full sweep \
                         for ({object}, {right})"
                    );
                }
            }
            Err(_) => {
                guard.remove(&(object, right));
                self.pair_invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The effective authorization under the session strategy.
    pub fn check(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Sign, CoreError> {
        Ok(self.check_traced(subject, object, right)?.sign)
    }

    /// Like [`AccessSession::check`], with the Table-3 trace.
    pub fn check_traced(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Resolution, CoreError> {
        self.check_traced_with(subject, object, right, self.strategy)
    }

    /// Checks under an explicit strategy (still served by the same
    /// cache).
    pub fn check_traced_with(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        if !self.hierarchy.contains(subject) {
            return Err(CoreError::UnknownSubject(subject));
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        let table = self.sweep(object, right)?;
        resolve_histogram(&table[subject.index()], strategy)
    }

    /// Resolves one full effective column — every subject's sign for
    /// `(object, right)` under `strategy` — from the cached sweep table
    /// (sweeping it once on a miss). Rows are indexed by
    /// [`SubjectId::index`]. This is the impact analyzer's refresh
    /// primitive: after an edit repairs the cache, re-resolving a column
    /// costs one histogram resolution per subject, never a sweep.
    pub fn resolve_column_with(
        &self,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Vec<Sign>, CoreError> {
        let table = self.sweep(object, right)?;
        table
            .iter()
            .map(|h| resolve_histogram(h, strategy).map(|r| r.sign))
            .collect()
    }

    /// Resolves selected rows of one effective column from the cached
    /// sweep table (sweeping it once on a miss), in `subjects` order.
    /// The impact analyzer's narrow refresh: when an edit's static cone
    /// names a subject set, only those rows can flip, so only they are
    /// re-resolved.
    pub fn resolve_rows_with(
        &self,
        object: ObjectId,
        right: RightId,
        subjects: &[SubjectId],
        strategy: Strategy,
    ) -> Result<Vec<Sign>, CoreError> {
        let table = self.sweep(object, right)?;
        subjects
            .iter()
            .map(|s| resolve_histogram(&table[s.index()], strategy).map(|r| r.sign))
            .collect()
    }

    /// Batched authorization checks under the session strategy.
    ///
    /// Queries are grouped by `(object, right)`; pairs missing from the
    /// cache are fused into multi-column kernel batches and swept
    /// concurrently by the persistent pool (as in
    /// [`crate::EffectiveMatrix::compute_for_pairs_parallel`]), then
    /// every query is answered from the now-warm cache. Answers are
    /// returned in query order. Fails fast on the first unknown subject,
    /// before any sweep runs.
    pub fn check_many(
        &self,
        queries: &[(SubjectId, ObjectId, RightId)],
    ) -> Result<Vec<Sign>, CoreError> {
        self.check_many_with(queries, self.strategy)
    }

    /// Like [`AccessSession::check_many`], under an explicit strategy.
    pub fn check_many_with(
        &self,
        queries: &[(SubjectId, ObjectId, RightId)],
        strategy: Strategy,
    ) -> Result<Vec<Sign>, CoreError> {
        for &(subject, _, _) in queries {
            if !self.hierarchy.contains(subject) {
                return Err(CoreError::UnknownSubject(subject));
            }
        }
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let pairs: BTreeSet<(ObjectId, RightId)> =
            queries.iter().map(|&(_, o, r)| (o, r)).collect();
        let missing: Vec<(ObjectId, RightId)> = {
            let guard = self.cache.read();
            pairs
                .iter()
                .filter(|p| !guard.contains_key(p))
                .copied()
                .collect()
        };
        let hits = queries
            .iter()
            .filter(|&&(_, o, r)| !missing.contains(&(o, r)))
            .count();
        self.cache_hits.fetch_add(hits as u64, Ordering::Relaxed);
        if !missing.is_empty() {
            // Fuse the missing columns into kernel batches and let the
            // work-stealing pool spread the batches over the cores.
            let batches: Vec<&[(ObjectId, RightId)]> =
                missing.chunks(DEFAULT_BATCH_COLUMNS).collect();
            let ctx = self.context();
            // Sparsity-aware work estimate: pruned sweeps only walk the
            // labels' union descendant cone, so a mostly-empty matrix
            // estimates `active × columns` cells — far below the
            // threshold — and stays on the calling thread instead of
            // waking the pool for microscopic sweeps.
            let est = ctx.active_set_size(&self.eacm, &missing).max(1) * missing.len();
            let threads = if est < crate::effective::PARALLEL_WORK_THRESHOLD {
                1
            } else {
                std::thread::available_parallelism()
                    .map_or(1, std::num::NonZeroUsize::get)
                    .min(batches.len())
            };
            let results = pool::run_indexed(batches.len(), threads, |i| {
                with_thread_scratch(|scratch| {
                    let fused = FusedSweep::compute_with(
                        &ctx,
                        &self.eacm,
                        batches[i],
                        PropagationMode::Both,
                        scratch,
                    )?;
                    let arena_bytes = fused.arena_bytes();
                    if fused.is_narrow() {
                        self.narrow_sweeps.fetch_add(1, Ordering::Relaxed);
                        self.backend_sweeps[crate::engine::simd::active_backend().index()]
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if fused.escalated() {
                        self.wide_escalations.fetch_add(1, Ordering::Relaxed);
                    }
                    let tables = fused.into_tables_recycling(scratch);
                    self.scratch_bytes
                        .fetch_max(scratch.retained_bytes() as u64, Ordering::Relaxed);
                    Ok::<_, CoreError>((arena_bytes, tables))
                })
            });
            if threads > 1 {
                self.parallel_dispatches.fetch_add(1, Ordering::Relaxed);
            } else {
                self.serial_dispatches.fetch_add(1, Ordering::Relaxed);
            }
            let mut guard = self.cache.write();
            for (batch, result) in batches.iter().zip(results) {
                let (arena_bytes, tables) = result?;
                self.kernel_batches.fetch_add(1, Ordering::Relaxed);
                self.kernel_arena_bytes
                    .fetch_add(arena_bytes as u64, Ordering::Relaxed);
                for (&pair, table) in batch.iter().zip(tables) {
                    self.sweeps.fetch_add(1, Ordering::Relaxed);
                    self.kernel_columns.fetch_add(1, Ordering::Relaxed);
                    guard.entry(pair).or_insert_with(|| Arc::new(table));
                }
            }
        }
        let guard = self.cache.read();
        queries
            .iter()
            .map(|&(subject, object, right)| {
                // The sweep phase above inserted every missing pair, but
                // a concurrent repair failure may have dropped one since;
                // that is a retriable error, never an abort (the next
                // query re-sweeps the pair).
                let table = guard
                    .get(&(object, right))
                    .ok_or(CoreError::MissingSweepTable { object, right })?;
                Ok(resolve_histogram(&table[subject.index()], strategy)?.sign)
            })
            .collect()
    }

    /// Explains a decision under the session strategy (uncached: the
    /// explanation needs per-path sources).
    pub fn explain(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Explanation, CoreError> {
        explain(
            &self.hierarchy,
            &self.eacm,
            subject,
            object,
            right,
            self.strategy,
        )
    }

    /// Cache/maintenance counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            pair_invalidations: self.pair_invalidations.load(Ordering::Relaxed),
            full_invalidations: self.full_invalidations.load(Ordering::Relaxed),
            partial_repairs: self.partial_repairs.load(Ordering::Relaxed),
            rows_repaired: self.rows_repaired.load(Ordering::Relaxed),
            matrix_repairs: self.matrix_repairs.load(Ordering::Relaxed),
            matrix_repair_rows: self.matrix_repair_rows.load(Ordering::Relaxed),
            scratch_retained_bytes: self.scratch_bytes.load(Ordering::Relaxed),
            kernel_columns: self.kernel_columns.load(Ordering::Relaxed),
            kernel_batches: self.kernel_batches.load(Ordering::Relaxed),
            kernel_arena_bytes: self.kernel_arena_bytes.load(Ordering::Relaxed),
            narrow_sweeps: self.narrow_sweeps.load(Ordering::Relaxed),
            wide_escalations: self.wide_escalations.load(Ordering::Relaxed),
            kernel_backend: crate::engine::simd::active_backend().as_str(),
            sweeps_scalar: self.backend_sweeps[0].load(Ordering::Relaxed),
            sweeps_sse2: self.backend_sweeps[1].load(Ordering::Relaxed),
            sweeps_avx2: self.backend_sweeps[2].load(Ordering::Relaxed),
            parallel_dispatches: self.parallel_dispatches.load(Ordering::Relaxed),
            serial_dispatches: self.serial_dispatches.load(Ordering::Relaxed),
            context_builds: self.context_builds.load(Ordering::Relaxed),
            memo_hits: 0,
            memo_misses: 0,
            snapshot_epoch: 0,
            snapshots_published: 0,
        }
    }

    /// Freezes the session into an immutable, epoch-stamped
    /// [`SessionSnapshot`] sharing the given read counters and decision
    /// memo. Cheap by construction: the cached sweep tables are `Arc`s,
    /// so the freeze clones a map of pointers, never a histogram plane;
    /// the hierarchy and matrix clone at `O(V + E + labels)`, which an
    /// edit already paid in repair work.
    ///
    /// This is the writer half of an RCU-style publication scheme: the
    /// writer owns the mutable session, freezes it after every edit, and
    /// publishes the frozen snapshot for readers; in-flight readers keep
    /// their old snapshot alive through its `Arc` until they finish.
    pub fn freeze_with(
        &self,
        epoch: u64,
        counters: Arc<ReadCounters>,
        memo: Arc<DecisionMemo>,
    ) -> SessionSnapshot {
        SessionSnapshot {
            hierarchy: self.hierarchy.clone(),
            eacm: self.eacm.clone(),
            strategy: self.strategy,
            tables: self.cache.read().clone(),
            overflow: RwLock::new(HashMap::new()),
            context: self.context(),
            memo,
            counters,
            epoch,
            base: self.stats(),
        }
    }

    /// [`AccessSession::freeze_with`] at epoch 1 with fresh counters and
    /// an empty memo — the boot snapshot.
    pub fn freeze(&self) -> SessionSnapshot {
        self.freeze_with(
            1,
            Arc::new(ReadCounters::new()),
            Arc::new(DecisionMemo::new()),
        )
    }

    /// Absorbs the sweep tables that snapshot readers computed for cold
    /// pairs back into this session's cache, so the next freeze carries
    /// them forward and no pair is ever swept twice across epochs.
    ///
    /// **Only sound between the snapshot's publication and the next
    /// edit**: in that window this session's model is bit-identical to
    /// the frozen one, so a table computed against the snapshot is a
    /// table of this session. The service writer calls this at the top
    /// of every edit, before any mutation.
    pub fn adopt_tables(&self, snapshot: &SessionSnapshot) {
        let overflow = snapshot.overflow.read();
        if overflow.is_empty() {
            return;
        }
        let mut guard = self.cache.write();
        for (&pair, table) in overflow.iter() {
            guard.entry(pair).or_insert_with(|| Arc::clone(table));
        }
    }

    fn sweep(
        &self,
        object: ObjectId,
        right: RightId,
    ) -> Result<Arc<Vec<DistanceHistogram>>, CoreError> {
        if let Some(t) = self.cache.read().get(&(object, right)) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(t));
        }
        let ctx = self.context();
        let table = with_thread_scratch(|scratch| {
            let fused = FusedSweep::compute_with(
                &ctx,
                &self.eacm,
                &[(object, right)],
                PropagationMode::Both,
                scratch,
            )?;
            self.kernel_arena_bytes
                .fetch_add(fused.arena_bytes() as u64, Ordering::Relaxed);
            if fused.is_narrow() {
                self.narrow_sweeps.fetch_add(1, Ordering::Relaxed);
                self.backend_sweeps[crate::engine::simd::active_backend().index()]
                    .fetch_add(1, Ordering::Relaxed);
            }
            if fused.escalated() {
                self.wide_escalations.fetch_add(1, Ordering::Relaxed);
            }
            let rows = fused.table(0);
            fused.recycle(scratch);
            self.scratch_bytes
                .fetch_max(scratch.retained_bytes() as u64, Ordering::Relaxed);
            Ok::<_, CoreError>(rows)
        })?;
        self.kernel_columns.fetch_add(1, Ordering::Relaxed);
        self.kernel_batches.fetch_add(1, Ordering::Relaxed);
        self.serial_dispatches.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(table);
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.cache.write();
        let entry = guard
            .entry((object, right))
            .or_insert_with(|| Arc::clone(&table));
        Ok(Arc::clone(entry))
    }
}

/// Finished sweep tables keyed by `(object, right)` pair — the frozen
/// warm map and the reader-filled overflow cache share this shape.
type TableMap = HashMap<(ObjectId, RightId), Arc<Vec<DistanceHistogram>>>;

/// An immutable, epoch-stamped freeze of an [`AccessSession`] — the
/// read half of the daemon's RCU-style publication scheme.
///
/// Everything a decision needs is owned and frozen: the hierarchy, the
/// explicit matrix, the configured strategy, the warm sweep tables
/// (`Arc`-shared with the master cache, so freezing copies pointers)
/// and the shared traversal context. The hot read path therefore takes
/// **no lock shared with any writer**: a memoised decision is one
/// sharded-map read, a warm-table decision is a plain `HashMap` lookup
/// plus one histogram resolution.
///
/// Two pieces are deliberately mutable behind reader-side locks:
///
/// * the **decision memo** — per-snapshot, so an edit invalidates it by
///   publishing a successor snapshot rather than by touching this one;
/// * the **overflow cache** — tables for pairs that were cold at freeze
///   time, swept on demand by whichever reader first needs them and
///   reclaimed by the writer ([`AccessSession::adopt_tables`]) before
///   the next edit.
///
/// Both are only ever contended reader-to-reader; the writer never
/// blocks a snapshot read and a snapshot read never blocks the writer.
#[derive(Debug)]
pub struct SessionSnapshot {
    hierarchy: SubjectDag,
    eacm: Eacm,
    strategy: Strategy,
    /// Warm tables at freeze time. Plain map: the hot path is lock-free.
    tables: TableMap,
    /// Cold pairs swept by readers after the freeze.
    overflow: RwLock<TableMap>,
    context: Arc<SweepContext>,
    memo: Arc<DecisionMemo>,
    counters: Arc<ReadCounters>,
    epoch: u64,
    /// Master-session counters at freeze time; snapshot stats are
    /// `base + shared counters` (the shared block is cumulative across
    /// every epoch, so nothing is lost when a snapshot retires).
    base: SessionStats,
}

impl SessionSnapshot {
    /// The publication epoch this snapshot was frozen at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Read access to the frozen hierarchy.
    pub fn hierarchy(&self) -> &SubjectDag {
        &self.hierarchy
    }

    /// Read access to the frozen explicit matrix.
    pub fn eacm(&self) -> &Eacm {
        &self.eacm
    }

    /// The strategy frozen into this snapshot.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The decision memo, for carrying forward to a successor snapshot
    /// when the edit class permits it (see the service writer).
    pub fn memo(&self) -> &Arc<DecisionMemo> {
        &self.memo
    }

    /// The effective authorization under the frozen strategy.
    pub fn check(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Sign, CoreError> {
        self.check_with(subject, object, right, self.strategy)
    }

    /// Checks under an explicit strategy. Memo-first: the strategy is
    /// part of the memo key, so overrides memoise independently.
    pub fn check_with(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Sign, CoreError> {
        if !self.hierarchy.contains(subject) {
            return Err(CoreError::UnknownSubject(subject));
        }
        ReadCounters::bump(&self.counters.queries, 1);
        self.answer(subject, object, right, strategy)
    }

    /// Batched checks under an explicit strategy, answered in query
    /// order. Fails fast on the first unknown subject, before any sweep
    /// or memo write. The whole batch reads this one frozen state, so
    /// batch atomicity is structural — there is no lock to hold.
    pub fn check_many_with(
        &self,
        queries: &[(SubjectId, ObjectId, RightId)],
        strategy: Strategy,
    ) -> Result<Vec<Sign>, CoreError> {
        for &(subject, _, _) in queries {
            if !self.hierarchy.contains(subject) {
                return Err(CoreError::UnknownSubject(subject));
            }
        }
        ReadCounters::bump(&self.counters.queries, queries.len() as u64);
        queries
            .iter()
            .map(|&(s, o, r)| self.answer(s, o, r, strategy))
            .collect()
    }

    /// Explains a decision under the frozen strategy (uncached: the
    /// narrative needs per-path sources).
    pub fn explain(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<Explanation, CoreError> {
        explain(
            &self.hierarchy,
            &self.eacm,
            subject,
            object,
            right,
            self.strategy,
        )
    }

    /// Frozen-state counters: the master's counters at freeze time plus
    /// the shared cross-epoch read counters, stamped with this epoch.
    pub fn stats(&self) -> SessionStats {
        let mut s = self.base;
        s.queries += self.counters.queries.load(Ordering::Relaxed);
        s.cache_hits += self.counters.cache_hits.load(Ordering::Relaxed);
        s.sweeps += self.counters.sweeps.load(Ordering::Relaxed);
        s.memo_hits = self.counters.memo_hits.load(Ordering::Relaxed);
        s.memo_misses = self.counters.memo_misses.load(Ordering::Relaxed);
        s.snapshot_epoch = self.epoch;
        s
    }

    /// One decision: memo, then warm table, then overflow, then a cold
    /// sweep. Every resolved answer is recorded in the memo.
    fn answer(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Sign, CoreError> {
        let key = (subject, object, right, strategy);
        if let Some(sign) = self.memo.get(&key) {
            ReadCounters::bump(&self.counters.memo_hits, 1);
            ReadCounters::bump(&self.counters.cache_hits, 1);
            return Ok(sign);
        }
        let table = self.table(object, right)?;
        let sign = resolve_histogram(&table[subject.index()], strategy)?.sign;
        ReadCounters::bump(&self.counters.memo_misses, 1);
        self.memo.insert(key, sign);
        Ok(sign)
    }

    /// The sweep table for a pair: the frozen map (lock-free), the
    /// overflow cache, or a fresh sweep that lands in the overflow for
    /// every later reader — and, via [`AccessSession::adopt_tables`],
    /// for every later epoch.
    fn table(
        &self,
        object: ObjectId,
        right: RightId,
    ) -> Result<Arc<Vec<DistanceHistogram>>, CoreError> {
        if let Some(t) = self.tables.get(&(object, right)) {
            ReadCounters::bump(&self.counters.cache_hits, 1);
            return Ok(Arc::clone(t));
        }
        if let Some(t) = self.overflow.read().get(&(object, right)) {
            ReadCounters::bump(&self.counters.cache_hits, 1);
            return Ok(Arc::clone(t));
        }
        let table = with_thread_scratch(|scratch| {
            let fused = FusedSweep::compute_with(
                &self.context,
                &self.eacm,
                &[(object, right)],
                PropagationMode::Both,
                scratch,
            )?;
            let rows = fused.table(0);
            fused.recycle(scratch);
            Ok::<_, CoreError>(rows)
        })?;
        ReadCounters::bump(&self.counters.sweeps, 1);
        let mut guard = self.overflow.write();
        let entry = guard
            .entry((object, right))
            .or_insert_with(|| Arc::new(table));
        Ok(Arc::clone(entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating::motivating_example;

    fn session() -> (AccessSession, crate::motivating::MotivatingExample) {
        let ex = motivating_example();
        let s = AccessSession::new(
            ex.hierarchy.clone(),
            ex.eacm.clone(),
            "D-LP-".parse().unwrap(),
        );
        (s, ex)
    }

    #[test]
    fn check_matches_resolver_and_counts_hits() {
        let (s, ex) = session();
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Neg);
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Neg);
        let stats = s.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn strategy_switch_preserves_cache() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        s.set_strategy("D+LMP+".parse().unwrap());
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Pos);
        let stats = s.stats();
        assert_eq!(stats.sweeps, 1, "strategy change must not re-sweep");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.pair_invalidations + stats.full_invalidations, 0);
    }

    #[test]
    fn matrix_update_repairs_only_its_pair() {
        let (mut s, ex) = session();
        let other = ObjectId(9);
        s.check(ex.user, ex.obj, ex.read).unwrap();
        s.check(ex.user, other, ex.read).unwrap();
        assert_eq!(s.stats().sweeps, 2);
        // Update obj's matrix: only that table is cone-repaired in
        // place; nothing is dropped, nothing is re-swept.
        s.set_authorization(ex.s[0], ex.obj, ex.read, Sign::Neg)
            .unwrap();
        s.check(ex.user, other, ex.read).unwrap(); // untouched pair
        s.check(ex.user, ex.obj, ex.read).unwrap(); // repaired pair
        let stats = s.stats();
        assert_eq!(stats.sweeps, 2, "the repaired table keeps serving");
        assert_eq!(stats.matrix_repairs, 1);
        assert_eq!(stats.pair_invalidations, 0);
        assert_eq!(stats.cache_hits, 2);
        // The repaired cache answers exactly like a fresh resolver.
        let fresh = crate::resolve::Resolver::new(s.hierarchy(), s.eacm())
            .resolve(ex.user, ex.obj, ex.read, s.strategy())
            .unwrap();
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), fresh);
    }

    #[test]
    fn update_changes_answers() {
        let (mut s, ex) = session();
        // Under D+LP+ the defaults are positive and User gets + (Table 2).
        s.set_strategy("D+LP+".parse().unwrap());
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Pos);
        // Deny at User itself: distance 0 beats everything.
        s.set_authorization(ex.user, ex.obj, ex.read, Sign::Neg)
            .unwrap();
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Neg);
        // Remove it again: back to + (the default→base→default round
        // trip, handled entirely by in-place cone repair).
        assert_eq!(
            s.unset_authorization(ex.user, ex.obj, ex.read),
            Some(Sign::Neg)
        );
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Pos);
        let stats = s.stats();
        assert_eq!(stats.matrix_repairs, 2, "one repair per edit");
        assert_eq!(stats.pair_invalidations, 0);
        assert_eq!(stats.sweeps, 1, "matrix edits never re-sweep");
        // User is a sink: each repair recomputed exactly one row.
        assert_eq!(stats.matrix_repair_rows, 2);
    }

    #[test]
    fn label_edits_on_a_large_shape_repair_cones_not_tables() {
        // The acceptance shape: a label edit on a deep hierarchy repairs
        // only the edited subject's descendant cone — never a flush,
        // never a full-table resweep.
        let mut s = AccessSession::empty("D-LP-".parse().unwrap());
        // 16 chains of 16 nodes hanging off one root.
        let root = s.add_subject();
        let mut mids = Vec::new();
        for _ in 0..16 {
            let mut prev = root;
            for depth in 0..16 {
                let v = s.add_subject();
                s.add_membership(prev, v).unwrap();
                if depth == 7 {
                    mids.push(v);
                }
                prev = v;
            }
        }
        let n = s.hierarchy().subject_count() as u64;
        let (o, r) = (ObjectId(0), RightId(0));
        s.set_authorization(mids[0], o, r, Sign::Pos).unwrap();
        s.check(root, o, r).unwrap(); // warm the cache
        let swept = s.stats().sweeps;
        // Edit mid-chain: the cone is the 9 nodes at depth ≥ 7 of that
        // chain, out of 257 subjects.
        s.set_authorization(mids[1], o, r, Sign::Neg).unwrap();
        assert_eq!(
            s.unset_authorization(mids[1], o, r),
            Some(Sign::Neg),
            "and back again"
        );
        let stats = s.stats();
        assert_eq!(stats.full_invalidations, 0);
        assert_eq!(stats.pair_invalidations, 0);
        assert_eq!(stats.sweeps, swept, "no edit re-swept the table");
        assert_eq!(stats.matrix_repairs, 2);
        assert!(
            stats.matrix_repair_rows < n,
            "two cone repairs ({} rows) must stay below one full table ({n} rows)",
            stats.matrix_repair_rows
        );
        assert_eq!(stats.matrix_repair_rows, 18, "9-row cone × 2 edits");
        // And the repaired cache still answers like a fresh resolver.
        let fresh = crate::resolve::Resolver::new(s.hierarchy(), s.eacm())
            .resolve(root, o, r, s.strategy())
            .unwrap();
        assert_eq!(s.check(root, o, r).unwrap(), fresh);
    }

    #[test]
    fn hierarchy_edit_repairs_instead_of_flushing() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let newbie = s.add_subject();
        s.add_membership(ex.s[1], newbie).unwrap(); // member of S2
        assert_eq!(s.check(newbie, ex.obj, ex.read).unwrap(), Sign::Pos);
        let stats = s.stats();
        assert_eq!(stats.full_invalidations, 0, "edits must repair, not flush");
        assert_eq!(stats.sweeps, 1, "the original sweep keeps serving");
        assert_eq!(stats.partial_repairs, 1);
        assert_eq!(stats.rows_repaired, 1, "newbie's cone is just newbie");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn add_subject_extends_cached_tables_without_flushing() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let newbie = s.add_subject();
        // The isolated newcomer resolves like any unlabeled root, served
        // from the extended cache without a new sweep.
        assert_eq!(s.check(newbie, ex.obj, ex.read).unwrap(), Sign::Neg);
        let stats = s.stats();
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.full_invalidations + stats.pair_invalidations, 0);
    }

    #[test]
    fn interior_edge_repairs_the_whole_descendant_cone() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        s.check(ex.user, ObjectId(9), ex.read).unwrap();
        // New root adopting S3: S3's descendant cone (S3, S4, S5, S7,
        // S8, User) is dirty in *both* cached tables.
        let boss = s.add_subject();
        s.add_membership(boss, ex.s[2]).unwrap();
        let stats = s.stats();
        assert_eq!(stats.partial_repairs, 2);
        assert_eq!(stats.rows_repaired, 12, "6-row cone × 2 cached pairs");
        assert_eq!(stats.full_invalidations, 0);
        // Answers still match a fresh resolver.
        let fresh = crate::resolve::Resolver::new(s.hierarchy(), s.eacm())
            .resolve(ex.user, ex.obj, ex.read, s.strategy())
            .unwrap();
        assert_eq!(s.check(ex.user, ex.obj, ex.read).unwrap(), fresh);
        assert_eq!(s.stats().sweeps, 2, "still no re-sweep");
    }

    #[test]
    fn check_many_groups_pairs_and_matches_point_checks() {
        let (s, ex) = session();
        let mut queries = Vec::new();
        for subject in ex.hierarchy.subjects() {
            for o in 0..3u32 {
                queries.push((subject, ObjectId(o), ex.read));
            }
        }
        let batched = s.check_many(&queries).unwrap();
        assert_eq!(batched.len(), queries.len());
        assert_eq!(s.stats().sweeps, 3, "one sweep per distinct pair");
        for (&(subject, object, right), &sign) in queries.iter().zip(&batched) {
            assert_eq!(s.check(subject, object, right).unwrap(), sign);
        }
        // The follow-up point checks were all cache hits.
        let stats = s.stats();
        assert_eq!(stats.sweeps, 3);
        assert_eq!(stats.queries, 2 * queries.len() as u64);
    }

    #[test]
    fn kernel_counters_track_batches_and_columns() {
        let (s, ex) = session();
        // One point check: a single-column kernel batch, dispatched
        // inline.
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let stats = s.stats();
        assert_eq!(stats.kernel_columns, 1);
        assert_eq!(stats.kernel_batches, 1);
        assert_eq!(stats.serial_dispatches, 1);
        assert_eq!(stats.parallel_dispatches, 0);
        assert!(stats.kernel_arena_bytes > 0);
        assert!(stats.scratch_retained_bytes > 0);

        // A batched check over many distinct pairs: the missing columns
        // fuse into ceil(missing / DEFAULT_BATCH_COLUMNS) batches.
        let queries: Vec<_> = (0..20).map(|o| (ex.user, ObjectId(o), ex.read)).collect();
        s.check_many(&queries).unwrap();
        let stats = s.stats();
        // Pair (obj, read) was already cached, so 19 columns remained.
        assert_eq!(stats.kernel_columns, 1 + 19);
        assert_eq!(
            stats.kernel_batches as usize,
            1 + 19usize.div_ceil(DEFAULT_BATCH_COLUMNS)
        );
        assert_eq!(stats.parallel_dispatches + stats.serial_dispatches, 2);
        assert_eq!(stats.sweeps, 20);
        // Every batch stayed in the narrow u64 lane tier: realistic
        // hierarchies never approach the saturation ceiling.
        assert_eq!(stats.narrow_sweeps, stats.kernel_batches);
        assert_eq!(stats.wide_escalations, 0);
        // The per-backend counters partition the narrow sweeps, all
        // attributed to the process-wide selected backend.
        let active = crate::engine::simd::active_backend();
        assert_eq!(stats.kernel_backend, active.as_str());
        assert_eq!(
            stats.sweeps_scalar + stats.sweeps_sse2 + stats.sweeps_avx2,
            stats.narrow_sweeps
        );
        let by_backend = [stats.sweeps_scalar, stats.sweeps_sse2, stats.sweeps_avx2];
        assert_eq!(by_backend[active.index()], stats.narrow_sweeps);
    }

    #[test]
    fn extreme_path_multiplicity_shows_up_as_wide_escalations() {
        // 70 stacked diamonds: 2^70 paths cross the narrow ceiling but
        // fit u128, so the session transparently escalates and still
        // answers — and the counter records it.
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..70 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let mut eacm = Eacm::new();
        eacm.grant(first, ObjectId(0), RightId(0)).unwrap();
        let s = AccessSession::new(h, eacm, "D-LP-".parse().unwrap());
        assert_eq!(s.check(top, ObjectId(0), RightId(0)).unwrap(), Sign::Pos);
        let stats = s.stats();
        assert_eq!(stats.wide_escalations, 1);
        assert_eq!(stats.narrow_sweeps, 0);
    }

    #[test]
    fn sweep_context_is_shared_until_a_hierarchy_edit() {
        let (mut s, ex) = session();
        // Many sweeps across point and batched paths: one context build.
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let queries: Vec<_> = (0..20).map(|o| (ex.user, ObjectId(o), ex.read)).collect();
        s.check_many(&queries).unwrap();
        s.check(ex.user, ObjectId(30), ex.read).unwrap();
        assert_eq!(s.stats().context_builds, 1, "one context serves all sweeps");

        // A matrix edit must NOT invalidate the context (DAG unchanged).
        s.set_authorization(ex.s[0], ObjectId(31), ex.read, Sign::Pos)
            .unwrap();
        s.check(ex.user, ObjectId(31), ex.read).unwrap();
        assert_eq!(s.stats().context_builds, 1);

        // A hierarchy edit must: the next sweep rebuilds once.
        let newbie = s.add_subject();
        s.add_membership(ex.s[1], newbie).unwrap();
        s.check(newbie, ObjectId(32), ex.read).unwrap();
        s.check(newbie, ObjectId(33), ex.read).unwrap();
        assert_eq!(s.stats().context_builds, 2);
    }

    #[test]
    fn check_many_rejects_unknown_subject_before_sweeping() {
        let (s, ex) = session();
        let ghost = SubjectId::from_index(77);
        assert_eq!(
            s.check_many(&[(ex.user, ex.obj, ex.read), (ghost, ex.obj, ex.read)])
                .unwrap_err(),
            CoreError::UnknownSubject(ghost)
        );
        assert_eq!(s.stats().sweeps, 0);
    }

    #[test]
    fn contradictory_update_leaves_cache_intact() {
        let (mut s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let err = s
            .set_authorization(ex.s[1], ex.obj, ex.read, Sign::Neg)
            .unwrap_err();
        assert!(matches!(err, CoreError::ContradictoryAuthorization { .. }));
        s.check(ex.user, ex.obj, ex.read).unwrap();
        assert_eq!(s.stats().sweeps, 1, "failed update must not invalidate");
    }

    #[test]
    fn explain_uses_session_strategy() {
        let (s, ex) = session();
        let e = s.explain(ex.user, ex.obj, ex.read).unwrap();
        assert_eq!(e.strategy, s.strategy());
        assert_eq!(e.resolution.sign, Sign::Neg);
    }

    #[test]
    fn snapshot_answers_match_live_session_and_memoise() {
        let (s, ex) = session();
        s.check(ex.user, ex.obj, ex.read).unwrap(); // warm one pair
        let snap = s.freeze();
        assert_eq!(snap.epoch(), 1);
        // First snapshot check: memo miss, served from the carried table.
        assert_eq!(
            snap.check(ex.user, ex.obj, ex.read).unwrap(),
            s.check(ex.user, ex.obj, ex.read).unwrap()
        );
        // Second: a memo hit.
        snap.check(ex.user, ex.obj, ex.read).unwrap();
        let st = snap.stats();
        assert_eq!(st.snapshot_epoch, 1);
        assert_eq!(st.memo_misses, 1);
        assert_eq!(st.memo_hits, 1);
        assert_eq!(st.sweeps, 1, "the carried table kept serving");
        // base (1 query, 0 hits at freeze... the post-freeze master check
        // rides outside the snapshot) + 2 snapshot queries.
        assert_eq!(st.queries, 1 + 2);
        assert_eq!(st.cache_hits, 2, "table hit + memo hit");
        // A strategy override memoises under its own key.
        let open = "D+LMP+".parse().unwrap();
        assert_eq!(
            snap.check_with(ex.user, ex.obj, ex.read, open).unwrap(),
            Sign::Pos
        );
        assert_eq!(snap.stats().memo_misses, 2);
    }

    #[test]
    fn snapshot_overflow_sweeps_are_adopted_by_the_master() {
        let (s, ex) = session();
        let snap = s.freeze(); // frozen with an empty cache
        snap.check(ex.user, ex.obj, ex.read).unwrap(); // cold sweep → overflow
        assert_eq!(snap.stats().sweeps, 1);
        s.adopt_tables(&snap);
        // The master now serves that pair from cache without sweeping.
        s.check(ex.user, ex.obj, ex.read).unwrap();
        let st = s.stats();
        assert_eq!(st.sweeps, 0, "the master itself never swept");
        assert_eq!(st.cache_hits, 1);
    }

    #[test]
    fn snapshot_batches_match_point_checks_and_reject_unknowns() {
        let (s, ex) = session();
        let snap = s.freeze();
        let mut queries = Vec::new();
        for subject in ex.hierarchy.subjects() {
            for o in 0..3u32 {
                queries.push((subject, ObjectId(o), ex.read));
            }
        }
        let batched = snap.check_many_with(&queries, snap.strategy()).unwrap();
        for (&(subject, object, right), &sign) in queries.iter().zip(&batched) {
            assert_eq!(s.check(subject, object, right).unwrap(), sign);
        }
        let ghost = SubjectId::from_index(77);
        assert_eq!(
            snap.check_many_with(&[(ghost, ex.obj, ex.read)], snap.strategy())
                .unwrap_err(),
            CoreError::UnknownSubject(ghost)
        );
    }

    #[test]
    fn shared_counters_survive_republication() {
        let (mut s, ex) = session();
        let counters = Arc::new(ReadCounters::new());
        let memo = Arc::new(DecisionMemo::new());
        let first = s.freeze_with(1, Arc::clone(&counters), Arc::clone(&memo));
        first.check(ex.user, ex.obj, ex.read).unwrap();
        first.check(ex.user, ex.obj, ex.read).unwrap();
        // An edit: adopt, mutate, refreeze with a fresh memo (label edit)
        // but the same counter block.
        s.adopt_tables(&first);
        // Flip the answer: an explicit + at distance 0 beats everything.
        s.set_authorization(ex.user, ex.obj, ex.read, Sign::Pos)
            .unwrap();
        let second = s.freeze_with(2, Arc::clone(&counters), Arc::new(DecisionMemo::new()));
        assert_eq!(second.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Pos);
        let st = second.stats();
        assert_eq!(st.snapshot_epoch, 2);
        assert_eq!(st.queries, 3, "epoch-1 reads stay counted");
        assert_eq!(st.memo_hits, 1);
        assert_eq!(st.memo_misses, 2, "fresh memo re-resolved once");
        assert_eq!(st.sweeps, 1, "adopted table repaired, never re-swept");
        assert_eq!(st.matrix_repairs, 1);
        assert_eq!(st.full_invalidations, 0);
        // The retired snapshot still answers its own frozen (pre-edit)
        // epoch: the edit flipped the live answer, not this one.
        assert_eq!(first.check(ex.user, ex.obj, ex.read).unwrap(), Sign::Neg);
        assert_eq!(first.stats().snapshot_epoch, 1);
    }

    #[test]
    fn unknown_subject_rejected() {
        let (s, ex) = session();
        let ghost = SubjectId::from_index(77);
        assert_eq!(
            s.check(ghost, ex.obj, ex.read).unwrap_err(),
            CoreError::UnknownSubject(ghost)
        );
    }
}
