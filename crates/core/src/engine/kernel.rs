//! The columnar fused-sweep kernel: flat arena histograms + multi-column
//! batched propagation.
//!
//! ## Why
//!
//! The original counting sweep ([`crate::engine::counting`]) is correct
//! and polynomial, but its hot path is allocation-bound: every
//! `(object, right)` column walks the whole DAG building a fresh
//! `BTreeMap<u32, ModeCounts>` per node — one heap allocation per stratum
//! per node per column, plus pointer-chasing tree merges on every
//! parent-to-child transfer. Caching work (Crampton & Sellwood's RPPM
//! line) shows these systems win by reusing partial decision state; this
//! kernel applies the same lesson to the sweep's *memory layout* and
//! *scheduling*:
//!
//! 1. **Flat arena histograms.** A node's histogram in a sweep always
//!    occupies a contiguous distance span `[base, base + len)` — the
//!    union of its parents' spans shifted by one, plus distance 0 for an
//!    own label or root default. So per `(node, column)` row we store
//!    only `(offset, base, len)` into one shared `Vec<ModeCounts>` arena:
//!    zero per-node allocation, dense sequential merges, and a lossless
//!    round-trip to/from [`DistanceHistogram`].
//! 2. **Fused multi-column sweeps.** One topological walk serves a whole
//!    batch of `(object, right)` columns in struct-of-arrays layout: the
//!    `topo_order` / `parents()` traversal cost — and its cache misses —
//!    are amortised over every column in the batch.
//! 3. **Resolution without materialisation.** `Resolve()` only iterates
//!    strata in distance order, so [`FusedSweep::resolve`] reads arena
//!    rows directly; the full-matrix path never builds a `BTreeMap` at
//!    all.
//!
//! Parallel scheduling over batches lives in [`crate::pool`]; the
//! equivalence of this kernel with the per-path engine and the legacy
//! sweep is asserted by `tests/kernel_equivalence.rs` for all 48
//! strategies and all three [`PropagationMode`]s.

use crate::engine::counting::PropagationMode;
use crate::engine::{DistanceHistogram, ModeCounts};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::{Mode, Sign};
use crate::resolve::{resolve_strata, Resolution};
use crate::strategy::Strategy;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use ucra_graph::traverse;

/// Default number of columns fused into one sweep batch. Bounds the
/// arena's working set while still amortising the topological walk; the
/// parallel drivers split larger pair lists into batches of this size.
pub const DEFAULT_BATCH_COLUMNS: usize = 8;

/// Immutable per-hierarchy traversal state, shared across sweep batches.
///
/// Everything a sweep needs from the [`SubjectDag`] that does **not**
/// depend on the column set lives here: the topological order and a CSR
/// (compressed sparse row) copy of the parent adjacency. The original
/// parallel driver re-derived both *per batch* — `topo_order` alone is an
/// `O(V + E)` allocation-heavy Kahn pass — which is exactly the per-query
/// graph work that Gatterbauer & Suciu's trust-mapping resolution and
/// Crampton & Sellwood's RPPM caching amortise across requests. Building
/// the context once per request (or caching it on
/// [`crate::AccessSession`]) lets every batch walk flat precomputed
/// arrays instead of re-traversing the DAG.
///
/// The CSR copy preserves the `Dag::parents` insertion order, so sweeps
/// through a context merge parent histograms in exactly the order the
/// direct traversal would — results are bit-identical. A second CSR in
/// the child direction supports the forward label-cone walks the
/// sparsity-pruned sweep path uses to find each batch's *active set*.
#[derive(Debug, Clone)]
pub struct SweepContext {
    subjects: usize,
    /// Node indexes in topological order (parents before children).
    topo: Vec<u32>,
    /// `topo_pos[v]` = position of node `v` in `topo` (for sorting an
    /// active set into sweep order without touching inactive nodes).
    topo_pos: Vec<u32>,
    /// CSR offsets into `parent_ids`; `subjects + 1` entries.
    parent_start: Vec<u32>,
    /// Concatenated parent indexes, in `Dag::parents` order.
    parent_ids: Vec<u32>,
    /// CSR offsets into `child_ids`; `subjects + 1` entries.
    child_start: Vec<u32>,
    /// Concatenated child indexes (forward direction, for cone walks).
    child_ids: Vec<u32>,
    /// The empty-column sweep: every node's *pure-default* histogram
    /// (one `Default` record per path from each root ancestor). A node
    /// with no labeled ancestor-or-self has exactly this histogram in
    /// every propagation mode, so pruned sweeps share these rows across
    /// all columns and all batches. Built lazily on the first batch that
    /// can prune; the inner `None` records a checked-arithmetic overflow
    /// during the build, which permanently disables pruning for this
    /// context (the dense path reports its own overflow if it also
    /// hits one).
    defaults: OnceLock<Option<Arc<DefaultRows>>>,
}

/// Arena-form table of per-node pure-default histograms (see
/// [`SweepContext::defaults`]). One column wide, indexed by node.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DefaultRows {
    rows: Vec<RowMeta>,
    counts: Vec<ModeCounts>,
}

impl PartialEq for SweepContext {
    fn eq(&self, other: &Self) -> bool {
        // The default-rows cache is derived state (and filled lazily),
        // so equality is over the traversal arrays only.
        self.subjects == other.subjects
            && self.topo == other.topo
            && self.parent_start == other.parent_start
            && self.parent_ids == other.parent_ids
    }
}

impl Eq for SweepContext {}

impl SweepContext {
    /// Builds the shared traversal state for `hierarchy` in one
    /// `O(V + E)` pass.
    pub fn new(hierarchy: &SubjectDag) -> SweepContext {
        let dag = hierarchy.graph();
        let n = dag.node_count();
        let topo: Vec<u32> = traverse::topo_order(dag)
            .into_iter()
            .map(|v| v.index() as u32)
            .collect();
        let mut topo_pos = vec![0u32; n];
        for (i, &v) in topo.iter().enumerate() {
            topo_pos[v as usize] = i as u32;
        }
        let mut parent_start = Vec::with_capacity(n + 1);
        let mut parent_ids = Vec::with_capacity(dag.edge_count());
        parent_start.push(0);
        for v in dag.nodes() {
            parent_ids.extend(dag.parents(v).iter().map(|p| p.index() as u32));
            parent_start.push(parent_ids.len() as u32);
        }
        // Invert the parent CSR into a child CSR by counting sort.
        let mut child_start = vec![0u32; n + 1];
        for &p in &parent_ids {
            child_start[p as usize + 1] += 1;
        }
        for i in 0..n {
            child_start[i + 1] += child_start[i];
        }
        let mut cursor = child_start.clone();
        let mut child_ids = vec![0u32; parent_ids.len()];
        for v in 0..n {
            let lo = parent_start[v] as usize;
            let hi = parent_start[v + 1] as usize;
            for &p in &parent_ids[lo..hi] {
                child_ids[cursor[p as usize] as usize] = v as u32;
                cursor[p as usize] += 1;
            }
        }
        SweepContext {
            subjects: n,
            topo,
            topo_pos,
            parent_start,
            parent_ids,
            child_start,
            child_ids,
            defaults: OnceLock::new(),
        }
    }

    /// Number of subjects the context was built for.
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Bytes held by the precomputed arrays (observability; the session
    /// reports this alongside arena sizes). Lazily built default rows are
    /// included once present.
    pub fn bytes(&self) -> usize {
        let arrays = (self.topo.len()
            + self.topo_pos.len()
            + self.parent_start.len()
            + self.parent_ids.len()
            + self.child_start.len()
            + self.child_ids.len())
            * std::mem::size_of::<u32>();
        let defaults = match self.defaults.get() {
            Some(Some(d)) => {
                d.rows.len() * std::mem::size_of::<RowMeta>()
                    + d.counts.len() * std::mem::size_of::<ModeCounts>()
            }
            _ => 0,
        };
        arrays + defaults
    }

    /// The parents of node `v`, in `Dag::parents` insertion order.
    #[inline]
    fn parents(&self, v: usize) -> &[u32] {
        let lo = self.parent_start[v] as usize;
        let hi = self.parent_start[v + 1] as usize;
        &self.parent_ids[lo..hi]
    }

    /// The children of node `v` (forward cone direction).
    #[inline]
    fn children(&self, v: usize) -> &[u32] {
        let lo = self.child_start[v] as usize;
        let hi = self.child_start[v + 1] as usize;
        &self.child_ids[lo..hi]
    }

    /// The shared pure-default rows, built on first use. `None` when the
    /// empty-column sweep overflowed (pruning disabled for this context).
    fn default_rows(&self) -> Option<&Arc<DefaultRows>> {
        self.defaults
            .get_or_init(|| self.build_default_rows().ok().map(Arc::new))
            .as_ref()
    }

    /// Sweeps the empty column: every root contributes one `Default`
    /// record, nothing else exists, so the result is each node's bag of
    /// root-path lengths. Label-free propagation is identical under all
    /// three [`PropagationMode`]s (no label ever fires a mode branch).
    fn build_default_rows(&self) -> Result<DefaultRows, CoreError> {
        let labels = vec![None; self.subjects];
        let swept = FusedSweep::sweep(
            self,
            1,
            &labels,
            PropagationMode::Both,
            vec![RowMeta::default(); self.subjects],
            Vec::new(),
        )?;
        Ok(DefaultRows {
            rows: swept.rows,
            counts: swept.counts,
        })
    }

    /// The size of the union descendant cone (the *active set*) of every
    /// subject carrying an explicit label for one of `pairs` — exactly
    /// the rows a sparsity-pruned sweep of those columns computes.
    /// Dispatchers use `active_set_size × columns` as the work estimate
    /// that decides serial fallback, and `ucra lint --format json`
    /// reports it per rule.
    pub fn active_set_size(&self, eacm: &Eacm, pairs: &[(ObjectId, RightId)]) -> usize {
        let n = self.subjects;
        if n == 0 || pairs.is_empty() {
            return 0;
        }
        let wanted: std::collections::BTreeSet<(ObjectId, RightId)> =
            pairs.iter().copied().collect();
        let mut visited = vec![false; n];
        let mut worklist: Vec<u32> = Vec::new();
        for (s, o, r, _) in eacm.iter() {
            if s.index() < n && !visited[s.index()] && wanted.contains(&(o, r)) {
                visited[s.index()] = true;
                worklist.push(s.index() as u32);
            }
        }
        let mut i = 0;
        while i < worklist.len() {
            let v = worklist[i] as usize;
            i += 1;
            for &ch in self.children(v) {
                if !visited[ch as usize] {
                    visited[ch as usize] = true;
                    worklist.push(ch);
                }
            }
        }
        worklist.len()
    }
}

/// Reusable sweep buffers: the label plane, row index and arena of one
/// [`FusedSweep::compute_with`] call.
///
/// A fresh sweep allocates three growable buffers whose high-water marks
/// repeat across batches of the same hierarchy; keeping them in a scratch
/// that survives the batch turns steady-state sweeping allocation-free.
/// The parallel drivers hold one scratch per pool worker (thread-local,
/// so it also survives across *requests* on the persistent pool); serial
/// drivers reuse one across their batch loop. [`FusedSweep::recycle`]
/// returns a finished sweep's storage to the scratch.
#[derive(Debug, Default)]
pub struct SweepScratch {
    labels: Vec<Option<Mode>>,
    rows: Vec<RowMeta>,
    counts: Vec<ModeCounts>,
    columns_of: HashMap<(ObjectId, RightId), Vec<usize>>,
    /// Epoch stamps for the cone walk: `stamp[v] == epoch` means node `v`
    /// was visited during the *current* sweep's active-set computation.
    /// Bumping `epoch` invalidates every stamp at once, so steady-state
    /// cone computation neither allocates nor clears.
    stamp: Vec<u64>,
    /// The current epoch (`0` is never a valid stamp).
    epoch: u64,
    /// Labeled subjects of the current batch (cone-walk seeds), deduped
    /// via the epoch stamps.
    sources: Vec<u32>,
    /// The union active set of the current batch, in topological order.
    active: Vec<u32>,
    /// Batches recycled since the last trim decision.
    trim_clock: u32,
    /// Per-buffer high-water marks (lengths actually used) within the
    /// current trim window.
    labels_peak: usize,
    rows_peak: usize,
    counts_peak: usize,
}

/// How many recycled batches [`SweepScratch`] observes before it
/// considers shrinking over-retained buffers (see
/// [`SweepScratch::note_batch_and_trim`]).
const TRIM_WINDOW: u32 = 64;

impl SweepScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub fn new() -> SweepScratch {
        SweepScratch::default()
    }

    /// Capacity currently retained by the scratch buffers, in bytes.
    pub fn retained_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<Option<Mode>>()
            + self.rows.capacity() * std::mem::size_of::<RowMeta>()
            + self.counts.capacity() * std::mem::size_of::<ModeCounts>()
            + self.stamp.capacity() * std::mem::size_of::<u64>()
            + (self.sources.capacity() + self.active.capacity()) * std::mem::size_of::<u32>()
    }

    /// Starts a new epoch over `n` nodes: all previous stamps become
    /// stale in `O(1)`; the stamp array only ever grows to the largest
    /// hierarchy seen.
    fn begin_epoch(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
    }

    /// High-water-mark shrink: scratch buffers grow to the largest batch
    /// ever seen, which on a long-lived session pins the peak working
    /// set forever. Every [`TRIM_WINDOW`] recycled batches, any buffer
    /// whose retained capacity exceeds **twice** its high-water mark
    /// within the window is shrunk back to that mark, so memory tracks
    /// the recent workload instead of the historical maximum.
    fn note_batch_and_trim(&mut self) {
        self.labels_peak = self.labels_peak.max(self.labels.len());
        self.rows_peak = self.rows_peak.max(self.rows.len());
        self.counts_peak = self.counts_peak.max(self.counts.len());
        self.trim_clock += 1;
        if self.trim_clock < TRIM_WINDOW {
            return;
        }
        self.trim_clock = 0;
        if self.labels.capacity() > 2 * self.labels_peak {
            self.labels.shrink_to(self.labels_peak);
        }
        if self.rows.capacity() > 2 * self.rows_peak {
            self.rows.shrink_to(self.rows_peak);
        }
        if self.counts.capacity() > 2 * self.counts_peak {
            self.counts.shrink_to(self.counts_peak);
        }
        self.labels_peak = 0;
        self.rows_peak = 0;
        self.counts_peak = 0;
    }
}

thread_local! {
    /// One scratch per thread. Pool workers are persistent, so a worker's
    /// scratch survives across batches *and* across requests — steady-state
    /// parallel sweeping allocates nothing.
    static THREAD_SCRATCH: std::cell::RefCell<SweepScratch> =
        std::cell::RefCell::new(SweepScratch::new());
}

/// Runs `f` with this thread's persistent [`SweepScratch`]. Re-entrant
/// calls (none today) fall back to a fresh scratch instead of panicking.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut SweepScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut SweepScratch::new()),
    })
}

/// One arena row: the histogram of one `(subject, column)` cell, stored
/// as a dense `ModeCounts` slice covering distances `base .. base + len`.
/// `len == 0` means the empty histogram (and `offset`/`base` are
/// meaningless).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RowMeta {
    offset: usize,
    base: u32,
    len: u32,
}

/// The result of one fused multi-column sweep: for every subject × every
/// requested column, the full `allRights` distance histogram — stored
/// columnar in a single flat arena.
///
/// ```
/// use ucra_core::engine::counting::PropagationMode;
/// use ucra_core::engine::kernel::FusedSweep;
///
/// let ex = ucra_core::motivating::motivating_example();
/// let pairs = [(ex.obj, ex.read)];
/// let sweep = FusedSweep::compute(
///     &ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both,
/// ).unwrap();
/// let hist = sweep.histogram(ex.user, 0);
/// assert_eq!(hist.totals().unwrap().pos, 2); // Table 1 of the paper
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedSweep {
    subjects: usize,
    columns: usize,
    /// Row metadata, `subjects × columns`, indexed `v * columns + c`.
    rows: Vec<RowMeta>,
    /// The arena: every non-empty row's dense strata, concatenated.
    counts: Vec<ModeCounts>,
    /// `Some` when the sparsity-pruned path produced this sweep: a
    /// zero-length row then denotes a *default-only* cell served from
    /// these shared per-node default rows (not an empty histogram —
    /// empty rows cannot arise in a non-empty hierarchy, since every
    /// node has at least one root ancestor contributing a record).
    defaults: Option<Arc<DefaultRows>>,
    /// Union active-set size when the pruned path ran (`None` = dense
    /// full walk). Observability for benches and dispatch diagnostics.
    active: Option<usize>,
}

impl FusedSweep {
    /// Sweeps the full hierarchy once for a batch of `(object, right)`
    /// columns. Column `c` of the result corresponds to `pairs[c]`;
    /// duplicate pairs are computed per occurrence (callers that care
    /// deduplicate first).
    ///
    /// One-shot convenience over [`FusedSweep::compute_with`]: builds a
    /// throwaway [`SweepContext`] and [`SweepScratch`]. Drivers that sweep
    /// more than one batch should build the context once and reuse a
    /// scratch instead.
    pub fn compute(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_with(
            &SweepContext::new(hierarchy),
            eacm,
            pairs,
            mode,
            &mut SweepScratch::new(),
        )
    }

    /// Sweeps a batch of columns over a prebuilt [`SweepContext`], reusing
    /// `scratch`'s buffers for the label plane and arena.
    ///
    /// Equivalent to [`FusedSweep::compute`] (bag-identical histograms),
    /// minus the per-call `O(V + E)` traversal rebuild and steady-state
    /// allocations. When the batch's labels reach less than half the
    /// hierarchy, the sweep restricts itself to the labels' union
    /// descendant cone (see [`FusedSweep::active_subjects`]); cells
    /// outside the cone share the context's precomputed default rows.
    /// Call [`FusedSweep::recycle`] (or
    /// [`FusedSweep::into_tables_recycling`]) on the result to hand the
    /// arena storage back to `scratch` for the next batch.
    pub fn compute_with(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_impl(ctx, eacm, pairs, mode, scratch, true)
    }

    /// The dense full-walk reference: [`FusedSweep::compute_with`] with
    /// sparsity pruning disabled, materialising an arena row for every
    /// `(node, column)` cell. Benchmarks measure the pruned path against
    /// this, and differential tests pin the two paths to each other.
    pub fn compute_dense_with(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_impl(ctx, eacm, pairs, mode, scratch, false)
    }

    fn compute_impl(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
        allow_prune: bool,
    ) -> Result<FusedSweep, CoreError> {
        let n = ctx.subjects;
        let k = pairs.len();
        // Struct-of-arrays label matrix: `labels[c * n + v]`. Built by a
        // single pass over the sparse explicit matrix instead of `n × k`
        // map lookups inside the sweep. The same pass collects the
        // deduplicated labeled subjects as cone-walk seeds.
        scratch.labels.clear();
        scratch.labels.resize(n * k, None);
        scratch.columns_of.clear();
        for (c, &pair) in pairs.iter().enumerate() {
            scratch.columns_of.entry(pair).or_default().push(c);
        }
        scratch.begin_epoch(n);
        scratch.sources.clear();
        let epoch = scratch.epoch;
        for (s, o, r, sign) in eacm.iter() {
            if s.index() >= n {
                continue; // labels outside the hierarchy are unreachable
            }
            if let Some(cols) = scratch.columns_of.get(&(o, r)) {
                for &c in cols {
                    scratch.labels[c * n + s.index()] = Some(Mode::from(sign));
                }
                if scratch.stamp[s.index()] != epoch {
                    scratch.stamp[s.index()] = epoch;
                    scratch.sources.push(s.index() as u32);
                }
            }
        }
        let mut rows = std::mem::take(&mut scratch.rows);
        rows.clear();
        rows.resize(n * k, RowMeta::default());
        let mut counts = std::mem::take(&mut scratch.counts);
        counts.clear();

        // Sparsity pruning: rows outside the labels' union descendant
        // cone are pure-default and shared, so only walk the cone when it
        // is small. The seed count bounds the cone from below; batches
        // seeding a quarter of the hierarchy skip the walk entirely —
        // their cones almost always blow the half-size cap below, and on
        // near-dense batches the speculative `O(V + E)` cone walk is
        // pure overhead on top of the full sweep it fails to avoid.
        if allow_prune && k > 0 && scratch.sources.len() * 4 < n {
            let mut active = std::mem::take(&mut scratch.active);
            active.clear();
            active.extend_from_slice(&scratch.sources);
            let mut i = 0;
            while i < active.len() {
                let v = active[i] as usize;
                i += 1;
                for &ch in ctx.children(v) {
                    if scratch.stamp[ch as usize] != epoch {
                        scratch.stamp[ch as usize] = epoch;
                        active.push(ch);
                    }
                }
            }
            if active.len() * 2 < n {
                if let Some(defaults) = ctx.default_rows() {
                    let defaults = Arc::clone(defaults);
                    active.sort_unstable_by_key(|&v| ctx.topo_pos[v as usize]);
                    let swept = Self::sweep_pruned(
                        ctx,
                        k,
                        &scratch.labels,
                        mode,
                        &active,
                        &defaults,
                        rows,
                        counts,
                    );
                    scratch.active = active;
                    return swept;
                }
            }
            scratch.active = active;
        }
        Self::sweep(ctx, k, &scratch.labels, mode, rows, counts)
    }

    /// Returns this sweep's arena storage to `scratch` so the next
    /// [`FusedSweep::compute_with`] call on the same thread reuses the
    /// capacity instead of reallocating, and gives the scratch a chance
    /// to shrink over-retained buffers back to recent high-water marks.
    pub fn recycle(self, scratch: &mut SweepScratch) {
        scratch.rows = self.rows;
        scratch.counts = self.counts;
        scratch.note_batch_and_trim();
    }

    /// The fused counting recurrence: one walk of the precomputed
    /// topological order, all columns. `rows`/`counts` arrive cleared but
    /// with retained capacity from the caller's scratch.
    fn sweep(
        ctx: &SweepContext,
        columns: usize,
        labels: &[Option<Mode>],
        mode: PropagationMode,
        mut rows: Vec<RowMeta>,
        mut counts: Vec<ModeCounts>,
    ) -> Result<FusedSweep, CoreError> {
        let n = ctx.subjects;
        debug_assert_eq!(labels.len(), n * columns, "label matrix shape");
        for &v in &ctx.topo {
            let v = v as usize;
            let parents = ctx.parents(v);
            let is_root = parents.is_empty();
            for c in 0..columns {
                let own = labels[c * n + v];

                // SecondWins: an explicit label replaces every record
                // arriving from above — the row is exactly one stratum.
                if mode == PropagationMode::SecondWins {
                    if let Some(m) = own {
                        let offset = counts.len();
                        let mut cell = ModeCounts::default();
                        cell.add(m, 1)?;
                        counts.push(cell);
                        rows[v * columns + c] = RowMeta {
                            offset,
                            base: 0,
                            len: 1,
                        };
                        continue;
                    }
                }

                // Pass 1: the row's distance span from the parents' rows
                // shifted one edge down.
                let mut base = u32::MAX;
                let mut end = 0u32; // exclusive
                let mut has_inflow = false;
                for &p in parents {
                    let r = rows[p as usize * columns + c];
                    if r.len == 0 {
                        continue;
                    }
                    has_inflow = true;
                    let pb = r.base.checked_add(1).ok_or(CoreError::DistanceOverflow)?;
                    let pe = pb.checked_add(r.len).ok_or(CoreError::DistanceOverflow)?;
                    base = base.min(pb);
                    end = end.max(pe);
                }
                let own_contrib = match mode {
                    PropagationMode::Both => {
                        own.or(if is_root { Some(Mode::Default) } else { None })
                    }
                    // `own` was handled above; only the root default remains.
                    PropagationMode::SecondWins => {
                        if is_root {
                            Some(Mode::Default)
                        } else {
                            None
                        }
                    }
                    PropagationMode::FirstWins => match own {
                        Some(m) if !has_inflow => Some(m),
                        Some(_) => None,
                        None if is_root => Some(Mode::Default),
                        None => None,
                    },
                };
                if own_contrib.is_some() {
                    base = 0;
                    end = end.max(1);
                }
                if base == u32::MAX {
                    continue; // empty row
                }

                // Pass 2: reserve the dense slice at the arena tail and
                // merge. Parents' rows live strictly below `offset`, so a
                // split borrow keeps everything safe and branch-free.
                let len = end - base;
                let offset = counts.len();
                counts.resize(offset + len as usize, ModeCounts::default());
                let (head, tail) = counts.split_at_mut(offset);
                if let Some(m) = own_contrib {
                    tail[0].add(m, 1)?; // base == 0 whenever own_contrib is set
                }
                for &p in parents {
                    let r = rows[p as usize * columns + c];
                    if r.len == 0 {
                        continue;
                    }
                    let src = &head[r.offset..r.offset + r.len as usize];
                    let start = (r.base + 1 - base) as usize;
                    for (dst, s) in tail[start..start + r.len as usize].iter_mut().zip(src) {
                        dst.merge(s)?;
                    }
                }
                rows[v * columns + c] = RowMeta { offset, base, len };
            }
        }
        Ok(FusedSweep {
            subjects: n,
            columns,
            rows,
            counts,
            defaults: None,
            active: None,
        })
    }

    /// The sparsity-pruned counting recurrence: walks only `active` (the
    /// union descendant cone of the batch's labeled subjects, in
    /// topological order). Per column, a cone node is *column-active* iff
    /// it carries its own label or inherits from a column-active parent;
    /// the written rows double as that mask, since every written row is
    /// non-empty. Cells left unwritten are **exactly** the pure-default
    /// rows of `defaults` — a node with no labeled ancestor-or-self
    /// receives one `Default` record per root path in every propagation
    /// mode — so cone-boundary merges read inactive parents' histograms
    /// from `defaults` and the result is bag-identical to the full walk.
    #[allow(clippy::too_many_arguments)]
    fn sweep_pruned(
        ctx: &SweepContext,
        columns: usize,
        labels: &[Option<Mode>],
        mode: PropagationMode,
        active: &[u32],
        defaults: &Arc<DefaultRows>,
        mut rows: Vec<RowMeta>,
        mut counts: Vec<ModeCounts>,
    ) -> Result<FusedSweep, CoreError> {
        let n = ctx.subjects;
        debug_assert_eq!(labels.len(), n * columns, "label matrix shape");
        for &v in active {
            let v = v as usize;
            let parents = ctx.parents(v);
            let is_root = parents.is_empty();
            for c in 0..columns {
                let own = labels[c * n + v];
                let inherits = parents
                    .iter()
                    .any(|&p| rows[p as usize * columns + c].len != 0);
                if own.is_none() && !inherits {
                    continue; // default-only cell, served from `defaults`
                }

                // SecondWins: an explicit label replaces every record
                // arriving from above — the row is exactly one stratum.
                if mode == PropagationMode::SecondWins {
                    if let Some(m) = own {
                        let offset = counts.len();
                        let mut cell = ModeCounts::default();
                        cell.add(m, 1)?;
                        counts.push(cell);
                        rows[v * columns + c] = RowMeta {
                            offset,
                            base: 0,
                            len: 1,
                        };
                        continue;
                    }
                }

                // Pass 1: the distance span, with column-inactive parents
                // contributing their (true) default rows.
                let mut base = u32::MAX;
                let mut end = 0u32; // exclusive
                let mut has_inflow = false;
                for &p in parents {
                    let p = p as usize;
                    let mut r = rows[p * columns + c];
                    if r.len == 0 {
                        r = defaults.rows[p];
                    }
                    if r.len == 0 {
                        continue;
                    }
                    has_inflow = true;
                    let pb = r.base.checked_add(1).ok_or(CoreError::DistanceOverflow)?;
                    let pe = pb.checked_add(r.len).ok_or(CoreError::DistanceOverflow)?;
                    base = base.min(pb);
                    end = end.max(pe);
                }
                let own_contrib = match mode {
                    PropagationMode::Both => {
                        own.or(if is_root { Some(Mode::Default) } else { None })
                    }
                    // `own` was handled above; only the root default remains.
                    PropagationMode::SecondWins => {
                        if is_root {
                            Some(Mode::Default)
                        } else {
                            None
                        }
                    }
                    PropagationMode::FirstWins => match own {
                        Some(m) if !has_inflow => Some(m),
                        Some(_) => None,
                        None if is_root => Some(Mode::Default),
                        None => None,
                    },
                };
                if own_contrib.is_some() {
                    base = 0;
                    end = end.max(1);
                }
                if base == u32::MAX {
                    continue; // empty row
                }

                // Pass 2: reserve and merge, exactly as in the dense
                // walk, except default-row sources come from the shared
                // table instead of this sweep's arena.
                let len = end - base;
                let offset = counts.len();
                counts.resize(offset + len as usize, ModeCounts::default());
                let (head, tail) = counts.split_at_mut(offset);
                if let Some(m) = own_contrib {
                    tail[0].add(m, 1)?; // base == 0 whenever own_contrib is set
                }
                for &p in parents {
                    let p = p as usize;
                    let mut r = rows[p * columns + c];
                    let src: &[ModeCounts] = if r.len != 0 {
                        &head[r.offset..r.offset + r.len as usize]
                    } else {
                        r = defaults.rows[p];
                        if r.len == 0 {
                            continue;
                        }
                        &defaults.counts[r.offset..r.offset + r.len as usize]
                    };
                    let start = (r.base + 1 - base) as usize;
                    for (dst, s) in tail[start..start + r.len as usize].iter_mut().zip(src) {
                        dst.merge(s)?;
                    }
                }
                rows[v * columns + c] = RowMeta { offset, base, len };
            }
        }
        Ok(FusedSweep {
            subjects: n,
            columns,
            rows,
            counts,
            defaults: Some(Arc::clone(defaults)),
            active: Some(active.len()),
        })
    }

    /// Packs existing histogram columns into arena form (the inverse of
    /// [`FusedSweep::histogram`]; the round-trip is lossless).
    ///
    /// `columns[c][v]` is subject `v`'s histogram in column `c`; every
    /// column must have the same length.
    pub fn from_columns(columns: &[Vec<DistanceHistogram>]) -> FusedSweep {
        let k = columns.len();
        let n = columns.first().map_or(0, Vec::len);
        assert!(
            columns.iter().all(|col| col.len() == n),
            "all columns must have one row per subject"
        );
        let mut rows = vec![RowMeta::default(); n * k];
        let mut counts = Vec::new();
        for v in 0..n {
            for (c, col) in columns.iter().enumerate() {
                let h = &col[v];
                let (Some(lo), Some(hi)) = (h.min_dis(), h.max_dis()) else {
                    continue;
                };
                let offset = counts.len();
                counts.extend((lo..=hi).map(|d| h.at(d)));
                rows[v * k + c] = RowMeta {
                    offset,
                    base: lo,
                    len: hi - lo + 1,
                };
            }
        }
        FusedSweep {
            subjects: n,
            columns: k,
            rows,
            counts,
            defaults: None,
            active: None,
        }
    }

    /// Number of subjects (rows per column).
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Number of columns in the batch.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// `Some(size)` when this sweep took the sparsity-pruned path: the
    /// number of nodes in the batch's union label cone, i.e. how many
    /// rows were actually computed per column (the rest are shared
    /// default rows). `None` means the dense full walk ran.
    pub fn active_subjects(&self) -> Option<usize> {
        self.active
    }

    /// Bytes held by the arena and its row index — the figure the
    /// session's `kernel_arena_bytes` counter accumulates.
    pub fn arena_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<ModeCounts>()
            + self.rows.len() * std::mem::size_of::<RowMeta>()
    }

    /// The non-zero strata of one `(subject, column)` cell in increasing
    /// distance order — the exact stream `Resolve()` consumes.
    pub fn strata(
        &self,
        subject: SubjectId,
        column: usize,
    ) -> impl Iterator<Item = (u32, ModeCounts)> + '_ {
        let mut r = self.rows[subject.index() * self.columns + column];
        let counts: &[ModeCounts] = match &self.defaults {
            // Pruned sweep: an unwritten row is a default-only cell
            // served from the shared per-node default table (real rows
            // are never empty, so `len == 0` is unambiguous).
            Some(d) if r.len == 0 => {
                r = d.rows[subject.index()];
                &d.counts
            }
            _ => &self.counts,
        };
        counts[r.offset..r.offset + r.len as usize]
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(move |(i, &c)| (r.base + i as u32, c))
    }

    /// The cell's histogram in the classic sparse representation.
    pub fn histogram(&self, subject: SubjectId, column: usize) -> DistanceHistogram {
        let mut h = DistanceHistogram::new();
        for (dis, c) in self.strata(subject, column) {
            for mode in [Mode::Pos, Mode::Neg, Mode::Default] {
                h.add(dis, mode, c.get(mode))
                    .expect("arena counts were checked when the row was built");
            }
        }
        h
    }

    /// Resolves one cell under `strategy`, straight from the arena.
    pub fn resolve(
        &self,
        subject: SubjectId,
        column: usize,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        resolve_strata(self.strata(subject, column), strategy)
    }

    /// The effective sign of every subject in one column.
    ///
    /// On a pruned sweep, default-only cells short-circuit to
    /// [`Strategy::default_only_sign`] — a pure-default histogram always
    /// resolves to that closed form — so the per-subject cost is `O(1)`
    /// outside the label cone.
    pub fn signs(&self, column: usize, strategy: Strategy) -> Result<Vec<Sign>, CoreError> {
        let default_sign = self.defaults.as_ref().map(|_| strategy.default_only_sign());
        (0..self.subjects)
            .map(|i| {
                if let Some(sign) = default_sign {
                    if self.rows[i * self.columns + column].len == 0 {
                        return Ok(sign);
                    }
                }
                Ok(self
                    .resolve(SubjectId::from_index(i), column, strategy)?
                    .sign)
            })
            .collect()
    }

    /// One column as a plain histogram table (the shape the sweep caches
    /// store).
    pub fn table(&self, column: usize) -> Vec<DistanceHistogram> {
        (0..self.subjects)
            .map(|i| self.histogram(SubjectId::from_index(i), column))
            .collect()
    }

    /// All columns as histogram tables, `tables[c][v]`.
    pub fn into_tables(self) -> Vec<Vec<DistanceHistogram>> {
        (0..self.columns).map(|c| self.table(c)).collect()
    }

    /// [`FusedSweep::into_tables`] that also hands the arena storage back
    /// to `scratch` — the shape batch drivers want: extract the cacheable
    /// tables, keep the buffers warm for the next batch.
    pub fn into_tables_recycling(self, scratch: &mut SweepScratch) -> Vec<Vec<DistanceHistogram>> {
        let tables = (0..self.columns).map(|c| self.table(c)).collect();
        self.recycle(scratch);
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::counting;
    use crate::motivating::motivating_example;

    const MODES: [PropagationMode; 3] = [
        PropagationMode::Both,
        PropagationMode::SecondWins,
        PropagationMode::FirstWins,
    ];

    #[test]
    fn single_column_matches_legacy_sweep_in_every_mode() {
        let ex = motivating_example();
        for mode in MODES {
            let fused =
                FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[(ex.obj, ex.read)], mode).unwrap();
            let legacy =
                counting::histograms_all_reference(&ex.hierarchy, &ex.eacm, ex.obj, ex.read, mode)
                    .unwrap();
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    fused.histogram(s, 0),
                    legacy[s.index()],
                    "mode {mode:?}, {s}"
                );
            }
        }
    }

    #[test]
    fn multi_column_batch_matches_per_column_sweeps() {
        let ex = motivating_example();
        let pairs: Vec<_> = (0..5).map(|o| (ObjectId(o), ex.read)).collect();
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        assert_eq!(fused.columns(), 5);
        for (c, &(o, r)) in pairs.iter().enumerate() {
            let legacy =
                counting::histograms_all(&ex.hierarchy, &ex.eacm, o, r, PropagationMode::Both)
                    .unwrap();
            assert_eq!(fused.table(c), legacy, "column {c}");
        }
    }

    #[test]
    fn round_trip_through_columns_is_lossless() {
        let ex = motivating_example();
        let pairs = [(ex.obj, ex.read), (ObjectId(9), ex.read)];
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        let tables = fused.clone().into_tables();
        let packed = FusedSweep::from_columns(&tables);
        for c in 0..pairs.len() {
            for s in ex.hierarchy.subjects() {
                assert_eq!(packed.histogram(s, c), fused.histogram(s, c));
            }
        }
    }

    #[test]
    fn resolve_from_arena_matches_resolve_histogram() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        for s in ex.hierarchy.subjects() {
            let hist = fused.histogram(s, 0);
            for strategy in Strategy::all_instances() {
                assert_eq!(
                    fused.resolve(s, 0, strategy).unwrap(),
                    crate::resolve::resolve_histogram(&hist, strategy).unwrap(),
                    "subject {s}, strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_hierarchy_are_fine() {
        let ex = motivating_example();
        let empty_batch =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[], PropagationMode::Both).unwrap();
        assert_eq!(empty_batch.columns(), 0);
        assert_eq!(empty_batch.subjects(), ex.hierarchy.subject_count());

        let empty = FusedSweep::compute(
            &SubjectDag::new(),
            &Eacm::new(),
            &[(ObjectId(0), RightId(0))],
            PropagationMode::Both,
        )
        .unwrap();
        assert_eq!(empty.subjects(), 0);
        assert!(empty.into_tables()[0].is_empty());
    }

    #[test]
    fn exponential_path_counts_stay_exact() {
        // 100 stacked diamonds: 2^100 paths, counted exactly in the
        // arena just as in the BTreeMap engine.
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..100 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(first, o, r).unwrap();
        let fused = FusedSweep::compute(&h, &eacm, &[(o, r)], PropagationMode::Both).unwrap();
        assert_eq!(fused.histogram(top, 0).at(200).pos, 1u128 << 100);
    }

    #[test]
    fn counting_overflow_is_an_error() {
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..128 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let mut eacm = Eacm::new();
        eacm.grant(first, ObjectId(0), RightId(0)).unwrap();
        assert_eq!(
            FusedSweep::compute(
                &h,
                &eacm,
                &[(ObjectId(0), RightId(0))],
                PropagationMode::Both
            ),
            Err(CoreError::PathCountOverflow)
        );
    }

    #[test]
    fn shared_context_and_recycled_scratch_match_one_shot_compute() {
        let ex = motivating_example();
        let ctx = SweepContext::new(&ex.hierarchy);
        assert_eq!(ctx.subjects(), ex.hierarchy.subject_count());
        assert!(ctx.bytes() > 0);
        let mut scratch = SweepScratch::new();
        // Batches of different widths, all modes, through ONE context and
        // ONE scratch — each must equal the one-shot path bit-for-bit.
        for mode in MODES {
            for width in [1usize, 3, 5] {
                let pairs: Vec<_> = (0..width).map(|o| (ObjectId(o as u32), ex.read)).collect();
                let shared =
                    FusedSweep::compute_with(&ctx, &ex.eacm, &pairs, mode, &mut scratch).unwrap();
                let fresh = FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, mode).unwrap();
                assert_eq!(shared, fresh, "mode {mode:?}, width {width}");
                shared.recycle(&mut scratch);
            }
        }
        // After the first growth the scratch retains its high-water marks.
        assert!(scratch.retained_bytes() > 0);
    }

    #[test]
    fn into_tables_recycling_matches_into_tables() {
        let ex = motivating_example();
        let ctx = SweepContext::new(&ex.hierarchy);
        let mut scratch = SweepScratch::new();
        let pairs = [(ex.obj, ex.read), (ObjectId(2), ex.read)];
        let a =
            FusedSweep::compute_with(&ctx, &ex.eacm, &pairs, PropagationMode::Both, &mut scratch)
                .unwrap();
        let tables = a.into_tables_recycling(&mut scratch);
        let b =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        assert_eq!(tables, b.into_tables());
        assert!(scratch.retained_bytes() > 0);
    }

    /// A deep forest where labels touch only one small subtree: the
    /// canonical shape the sparsity pruning targets. Returns the
    /// hierarchy, a matrix with labels confined to the first chain, and
    /// the label's cone size.
    fn sparse_forest() -> (SubjectDag, Eacm, usize) {
        let mut h = SubjectDag::new();
        // 8 disjoint chains of 32 nodes each.
        let mut chains = Vec::new();
        for _ in 0..8 {
            let ids = h.add_subjects(32);
            for w in ids.windows(2) {
                h.add_membership(w[0], w[1]).unwrap();
            }
            chains.push(ids);
        }
        // One label at depth 8 of chain 0: its cone is the 24 nodes below
        // (plus itself), out of 256 total.
        let mut eacm = Eacm::new();
        eacm.grant(chains[0][8], ObjectId(0), RightId(0)).unwrap();
        (h, eacm, 32 - 8)
    }

    #[test]
    fn pruned_sweep_engages_and_matches_dense_walk() {
        let (h, eacm, cone) = sparse_forest();
        let ctx = SweepContext::new(&h);
        let pairs = [(ObjectId(0), RightId(0)), (ObjectId(1), RightId(1))];
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let pruned = FusedSweep::compute_with(&ctx, &eacm, &pairs, mode, &mut scratch).unwrap();
            assert_eq!(
                pruned.active_subjects(),
                Some(cone),
                "mode {mode:?}: pruning should walk exactly the label cone"
            );
            let dense =
                FusedSweep::compute_dense_with(&ctx, &eacm, &pairs, mode, &mut SweepScratch::new())
                    .unwrap();
            assert_eq!(dense.active_subjects(), None);
            for c in 0..pairs.len() {
                assert_eq!(pruned.table(c), dense.table(c), "mode {mode:?} column {c}");
                for strategy in Strategy::all_instances() {
                    assert_eq!(
                        pruned.signs(c, strategy).unwrap(),
                        dense.signs(c, strategy).unwrap(),
                        "mode {mode:?} column {c} strategy {strategy}"
                    );
                }
            }
            pruned.recycle(&mut scratch);
        }
    }

    #[test]
    fn dense_batches_skip_pruning() {
        // Labels on more than half the subjects: the seed bound already
        // rules pruning out, so the dense walk runs.
        let ex = motivating_example();
        let mut eacm = Eacm::new();
        for s in ex.hierarchy.subjects() {
            eacm.grant(s, ex.obj, ex.read).unwrap();
        }
        let ctx = SweepContext::new(&ex.hierarchy);
        let swept = FusedSweep::compute_with(
            &ctx,
            &eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
            &mut SweepScratch::new(),
        )
        .unwrap();
        assert_eq!(swept.active_subjects(), None);
    }

    #[test]
    fn active_set_size_counts_the_union_cone() {
        let (h, eacm, cone) = sparse_forest();
        let ctx = SweepContext::new(&h);
        assert_eq!(
            ctx.active_set_size(&eacm, &[(ObjectId(0), RightId(0))]),
            cone
        );
        // A column with no labels has an empty active set; unioning it
        // changes nothing.
        assert_eq!(ctx.active_set_size(&eacm, &[(ObjectId(9), RightId(9))]), 0);
        assert_eq!(
            ctx.active_set_size(
                &eacm,
                &[(ObjectId(0), RightId(0)), (ObjectId(9), RightId(9))]
            ),
            cone
        );
        assert_eq!(ctx.active_set_size(&eacm, &[]), 0);
    }

    #[test]
    fn scratch_trims_back_to_recent_high_water_marks() {
        let (h, eacm, _) = sparse_forest();
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        // One wide dense batch inflates the arena buffers…
        let wide: Vec<_> = (0..16).map(|o| (ObjectId(o), RightId(0))).collect();
        FusedSweep::compute_dense_with(&ctx, &eacm, &wide, PropagationMode::Both, &mut scratch)
            .unwrap()
            .recycle(&mut scratch);
        let inflated = scratch.retained_bytes();
        // …then > TRIM_WINDOW narrow batches shrink them back toward the
        // narrow working set.
        let narrow = [(ObjectId(0), RightId(0))];
        for _ in 0..(2 * TRIM_WINDOW) {
            FusedSweep::compute_dense_with(
                &ctx,
                &eacm,
                &narrow,
                PropagationMode::Both,
                &mut scratch,
            )
            .unwrap()
            .recycle(&mut scratch);
        }
        assert!(
            scratch.retained_bytes() < inflated,
            "retained {} bytes, expected less than the inflated {} bytes",
            scratch.retained_bytes(),
            inflated
        );
    }

    #[test]
    fn arena_bytes_reports_the_flat_layout() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        // Rows index + at least one stratum of real data.
        assert!(fused.arena_bytes() > std::mem::size_of::<ModeCounts>());
    }
}
