//! The columnar fused-sweep kernel: flat arena histograms + multi-column
//! batched propagation.
//!
//! ## Why
//!
//! The original counting sweep ([`crate::engine::counting`]) is correct
//! and polynomial, but its hot path is allocation-bound: every
//! `(object, right)` column walks the whole DAG building a fresh
//! `BTreeMap<u32, ModeCounts>` per node — one heap allocation per stratum
//! per node per column, plus pointer-chasing tree merges on every
//! parent-to-child transfer. Caching work (Crampton & Sellwood's RPPM
//! line) shows these systems win by reusing partial decision state; this
//! kernel applies the same lesson to the sweep's *memory layout* and
//! *scheduling*:
//!
//! 1. **Flat arena histograms.** A node's histogram in a sweep always
//!    occupies a contiguous distance span `[base, base + len)` — the
//!    union of its parents' spans shifted by one, plus distance 0 for an
//!    own label or root default. So per `(node, column)` row we store
//!    only `(offset, base, len)` into one shared `Vec<ModeCounts>` arena:
//!    zero per-node allocation, dense sequential merges, and a lossless
//!    round-trip to/from [`DistanceHistogram`].
//! 2. **Fused multi-column sweeps.** One topological walk serves a whole
//!    batch of `(object, right)` columns in struct-of-arrays layout: the
//!    `topo_order` / `parents()` traversal cost — and its cache misses —
//!    are amortised over every column in the batch.
//! 3. **Resolution without materialisation.** `Resolve()` only iterates
//!    strata in distance order, so [`FusedSweep::resolve`] reads arena
//!    rows directly; the full-matrix path never builds a `BTreeMap` at
//!    all.
//!
//! Parallel scheduling over batches lives in [`crate::pool`]; the
//! equivalence of this kernel with the per-path engine and the legacy
//! sweep is asserted by `tests/kernel_equivalence.rs` for all 48
//! strategies and all three [`PropagationMode`]s.

use crate::engine::counting::PropagationMode;
use crate::engine::{DistanceHistogram, ModeCounts};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::{Mode, Sign};
use crate::resolve::{resolve_strata, Resolution};
use crate::strategy::Strategy;
use std::collections::HashMap;
use ucra_graph::{traverse, Dag};

/// Default number of columns fused into one sweep batch. Bounds the
/// arena's working set while still amortising the topological walk; the
/// parallel drivers split larger pair lists into batches of this size.
pub const DEFAULT_BATCH_COLUMNS: usize = 8;

/// One arena row: the histogram of one `(subject, column)` cell, stored
/// as a dense `ModeCounts` slice covering distances `base .. base + len`.
/// `len == 0` means the empty histogram (and `offset`/`base` are
/// meaningless).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RowMeta {
    offset: usize,
    base: u32,
    len: u32,
}

/// The result of one fused multi-column sweep: for every subject × every
/// requested column, the full `allRights` distance histogram — stored
/// columnar in a single flat arena.
///
/// ```
/// use ucra_core::engine::counting::PropagationMode;
/// use ucra_core::engine::kernel::FusedSweep;
///
/// let ex = ucra_core::motivating::motivating_example();
/// let pairs = [(ex.obj, ex.read)];
/// let sweep = FusedSweep::compute(
///     &ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both,
/// ).unwrap();
/// let hist = sweep.histogram(ex.user, 0);
/// assert_eq!(hist.totals().unwrap().pos, 2); // Table 1 of the paper
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedSweep {
    subjects: usize,
    columns: usize,
    /// Row metadata, `subjects × columns`, indexed `v * columns + c`.
    rows: Vec<RowMeta>,
    /// The arena: every non-empty row's dense strata, concatenated.
    counts: Vec<ModeCounts>,
}

impl FusedSweep {
    /// Sweeps the full hierarchy once for a batch of `(object, right)`
    /// columns. Column `c` of the result corresponds to `pairs[c]`;
    /// duplicate pairs are computed per occurrence (callers that care
    /// deduplicate first).
    pub fn compute(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
    ) -> Result<FusedSweep, CoreError> {
        let dag = hierarchy.graph();
        let n = dag.node_count();
        let k = pairs.len();
        // Struct-of-arrays label matrix: `labels[c * n + v]`. Built by a
        // single pass over the sparse explicit matrix instead of `n × k`
        // map lookups inside the sweep.
        let mut labels: Vec<Option<Mode>> = vec![None; n * k];
        let mut columns_of: HashMap<(ObjectId, RightId), Vec<usize>> = HashMap::new();
        for (c, &pair) in pairs.iter().enumerate() {
            columns_of.entry(pair).or_default().push(c);
        }
        for (s, o, r, sign) in eacm.iter() {
            if s.index() >= n {
                continue; // labels outside the hierarchy are unreachable
            }
            if let Some(cols) = columns_of.get(&(o, r)) {
                for &c in cols {
                    labels[c * n + s.index()] = Some(Mode::from(sign));
                }
            }
        }
        Self::sweep(dag, k, &labels, mode)
    }

    /// The fused counting recurrence: one topological walk, all columns.
    fn sweep(
        dag: &Dag,
        columns: usize,
        labels: &[Option<Mode>],
        mode: PropagationMode,
    ) -> Result<FusedSweep, CoreError> {
        let n = dag.node_count();
        debug_assert_eq!(labels.len(), n * columns, "label matrix shape");
        let mut rows = vec![RowMeta::default(); n * columns];
        let mut counts: Vec<ModeCounts> = Vec::new();
        for v in traverse::topo_order(dag) {
            let parents = dag.parents(v);
            let is_root = parents.is_empty();
            for c in 0..columns {
                let own = labels[c * n + v.index()];

                // SecondWins: an explicit label replaces every record
                // arriving from above — the row is exactly one stratum.
                if mode == PropagationMode::SecondWins {
                    if let Some(m) = own {
                        let offset = counts.len();
                        let mut cell = ModeCounts::default();
                        cell.add(m, 1)?;
                        counts.push(cell);
                        rows[v.index() * columns + c] = RowMeta {
                            offset,
                            base: 0,
                            len: 1,
                        };
                        continue;
                    }
                }

                // Pass 1: the row's distance span from the parents' rows
                // shifted one edge down.
                let mut base = u32::MAX;
                let mut end = 0u32; // exclusive
                let mut has_inflow = false;
                for &p in parents {
                    let r = rows[p.index() * columns + c];
                    if r.len == 0 {
                        continue;
                    }
                    has_inflow = true;
                    let pb = r.base.checked_add(1).ok_or(CoreError::DistanceOverflow)?;
                    let pe = pb.checked_add(r.len).ok_or(CoreError::DistanceOverflow)?;
                    base = base.min(pb);
                    end = end.max(pe);
                }
                let own_contrib = match mode {
                    PropagationMode::Both => {
                        own.or(if is_root { Some(Mode::Default) } else { None })
                    }
                    // `own` was handled above; only the root default remains.
                    PropagationMode::SecondWins => {
                        if is_root {
                            Some(Mode::Default)
                        } else {
                            None
                        }
                    }
                    PropagationMode::FirstWins => match own {
                        Some(m) if !has_inflow => Some(m),
                        Some(_) => None,
                        None if is_root => Some(Mode::Default),
                        None => None,
                    },
                };
                if own_contrib.is_some() {
                    base = 0;
                    end = end.max(1);
                }
                if base == u32::MAX {
                    continue; // empty row
                }

                // Pass 2: reserve the dense slice at the arena tail and
                // merge. Parents' rows live strictly below `offset`, so a
                // split borrow keeps everything safe and branch-free.
                let len = end - base;
                let offset = counts.len();
                counts.resize(offset + len as usize, ModeCounts::default());
                let (head, tail) = counts.split_at_mut(offset);
                if let Some(m) = own_contrib {
                    tail[0].add(m, 1)?; // base == 0 whenever own_contrib is set
                }
                for &p in parents {
                    let r = rows[p.index() * columns + c];
                    if r.len == 0 {
                        continue;
                    }
                    let src = &head[r.offset..r.offset + r.len as usize];
                    let start = (r.base + 1 - base) as usize;
                    for (dst, s) in tail[start..start + r.len as usize].iter_mut().zip(src) {
                        dst.merge(s)?;
                    }
                }
                rows[v.index() * columns + c] = RowMeta { offset, base, len };
            }
        }
        Ok(FusedSweep {
            subjects: n,
            columns,
            rows,
            counts,
        })
    }

    /// Packs existing histogram columns into arena form (the inverse of
    /// [`FusedSweep::histogram`]; the round-trip is lossless).
    ///
    /// `columns[c][v]` is subject `v`'s histogram in column `c`; every
    /// column must have the same length.
    pub fn from_columns(columns: &[Vec<DistanceHistogram>]) -> FusedSweep {
        let k = columns.len();
        let n = columns.first().map_or(0, Vec::len);
        assert!(
            columns.iter().all(|col| col.len() == n),
            "all columns must have one row per subject"
        );
        let mut rows = vec![RowMeta::default(); n * k];
        let mut counts = Vec::new();
        for v in 0..n {
            for (c, col) in columns.iter().enumerate() {
                let h = &col[v];
                let (Some(lo), Some(hi)) = (h.min_dis(), h.max_dis()) else {
                    continue;
                };
                let offset = counts.len();
                counts.extend((lo..=hi).map(|d| h.at(d)));
                rows[v * k + c] = RowMeta {
                    offset,
                    base: lo,
                    len: hi - lo + 1,
                };
            }
        }
        FusedSweep {
            subjects: n,
            columns: k,
            rows,
            counts,
        }
    }

    /// Number of subjects (rows per column).
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Number of columns in the batch.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Bytes held by the arena and its row index — the figure the
    /// session's `kernel_arena_bytes` counter accumulates.
    pub fn arena_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<ModeCounts>()
            + self.rows.len() * std::mem::size_of::<RowMeta>()
    }

    /// The non-zero strata of one `(subject, column)` cell in increasing
    /// distance order — the exact stream `Resolve()` consumes.
    pub fn strata(
        &self,
        subject: SubjectId,
        column: usize,
    ) -> impl Iterator<Item = (u32, ModeCounts)> + '_ {
        let r = self.rows[subject.index() * self.columns + column];
        self.counts[r.offset..r.offset + r.len as usize]
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(move |(i, &c)| (r.base + i as u32, c))
    }

    /// The cell's histogram in the classic sparse representation.
    pub fn histogram(&self, subject: SubjectId, column: usize) -> DistanceHistogram {
        let mut h = DistanceHistogram::new();
        for (dis, c) in self.strata(subject, column) {
            for mode in [Mode::Pos, Mode::Neg, Mode::Default] {
                h.add(dis, mode, c.get(mode))
                    .expect("arena counts were checked when the row was built");
            }
        }
        h
    }

    /// Resolves one cell under `strategy`, straight from the arena.
    pub fn resolve(
        &self,
        subject: SubjectId,
        column: usize,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        resolve_strata(self.strata(subject, column), strategy)
    }

    /// The effective sign of every subject in one column.
    pub fn signs(&self, column: usize, strategy: Strategy) -> Result<Vec<Sign>, CoreError> {
        (0..self.subjects)
            .map(|i| {
                Ok(self
                    .resolve(SubjectId::from_index(i), column, strategy)?
                    .sign)
            })
            .collect()
    }

    /// One column as a plain histogram table (the shape the sweep caches
    /// store).
    pub fn table(&self, column: usize) -> Vec<DistanceHistogram> {
        (0..self.subjects)
            .map(|i| self.histogram(SubjectId::from_index(i), column))
            .collect()
    }

    /// All columns as histogram tables, `tables[c][v]`.
    pub fn into_tables(self) -> Vec<Vec<DistanceHistogram>> {
        (0..self.columns).map(|c| self.table(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::counting;
    use crate::motivating::motivating_example;

    const MODES: [PropagationMode; 3] = [
        PropagationMode::Both,
        PropagationMode::SecondWins,
        PropagationMode::FirstWins,
    ];

    #[test]
    fn single_column_matches_legacy_sweep_in_every_mode() {
        let ex = motivating_example();
        for mode in MODES {
            let fused =
                FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[(ex.obj, ex.read)], mode).unwrap();
            let legacy =
                counting::histograms_all_reference(&ex.hierarchy, &ex.eacm, ex.obj, ex.read, mode)
                    .unwrap();
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    fused.histogram(s, 0),
                    legacy[s.index()],
                    "mode {mode:?}, {s}"
                );
            }
        }
    }

    #[test]
    fn multi_column_batch_matches_per_column_sweeps() {
        let ex = motivating_example();
        let pairs: Vec<_> = (0..5).map(|o| (ObjectId(o), ex.read)).collect();
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        assert_eq!(fused.columns(), 5);
        for (c, &(o, r)) in pairs.iter().enumerate() {
            let legacy =
                counting::histograms_all(&ex.hierarchy, &ex.eacm, o, r, PropagationMode::Both)
                    .unwrap();
            assert_eq!(fused.table(c), legacy, "column {c}");
        }
    }

    #[test]
    fn round_trip_through_columns_is_lossless() {
        let ex = motivating_example();
        let pairs = [(ex.obj, ex.read), (ObjectId(9), ex.read)];
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        let tables = fused.clone().into_tables();
        let packed = FusedSweep::from_columns(&tables);
        for c in 0..pairs.len() {
            for s in ex.hierarchy.subjects() {
                assert_eq!(packed.histogram(s, c), fused.histogram(s, c));
            }
        }
    }

    #[test]
    fn resolve_from_arena_matches_resolve_histogram() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        for s in ex.hierarchy.subjects() {
            let hist = fused.histogram(s, 0);
            for strategy in Strategy::all_instances() {
                assert_eq!(
                    fused.resolve(s, 0, strategy).unwrap(),
                    crate::resolve::resolve_histogram(&hist, strategy).unwrap(),
                    "subject {s}, strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_hierarchy_are_fine() {
        let ex = motivating_example();
        let empty_batch =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[], PropagationMode::Both).unwrap();
        assert_eq!(empty_batch.columns(), 0);
        assert_eq!(empty_batch.subjects(), ex.hierarchy.subject_count());

        let empty = FusedSweep::compute(
            &SubjectDag::new(),
            &Eacm::new(),
            &[(ObjectId(0), RightId(0))],
            PropagationMode::Both,
        )
        .unwrap();
        assert_eq!(empty.subjects(), 0);
        assert!(empty.into_tables()[0].is_empty());
    }

    #[test]
    fn exponential_path_counts_stay_exact() {
        // 100 stacked diamonds: 2^100 paths, counted exactly in the
        // arena just as in the BTreeMap engine.
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..100 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(first, o, r).unwrap();
        let fused = FusedSweep::compute(&h, &eacm, &[(o, r)], PropagationMode::Both).unwrap();
        assert_eq!(fused.histogram(top, 0).at(200).pos, 1u128 << 100);
    }

    #[test]
    fn counting_overflow_is_an_error() {
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..128 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let mut eacm = Eacm::new();
        eacm.grant(first, ObjectId(0), RightId(0)).unwrap();
        assert_eq!(
            FusedSweep::compute(
                &h,
                &eacm,
                &[(ObjectId(0), RightId(0))],
                PropagationMode::Both
            ),
            Err(CoreError::PathCountOverflow)
        );
    }

    #[test]
    fn arena_bytes_reports_the_flat_layout() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        // Rows index + at least one stratum of real data.
        assert!(fused.arena_bytes() > std::mem::size_of::<ModeCounts>());
    }
}
