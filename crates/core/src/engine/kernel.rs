//! The columnar fused-sweep kernel: flat arena histograms + multi-column
//! batched propagation.
//!
//! ## Why
//!
//! The original counting sweep ([`crate::engine::counting`]) is correct
//! and polynomial, but its hot path is allocation-bound: every
//! `(object, right)` column walks the whole DAG building a fresh
//! `BTreeMap<u32, ModeCounts>` per node — one heap allocation per stratum
//! per node per column, plus pointer-chasing tree merges on every
//! parent-to-child transfer. Caching work (Crampton & Sellwood's RPPM
//! line) shows these systems win by reusing partial decision state; this
//! kernel applies the same lesson to the sweep's *memory layout* and
//! *scheduling*:
//!
//! 1. **Flat arena histograms.** A node's histogram in a sweep always
//!    occupies a contiguous distance span `[base, base + len)` — the
//!    union of its parents' spans shifted by one, plus distance 0 for an
//!    own label or root default. So per `(node, column)` row we store
//!    only `(offset, base, len)` into one shared `Vec<ModeCounts>` arena:
//!    zero per-node allocation, dense sequential merges, and a lossless
//!    round-trip to/from [`DistanceHistogram`].
//! 2. **Fused multi-column sweeps.** One topological walk serves a whole
//!    batch of `(object, right)` columns in struct-of-arrays layout: the
//!    `topo_order` / `parents()` traversal cost — and its cache misses —
//!    are amortised over every column in the batch.
//! 3. **Resolution without materialisation.** `Resolve()` only iterates
//!    strata in distance order, so [`FusedSweep::resolve`] reads arena
//!    rows directly; the full-matrix path never builds a `BTreeMap` at
//!    all.
//!
//! Parallel scheduling over batches lives in [`crate::pool`]; the
//! equivalence of this kernel with the per-path engine and the legacy
//! sweep is asserted by `tests/kernel_equivalence.rs` for all 48
//! strategies and all three [`PropagationMode`]s.

use crate::engine::counting::PropagationMode;
use crate::engine::{DistanceHistogram, ModeCounts};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::{Mode, Sign};
use crate::resolve::{resolve_strata, Resolution};
use crate::strategy::Strategy;
use std::collections::HashMap;
use ucra_graph::traverse;

/// Default number of columns fused into one sweep batch. Bounds the
/// arena's working set while still amortising the topological walk; the
/// parallel drivers split larger pair lists into batches of this size.
pub const DEFAULT_BATCH_COLUMNS: usize = 8;

/// Immutable per-hierarchy traversal state, shared across sweep batches.
///
/// Everything a sweep needs from the [`SubjectDag`] that does **not**
/// depend on the column set lives here: the topological order and a CSR
/// (compressed sparse row) copy of the parent adjacency. The original
/// parallel driver re-derived both *per batch* — `topo_order` alone is an
/// `O(V + E)` allocation-heavy Kahn pass — which is exactly the per-query
/// graph work that Gatterbauer & Suciu's trust-mapping resolution and
/// Crampton & Sellwood's RPPM caching amortise across requests. Building
/// the context once per request (or caching it on
/// [`crate::AccessSession`]) lets every batch walk flat precomputed
/// arrays instead of re-traversing the DAG.
///
/// The CSR copy preserves the `Dag::parents` insertion order, so sweeps
/// through a context merge parent histograms in exactly the order the
/// direct traversal would — results are bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepContext {
    subjects: usize,
    /// Node indexes in topological order (parents before children).
    topo: Vec<u32>,
    /// CSR offsets into `parent_ids`; `subjects + 1` entries.
    parent_start: Vec<u32>,
    /// Concatenated parent indexes, in `Dag::parents` order.
    parent_ids: Vec<u32>,
}

impl SweepContext {
    /// Builds the shared traversal state for `hierarchy` in one
    /// `O(V + E)` pass.
    pub fn new(hierarchy: &SubjectDag) -> SweepContext {
        let dag = hierarchy.graph();
        let n = dag.node_count();
        let topo = traverse::topo_order(dag)
            .into_iter()
            .map(|v| v.index() as u32)
            .collect();
        let mut parent_start = Vec::with_capacity(n + 1);
        let mut parent_ids = Vec::with_capacity(dag.edge_count());
        parent_start.push(0);
        for v in dag.nodes() {
            parent_ids.extend(dag.parents(v).iter().map(|p| p.index() as u32));
            parent_start.push(parent_ids.len() as u32);
        }
        SweepContext {
            subjects: n,
            topo,
            parent_start,
            parent_ids,
        }
    }

    /// Number of subjects the context was built for.
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Bytes held by the precomputed arrays (observability; the session
    /// reports this alongside arena sizes).
    pub fn bytes(&self) -> usize {
        (self.topo.len() + self.parent_start.len() + self.parent_ids.len())
            * std::mem::size_of::<u32>()
    }

    /// The parents of node `v`, in `Dag::parents` insertion order.
    #[inline]
    fn parents(&self, v: usize) -> &[u32] {
        let lo = self.parent_start[v] as usize;
        let hi = self.parent_start[v + 1] as usize;
        &self.parent_ids[lo..hi]
    }
}

/// Reusable sweep buffers: the label plane, row index and arena of one
/// [`FusedSweep::compute_with`] call.
///
/// A fresh sweep allocates three growable buffers whose high-water marks
/// repeat across batches of the same hierarchy; keeping them in a scratch
/// that survives the batch turns steady-state sweeping allocation-free.
/// The parallel drivers hold one scratch per pool worker (thread-local,
/// so it also survives across *requests* on the persistent pool); serial
/// drivers reuse one across their batch loop. [`FusedSweep::recycle`]
/// returns a finished sweep's storage to the scratch.
#[derive(Debug, Default)]
pub struct SweepScratch {
    labels: Vec<Option<Mode>>,
    rows: Vec<RowMeta>,
    counts: Vec<ModeCounts>,
    columns_of: HashMap<(ObjectId, RightId), Vec<usize>>,
}

impl SweepScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub fn new() -> SweepScratch {
        SweepScratch::default()
    }

    /// Capacity currently retained by the scratch buffers, in bytes.
    pub fn retained_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<Option<Mode>>()
            + self.rows.capacity() * std::mem::size_of::<RowMeta>()
            + self.counts.capacity() * std::mem::size_of::<ModeCounts>()
    }
}

thread_local! {
    /// One scratch per thread. Pool workers are persistent, so a worker's
    /// scratch survives across batches *and* across requests — steady-state
    /// parallel sweeping allocates nothing.
    static THREAD_SCRATCH: std::cell::RefCell<SweepScratch> =
        std::cell::RefCell::new(SweepScratch::new());
}

/// Runs `f` with this thread's persistent [`SweepScratch`]. Re-entrant
/// calls (none today) fall back to a fresh scratch instead of panicking.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut SweepScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut SweepScratch::new()),
    })
}

/// One arena row: the histogram of one `(subject, column)` cell, stored
/// as a dense `ModeCounts` slice covering distances `base .. base + len`.
/// `len == 0` means the empty histogram (and `offset`/`base` are
/// meaningless).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RowMeta {
    offset: usize,
    base: u32,
    len: u32,
}

/// The result of one fused multi-column sweep: for every subject × every
/// requested column, the full `allRights` distance histogram — stored
/// columnar in a single flat arena.
///
/// ```
/// use ucra_core::engine::counting::PropagationMode;
/// use ucra_core::engine::kernel::FusedSweep;
///
/// let ex = ucra_core::motivating::motivating_example();
/// let pairs = [(ex.obj, ex.read)];
/// let sweep = FusedSweep::compute(
///     &ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both,
/// ).unwrap();
/// let hist = sweep.histogram(ex.user, 0);
/// assert_eq!(hist.totals().unwrap().pos, 2); // Table 1 of the paper
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedSweep {
    subjects: usize,
    columns: usize,
    /// Row metadata, `subjects × columns`, indexed `v * columns + c`.
    rows: Vec<RowMeta>,
    /// The arena: every non-empty row's dense strata, concatenated.
    counts: Vec<ModeCounts>,
}

impl FusedSweep {
    /// Sweeps the full hierarchy once for a batch of `(object, right)`
    /// columns. Column `c` of the result corresponds to `pairs[c]`;
    /// duplicate pairs are computed per occurrence (callers that care
    /// deduplicate first).
    ///
    /// One-shot convenience over [`FusedSweep::compute_with`]: builds a
    /// throwaway [`SweepContext`] and [`SweepScratch`]. Drivers that sweep
    /// more than one batch should build the context once and reuse a
    /// scratch instead.
    pub fn compute(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_with(
            &SweepContext::new(hierarchy),
            eacm,
            pairs,
            mode,
            &mut SweepScratch::new(),
        )
    }

    /// Sweeps a batch of columns over a prebuilt [`SweepContext`], reusing
    /// `scratch`'s buffers for the label plane and arena.
    ///
    /// Equivalent to [`FusedSweep::compute`] (bit-identical output), minus
    /// the per-call `O(V + E)` traversal rebuild and steady-state
    /// allocations. Call [`FusedSweep::recycle`] (or
    /// [`FusedSweep::into_tables_recycling`]) on the result to hand the
    /// arena storage back to `scratch` for the next batch.
    pub fn compute_with(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
    ) -> Result<FusedSweep, CoreError> {
        let n = ctx.subjects;
        let k = pairs.len();
        // Struct-of-arrays label matrix: `labels[c * n + v]`. Built by a
        // single pass over the sparse explicit matrix instead of `n × k`
        // map lookups inside the sweep.
        scratch.labels.clear();
        scratch.labels.resize(n * k, None);
        scratch.columns_of.clear();
        for (c, &pair) in pairs.iter().enumerate() {
            scratch.columns_of.entry(pair).or_default().push(c);
        }
        for (s, o, r, sign) in eacm.iter() {
            if s.index() >= n {
                continue; // labels outside the hierarchy are unreachable
            }
            if let Some(cols) = scratch.columns_of.get(&(o, r)) {
                for &c in cols {
                    scratch.labels[c * n + s.index()] = Some(Mode::from(sign));
                }
            }
        }
        let mut rows = std::mem::take(&mut scratch.rows);
        rows.clear();
        rows.resize(n * k, RowMeta::default());
        let mut counts = std::mem::take(&mut scratch.counts);
        counts.clear();
        Self::sweep(ctx, k, &scratch.labels, mode, rows, counts)
    }

    /// Returns this sweep's arena storage to `scratch` so the next
    /// [`FusedSweep::compute_with`] call on the same thread reuses the
    /// capacity instead of reallocating.
    pub fn recycle(self, scratch: &mut SweepScratch) {
        scratch.rows = self.rows;
        scratch.counts = self.counts;
    }

    /// The fused counting recurrence: one walk of the precomputed
    /// topological order, all columns. `rows`/`counts` arrive cleared but
    /// with retained capacity from the caller's scratch.
    fn sweep(
        ctx: &SweepContext,
        columns: usize,
        labels: &[Option<Mode>],
        mode: PropagationMode,
        mut rows: Vec<RowMeta>,
        mut counts: Vec<ModeCounts>,
    ) -> Result<FusedSweep, CoreError> {
        let n = ctx.subjects;
        debug_assert_eq!(labels.len(), n * columns, "label matrix shape");
        for &v in &ctx.topo {
            let v = v as usize;
            let parents = ctx.parents(v);
            let is_root = parents.is_empty();
            for c in 0..columns {
                let own = labels[c * n + v];

                // SecondWins: an explicit label replaces every record
                // arriving from above — the row is exactly one stratum.
                if mode == PropagationMode::SecondWins {
                    if let Some(m) = own {
                        let offset = counts.len();
                        let mut cell = ModeCounts::default();
                        cell.add(m, 1)?;
                        counts.push(cell);
                        rows[v * columns + c] = RowMeta {
                            offset,
                            base: 0,
                            len: 1,
                        };
                        continue;
                    }
                }

                // Pass 1: the row's distance span from the parents' rows
                // shifted one edge down.
                let mut base = u32::MAX;
                let mut end = 0u32; // exclusive
                let mut has_inflow = false;
                for &p in parents {
                    let r = rows[p as usize * columns + c];
                    if r.len == 0 {
                        continue;
                    }
                    has_inflow = true;
                    let pb = r.base.checked_add(1).ok_or(CoreError::DistanceOverflow)?;
                    let pe = pb.checked_add(r.len).ok_or(CoreError::DistanceOverflow)?;
                    base = base.min(pb);
                    end = end.max(pe);
                }
                let own_contrib = match mode {
                    PropagationMode::Both => {
                        own.or(if is_root { Some(Mode::Default) } else { None })
                    }
                    // `own` was handled above; only the root default remains.
                    PropagationMode::SecondWins => {
                        if is_root {
                            Some(Mode::Default)
                        } else {
                            None
                        }
                    }
                    PropagationMode::FirstWins => match own {
                        Some(m) if !has_inflow => Some(m),
                        Some(_) => None,
                        None if is_root => Some(Mode::Default),
                        None => None,
                    },
                };
                if own_contrib.is_some() {
                    base = 0;
                    end = end.max(1);
                }
                if base == u32::MAX {
                    continue; // empty row
                }

                // Pass 2: reserve the dense slice at the arena tail and
                // merge. Parents' rows live strictly below `offset`, so a
                // split borrow keeps everything safe and branch-free.
                let len = end - base;
                let offset = counts.len();
                counts.resize(offset + len as usize, ModeCounts::default());
                let (head, tail) = counts.split_at_mut(offset);
                if let Some(m) = own_contrib {
                    tail[0].add(m, 1)?; // base == 0 whenever own_contrib is set
                }
                for &p in parents {
                    let r = rows[p as usize * columns + c];
                    if r.len == 0 {
                        continue;
                    }
                    let src = &head[r.offset..r.offset + r.len as usize];
                    let start = (r.base + 1 - base) as usize;
                    for (dst, s) in tail[start..start + r.len as usize].iter_mut().zip(src) {
                        dst.merge(s)?;
                    }
                }
                rows[v * columns + c] = RowMeta { offset, base, len };
            }
        }
        Ok(FusedSweep {
            subjects: n,
            columns,
            rows,
            counts,
        })
    }

    /// Packs existing histogram columns into arena form (the inverse of
    /// [`FusedSweep::histogram`]; the round-trip is lossless).
    ///
    /// `columns[c][v]` is subject `v`'s histogram in column `c`; every
    /// column must have the same length.
    pub fn from_columns(columns: &[Vec<DistanceHistogram>]) -> FusedSweep {
        let k = columns.len();
        let n = columns.first().map_or(0, Vec::len);
        assert!(
            columns.iter().all(|col| col.len() == n),
            "all columns must have one row per subject"
        );
        let mut rows = vec![RowMeta::default(); n * k];
        let mut counts = Vec::new();
        for v in 0..n {
            for (c, col) in columns.iter().enumerate() {
                let h = &col[v];
                let (Some(lo), Some(hi)) = (h.min_dis(), h.max_dis()) else {
                    continue;
                };
                let offset = counts.len();
                counts.extend((lo..=hi).map(|d| h.at(d)));
                rows[v * k + c] = RowMeta {
                    offset,
                    base: lo,
                    len: hi - lo + 1,
                };
            }
        }
        FusedSweep {
            subjects: n,
            columns: k,
            rows,
            counts,
        }
    }

    /// Number of subjects (rows per column).
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Number of columns in the batch.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Bytes held by the arena and its row index — the figure the
    /// session's `kernel_arena_bytes` counter accumulates.
    pub fn arena_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<ModeCounts>()
            + self.rows.len() * std::mem::size_of::<RowMeta>()
    }

    /// The non-zero strata of one `(subject, column)` cell in increasing
    /// distance order — the exact stream `Resolve()` consumes.
    pub fn strata(
        &self,
        subject: SubjectId,
        column: usize,
    ) -> impl Iterator<Item = (u32, ModeCounts)> + '_ {
        let r = self.rows[subject.index() * self.columns + column];
        self.counts[r.offset..r.offset + r.len as usize]
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(move |(i, &c)| (r.base + i as u32, c))
    }

    /// The cell's histogram in the classic sparse representation.
    pub fn histogram(&self, subject: SubjectId, column: usize) -> DistanceHistogram {
        let mut h = DistanceHistogram::new();
        for (dis, c) in self.strata(subject, column) {
            for mode in [Mode::Pos, Mode::Neg, Mode::Default] {
                h.add(dis, mode, c.get(mode))
                    .expect("arena counts were checked when the row was built");
            }
        }
        h
    }

    /// Resolves one cell under `strategy`, straight from the arena.
    pub fn resolve(
        &self,
        subject: SubjectId,
        column: usize,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        resolve_strata(self.strata(subject, column), strategy)
    }

    /// The effective sign of every subject in one column.
    pub fn signs(&self, column: usize, strategy: Strategy) -> Result<Vec<Sign>, CoreError> {
        (0..self.subjects)
            .map(|i| {
                Ok(self
                    .resolve(SubjectId::from_index(i), column, strategy)?
                    .sign)
            })
            .collect()
    }

    /// One column as a plain histogram table (the shape the sweep caches
    /// store).
    pub fn table(&self, column: usize) -> Vec<DistanceHistogram> {
        (0..self.subjects)
            .map(|i| self.histogram(SubjectId::from_index(i), column))
            .collect()
    }

    /// All columns as histogram tables, `tables[c][v]`.
    pub fn into_tables(self) -> Vec<Vec<DistanceHistogram>> {
        (0..self.columns).map(|c| self.table(c)).collect()
    }

    /// [`FusedSweep::into_tables`] that also hands the arena storage back
    /// to `scratch` — the shape batch drivers want: extract the cacheable
    /// tables, keep the buffers warm for the next batch.
    pub fn into_tables_recycling(self, scratch: &mut SweepScratch) -> Vec<Vec<DistanceHistogram>> {
        let tables = (0..self.columns).map(|c| self.table(c)).collect();
        self.recycle(scratch);
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::counting;
    use crate::motivating::motivating_example;

    const MODES: [PropagationMode; 3] = [
        PropagationMode::Both,
        PropagationMode::SecondWins,
        PropagationMode::FirstWins,
    ];

    #[test]
    fn single_column_matches_legacy_sweep_in_every_mode() {
        let ex = motivating_example();
        for mode in MODES {
            let fused =
                FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[(ex.obj, ex.read)], mode).unwrap();
            let legacy =
                counting::histograms_all_reference(&ex.hierarchy, &ex.eacm, ex.obj, ex.read, mode)
                    .unwrap();
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    fused.histogram(s, 0),
                    legacy[s.index()],
                    "mode {mode:?}, {s}"
                );
            }
        }
    }

    #[test]
    fn multi_column_batch_matches_per_column_sweeps() {
        let ex = motivating_example();
        let pairs: Vec<_> = (0..5).map(|o| (ObjectId(o), ex.read)).collect();
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        assert_eq!(fused.columns(), 5);
        for (c, &(o, r)) in pairs.iter().enumerate() {
            let legacy =
                counting::histograms_all(&ex.hierarchy, &ex.eacm, o, r, PropagationMode::Both)
                    .unwrap();
            assert_eq!(fused.table(c), legacy, "column {c}");
        }
    }

    #[test]
    fn round_trip_through_columns_is_lossless() {
        let ex = motivating_example();
        let pairs = [(ex.obj, ex.read), (ObjectId(9), ex.read)];
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        let tables = fused.clone().into_tables();
        let packed = FusedSweep::from_columns(&tables);
        for c in 0..pairs.len() {
            for s in ex.hierarchy.subjects() {
                assert_eq!(packed.histogram(s, c), fused.histogram(s, c));
            }
        }
    }

    #[test]
    fn resolve_from_arena_matches_resolve_histogram() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        for s in ex.hierarchy.subjects() {
            let hist = fused.histogram(s, 0);
            for strategy in Strategy::all_instances() {
                assert_eq!(
                    fused.resolve(s, 0, strategy).unwrap(),
                    crate::resolve::resolve_histogram(&hist, strategy).unwrap(),
                    "subject {s}, strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_hierarchy_are_fine() {
        let ex = motivating_example();
        let empty_batch =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[], PropagationMode::Both).unwrap();
        assert_eq!(empty_batch.columns(), 0);
        assert_eq!(empty_batch.subjects(), ex.hierarchy.subject_count());

        let empty = FusedSweep::compute(
            &SubjectDag::new(),
            &Eacm::new(),
            &[(ObjectId(0), RightId(0))],
            PropagationMode::Both,
        )
        .unwrap();
        assert_eq!(empty.subjects(), 0);
        assert!(empty.into_tables()[0].is_empty());
    }

    #[test]
    fn exponential_path_counts_stay_exact() {
        // 100 stacked diamonds: 2^100 paths, counted exactly in the
        // arena just as in the BTreeMap engine.
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..100 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(first, o, r).unwrap();
        let fused = FusedSweep::compute(&h, &eacm, &[(o, r)], PropagationMode::Both).unwrap();
        assert_eq!(fused.histogram(top, 0).at(200).pos, 1u128 << 100);
    }

    #[test]
    fn counting_overflow_is_an_error() {
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..128 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let mut eacm = Eacm::new();
        eacm.grant(first, ObjectId(0), RightId(0)).unwrap();
        assert_eq!(
            FusedSweep::compute(
                &h,
                &eacm,
                &[(ObjectId(0), RightId(0))],
                PropagationMode::Both
            ),
            Err(CoreError::PathCountOverflow)
        );
    }

    #[test]
    fn shared_context_and_recycled_scratch_match_one_shot_compute() {
        let ex = motivating_example();
        let ctx = SweepContext::new(&ex.hierarchy);
        assert_eq!(ctx.subjects(), ex.hierarchy.subject_count());
        assert!(ctx.bytes() > 0);
        let mut scratch = SweepScratch::new();
        // Batches of different widths, all modes, through ONE context and
        // ONE scratch — each must equal the one-shot path bit-for-bit.
        for mode in MODES {
            for width in [1usize, 3, 5] {
                let pairs: Vec<_> = (0..width).map(|o| (ObjectId(o as u32), ex.read)).collect();
                let shared =
                    FusedSweep::compute_with(&ctx, &ex.eacm, &pairs, mode, &mut scratch).unwrap();
                let fresh = FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, mode).unwrap();
                assert_eq!(shared, fresh, "mode {mode:?}, width {width}");
                shared.recycle(&mut scratch);
            }
        }
        // After the first growth the scratch retains its high-water marks.
        assert!(scratch.retained_bytes() > 0);
    }

    #[test]
    fn into_tables_recycling_matches_into_tables() {
        let ex = motivating_example();
        let ctx = SweepContext::new(&ex.hierarchy);
        let mut scratch = SweepScratch::new();
        let pairs = [(ex.obj, ex.read), (ObjectId(2), ex.read)];
        let a =
            FusedSweep::compute_with(&ctx, &ex.eacm, &pairs, PropagationMode::Both, &mut scratch)
                .unwrap();
        let tables = a.into_tables_recycling(&mut scratch);
        let b =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        assert_eq!(tables, b.into_tables());
        assert!(scratch.retained_bytes() > 0);
    }

    #[test]
    fn arena_bytes_reports_the_flat_layout() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        // Rows index + at least one stratum of real data.
        assert!(fused.arena_bytes() > std::mem::size_of::<ModeCounts>());
    }
}
