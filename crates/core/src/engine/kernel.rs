//! The columnar fused-sweep kernel: flat arena histograms + multi-column
//! batched propagation.
//!
//! ## Why
//!
//! The original counting sweep ([`crate::engine::counting`]) is correct
//! and polynomial, but its hot path is allocation-bound: every
//! `(object, right)` column walks the whole DAG building a fresh
//! `BTreeMap<u32, ModeCounts>` per node — one heap allocation per stratum
//! per node per column, plus pointer-chasing tree merges on every
//! parent-to-child transfer. Caching work (Crampton & Sellwood's RPPM
//! line) shows these systems win by reusing partial decision state; this
//! kernel applies the same lesson to the sweep's *memory layout* and
//! *scheduling*:
//!
//! 1. **Flat arena histograms.** A node's histogram in a sweep always
//!    occupies a contiguous distance span `[base, base + len)` — the
//!    union of its parents' spans shifted by one, plus distance 0 for an
//!    own label or root default. So per `(node, column)` row we store
//!    only `(offset, base, len)` into one shared arena: zero per-node
//!    allocation, dense sequential merges, and a lossless round-trip
//!    to/from [`DistanceHistogram`].
//! 2. **Tiered count lanes.** The arena comes in two tiers. The *narrow*
//!    tier stores counts as three parallel `u64` lanes (`pos`/`neg`/`def`
//!    planes sharing one offset space), so the parent→child merge is a
//!    straight slice-add over contiguous `u64`s that LLVM autovectorizes.
//!    Path counts are worst-case exponential, so every finished row is
//!    saturation-checked against a per-context ceiling chosen so that no
//!    single row merge can wrap a `u64`; a batch that crosses the ceiling
//!    transparently re-runs through the *wide* tier — the original
//!    checked-`u128` `Vec<ModeCounts>` arena, which survives as the
//!    escalation target and equivalence oracle. [`CoreError::PathCountOverflow`]
//!    therefore only ever originates in the wide tier, at exactly the
//!    sites the pre-tiering kernel fired it.
//! 3. **Packed label bitplanes.** The per-batch label plane is 2-bit
//!    codes packed 32-per-`u64` word, one plane per column — 4× denser
//!    than the former `Vec<Option<Mode>>`, scanned word-at-a-time.
//! 4. **Topo-ordered rows.** Arena rows are indexed by the cached
//!    [`SweepContext`] topo *position* rather than by subject id, so the
//!    sweep writes rows strictly sequentially and parent lookups walk
//!    memory in traversal order.
//! 5. **Fused multi-column sweeps.** One topological walk serves a whole
//!    batch of `(object, right)` columns in struct-of-arrays layout: the
//!    `topo_order` / `parents()` traversal cost — and its cache misses —
//!    are amortised over every column in the batch.
//! 6. **Resolution without materialisation.** `Resolve()` only iterates
//!    strata in distance order, so [`FusedSweep::resolve`] reads arena
//!    rows directly; the full-matrix path never builds a `BTreeMap` at
//!    all.
//!
//! Parallel scheduling over batches lives in [`crate::pool`]; the
//! equivalence of this kernel with the per-path engine, the legacy
//! sweep, and the wide tier is asserted by `tests/kernel_equivalence.rs`
//! for all 48 strategies and all three [`PropagationMode`]s.

use crate::engine::counting::PropagationMode;
use crate::engine::simd::{AlignedVec, Backend, Kernels};
use crate::engine::{DistanceHistogram, ModeCounts};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::{Mode, Sign};
use crate::resolve::{resolve_strata, Resolution};
use crate::strategy::Strategy;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use ucra_graph::traverse;

/// Default number of columns fused into one sweep batch. Bounds the
/// arena's working set while still amortising the topological walk; the
/// parallel drivers split larger pair lists into batches of this size.
pub const DEFAULT_BATCH_COLUMNS: usize = 8;

/// Labels packed 32-per-word: `u64` words of 2-bit codes.
const LABELS_PER_WORD: usize = 32;

/// Words per packed label column for an `n`-subject hierarchy.
#[inline]
fn words_per_column(n: usize) -> usize {
    n.div_ceil(LABELS_PER_WORD)
}

/// The 2-bit label code of a mode (`0` encodes "no label").
#[inline]
const fn label_code(mode: Mode) -> u64 {
    match mode {
        Mode::Pos => 1,
        Mode::Neg => 2,
        Mode::Default => 3,
    }
}

/// A read-only view of the packed 2-bit label plane: `columns` planes of
/// [`words_per_column`] words each, indexed by **topo position** so the
/// sweep reads labels in traversal order.
#[derive(Clone, Copy)]
struct LabelPlane<'a> {
    words: &'a [u64],
    wpc: usize,
}

impl LabelPlane<'_> {
    /// The label of the subject at topo position `slot` in column `c`.
    #[inline]
    fn get(&self, c: usize, slot: usize) -> Option<Mode> {
        let bits = (self.words[c * self.wpc + slot / LABELS_PER_WORD]
            >> (2 * (slot % LABELS_PER_WORD)))
            & 3;
        match bits {
            0 => None,
            1 => Some(Mode::Pos),
            2 => Some(Mode::Neg),
            _ => Some(Mode::Default),
        }
    }
}

/// The dense walk's label view: the packed planes SIMD-decoded up front
/// into one byte code per `(column, slot)` — `spc` padded slots per
/// column ([`words_per_column`]` × 32`). The dense walk reads every slot
/// of every column exactly once, so the per-batch decode pass
/// ([`Kernels::expand_labels`]) pays for itself by replacing the
/// shift/mask in the innermost loop with a byte load. The *pruned* walk
/// deliberately keeps the packed [`LabelPlane`]: it reads only the
/// active cone, and an `O(n × columns)` decode would break its
/// `O(active)` cost model.
#[derive(Clone, Copy)]
struct LabelBytes<'a> {
    bytes: &'a [u8],
    spc: usize,
}

impl LabelBytes<'_> {
    /// The label of the subject at topo position `slot` in column `c`.
    #[inline]
    fn get(&self, c: usize, slot: usize) -> Option<Mode> {
        match self.bytes[c * self.spc + slot] {
            0 => None,
            1 => Some(Mode::Pos),
            2 => Some(Mode::Neg),
            _ => Some(Mode::Default),
        }
    }
}

/// The narrow tier's storage: three parallel `u64` count lanes sharing
/// one arena offset space. `pos[i]`, `neg[i]`, `def[i]` together are the
/// [`ModeCounts`] of arena cell `i`. Each lane is a cache-line-aligned
/// buffer (see [`AlignedVec`]) so the SIMD merges start on 64-byte
/// boundaries; `kernels` is the dispatched backend the current sweep
/// merges with (stamped by `compute_impl`, irrelevant once the sweep is
/// finished — which is why equality ignores it).
#[derive(Debug, Clone, Default)]
struct LanePlanes {
    pos: AlignedVec,
    neg: AlignedVec,
    def: AlignedVec,
    kernels: Kernels,
}

impl PartialEq for LanePlanes {
    fn eq(&self, other: &LanePlanes) -> bool {
        // Data only: which backend merged the lanes is dispatch state,
        // not part of the result (all backends are bit-identical).
        self.pos == other.pos && self.neg == other.neg && self.def == other.def
    }
}

impl Eq for LanePlanes {}

impl LanePlanes {
    /// Number of cells currently in the lanes.
    #[inline]
    fn len(&self) -> usize {
        self.pos.len()
    }

    /// Drops all cells, keeping capacity.
    fn clear(&mut self) {
        self.pos.clear();
        self.neg.clear();
        self.def.clear();
    }

    /// Bytes of retained capacity across the three lanes.
    fn capacity_bytes(&self) -> usize {
        (self.pos.capacity() + self.neg.capacity() + self.def.capacity())
            * std::mem::size_of::<u64>()
    }

    /// Shrinks each lane's capacity back toward `cells`.
    fn shrink_to(&mut self, cells: usize) {
        self.pos.shrink_to(cells);
        self.neg.shrink_to(cells);
        self.def.shrink_to(cells);
    }

    /// The cell at `i`, widened.
    #[inline]
    fn cell(&self, i: usize) -> ModeCounts {
        ModeCounts {
            pos: u128::from(self.pos[i]),
            neg: u128::from(self.neg[i]),
            def: u128::from(self.def[i]),
        }
    }
}

/// The operations the shared sweep body needs from a count arena,
/// implemented by both storage tiers. Offsets are absolute arena cell
/// indexes; callers guarantee `src + len <= dst` for
/// [`CountTier::merge_within`] (a parent's row always lives strictly
/// below the row being built).
trait CountTier {
    /// The next free cell index (current arena length).
    fn end(&self) -> usize;
    /// Appends `n` zeroed cells at the tail.
    fn grow(&mut self, n: usize);
    /// Appends a copy of cells `src..src + len` at the tail: a fresh
    /// row's first source row lands by straight copy, so row creation
    /// touches each covered cell once (read + write) instead of twice
    /// (zero-fill, then add-onto-zero). Equivalent to `grow(len)`
    /// followed by a merge — a copy is an add onto zeros, and cannot
    /// overflow.
    fn extend_from_within(&mut self, src: usize, len: usize);
    /// [`CountTier::extend_from_within`] reading from the shared
    /// defaults plane (pruned sweeps' cone-boundary rows).
    fn extend_from_defaults(&mut self, defaults: &DefaultRows, src: usize, len: usize);
    /// `self[at] += 1` in `mode`'s lane.
    fn bump(&mut self, at: usize, mode: Mode) -> Result<(), CoreError>;
    /// Lane-wise `self[dst..dst+len] += self[src..src+len]`.
    fn merge_within(&mut self, dst: usize, src: usize, len: usize) -> Result<(), CoreError>;
    /// Lane-wise merge from the shared defaults plane (pruned sweeps).
    fn merge_defaults(
        &mut self,
        dst: usize,
        defaults: &DefaultRows,
        src: usize,
        len: usize,
    ) -> Result<(), CoreError>;
    /// Saturation check once a row is complete: `false` aborts the sweep
    /// so the batch can escalate. The wide tier never aborts.
    fn row_fits(&self, offset: usize, len: usize, limit: u64) -> bool;
    /// Hints that cells `at..at + len` will be merged shortly: the sweep
    /// calls this from pass 1 (span computation) for each parent row it
    /// collects, so the rows are in flight by the time pass 2 issues the
    /// adds. Purely advisory — the default is a no-op, and the narrow
    /// tier forwards to its kernels, where the scalar oracle also skips
    /// it (prefetch placement is part of the explicit backend).
    #[inline]
    fn prefetch(&self, at: usize, len: usize) {
        let _ = (at, len);
    }
}

impl CountTier for Vec<ModeCounts> {
    #[inline]
    fn end(&self) -> usize {
        self.len()
    }

    #[inline]
    fn grow(&mut self, n: usize) {
        self.resize(self.len() + n, ModeCounts::default());
    }

    #[inline]
    fn extend_from_within(&mut self, src: usize, len: usize) {
        Vec::extend_from_within(self, src..src + len);
    }

    #[inline]
    fn extend_from_defaults(&mut self, defaults: &DefaultRows, src: usize, len: usize) {
        self.extend_from_slice(&defaults.counts[src..src + len]);
    }

    #[inline]
    fn bump(&mut self, at: usize, mode: Mode) -> Result<(), CoreError> {
        self[at].add(mode, 1)
    }

    #[inline]
    fn merge_within(&mut self, dst: usize, src: usize, len: usize) -> Result<(), CoreError> {
        let (head, tail) = self.split_at_mut(dst);
        for (d, s) in tail[..len].iter_mut().zip(&head[src..src + len]) {
            d.merge(s)?;
        }
        Ok(())
    }

    #[inline]
    fn merge_defaults(
        &mut self,
        dst: usize,
        defaults: &DefaultRows,
        src: usize,
        len: usize,
    ) -> Result<(), CoreError> {
        for (d, s) in self[dst..dst + len]
            .iter_mut()
            .zip(&defaults.counts[src..src + len])
        {
            d.merge(s)?;
        }
        Ok(())
    }

    #[inline]
    fn row_fits(&self, _offset: usize, _len: usize, _limit: u64) -> bool {
        true
    }
}

impl CountTier for LanePlanes {
    #[inline]
    fn end(&self) -> usize {
        self.len()
    }

    #[inline]
    fn grow(&mut self, n: usize) {
        let target = self.pos.len() + n;
        self.pos.resize_zeroed(target);
        self.neg.resize_zeroed(target);
        self.def.resize_zeroed(target);
    }

    #[inline]
    fn extend_from_within(&mut self, src: usize, len: usize) {
        self.pos.extend_from_within(src, len);
        self.neg.extend_from_within(src, len);
        self.def.extend_from_within(src, len);
    }

    #[inline]
    fn extend_from_defaults(&mut self, defaults: &DefaultRows, src: usize, len: usize) {
        let nd = defaults
            .narrow
            .as_ref()
            .expect("narrow pruned sweeps require narrow default planes");
        self.pos.extend_from_slice(&nd.pos[src..src + len]);
        self.neg.extend_from_slice(&nd.neg[src..src + len]);
        self.def.extend_from_slice(&nd.def[src..src + len]);
    }

    #[inline]
    fn bump(&mut self, at: usize, mode: Mode) -> Result<(), CoreError> {
        match mode {
            Mode::Pos => self.pos[at] += 1,
            Mode::Neg => self.neg[at] += 1,
            Mode::Default => self.def[at] += 1,
        }
        Ok(())
    }

    #[inline]
    fn merge_within(&mut self, dst: usize, src: usize, len: usize) -> Result<(), CoreError> {
        // The adds are unchecked on purpose: every source row passed the
        // saturation check (≤ the context's narrow limit), and the limit
        // is chosen so that `max_fan_in` limit-sized rows plus an own
        // contribution cannot wrap a `u64`.
        self.kernels
            .add_shift3(&mut self.pos, &mut self.neg, &mut self.def, dst, src, len);
        Ok(())
    }

    #[inline]
    fn merge_defaults(
        &mut self,
        dst: usize,
        defaults: &DefaultRows,
        src: usize,
        len: usize,
    ) -> Result<(), CoreError> {
        let nd = defaults
            .narrow
            .as_ref()
            .expect("narrow pruned sweeps require narrow default planes");
        self.kernels.add_lanes3(
            (&mut self.pos[dst..dst + len], &nd.pos[src..src + len]),
            (&mut self.neg[dst..dst + len], &nd.neg[src..src + len]),
            (&mut self.def[dst..dst + len], &nd.def[src..src + len]),
        );
        Ok(())
    }

    #[inline]
    fn row_fits(&self, offset: usize, len: usize, limit: u64) -> bool {
        // `limit` is always 2^k - 1, so OR-accumulating the row and
        // comparing once is an exact "any lane value > limit" test —
        // a straight vector OR in every backend, unlike a branchy
        // per-cell max.
        let seen = self.kernels.or_reduce3(
            &self.pos[offset..offset + len],
            &self.neg[offset..offset + len],
            &self.def[offset..offset + len],
        );
        seen <= limit
    }

    #[inline]
    fn prefetch(&self, at: usize, len: usize) {
        self.kernels
            .prefetch3(&self.pos, &self.neg, &self.def, at, len);
    }
}

/// The narrow tier's saturation ceiling for a hierarchy whose maximum
/// fan-in is `max_fan_in`: the largest `2^k - 1` such that a row built
/// from `max_fan_in` ceiling-sized parent rows plus one own record
/// cannot wrap a `u64`. Power-of-two-minus-one so the per-row check can
/// be a single OR-accumulate (see [`CountTier::row_fits`]).
fn narrow_limit_for(max_fan_in: usize) -> u64 {
    let f = max_fan_in.max(1) as u64;
    let raw = (u64::MAX - 1) / f;
    (1u64 << (63 - raw.leading_zeros())) - 1
}

/// Immutable per-hierarchy traversal state, shared across sweep batches.
///
/// Everything a sweep needs from the [`SubjectDag`] that does **not**
/// depend on the column set lives here: the topological order and a CSR
/// (compressed sparse row) copy of the parent adjacency. The original
/// parallel driver re-derived both *per batch* — `topo_order` alone is an
/// `O(V + E)` allocation-heavy Kahn pass — which is exactly the per-query
/// graph work that Gatterbauer & Suciu's trust-mapping resolution and
/// Crampton & Sellwood's RPPM caching amortise across requests. Building
/// the context once per request (or caching it on
/// [`crate::AccessSession`]) lets every batch walk flat precomputed
/// arrays instead of re-traversing the DAG.
///
/// The CSR copy preserves the `Dag::parents` insertion order, so sweeps
/// through a context merge parent histograms in exactly the order the
/// direct traversal would — results are bit-identical. A second CSR in
/// the child direction supports the forward label-cone walks the
/// sparsity-pruned sweep path uses to find each batch's *active set*.
#[derive(Debug, Clone)]
pub struct SweepContext {
    subjects: usize,
    /// Node indexes in topological order (parents before children).
    topo: Vec<u32>,
    /// `topo_pos[v]` = position of node `v` in `topo`. Arena rows are
    /// indexed by this position (so sweeps write rows sequentially), and
    /// finished sweeps share it for their accessors.
    topo_pos: Arc<Vec<u32>>,
    /// CSR offsets into `parent_ids`; `subjects + 1` entries.
    parent_start: Vec<u32>,
    /// Concatenated parent indexes, in `Dag::parents` order.
    parent_ids: Vec<u32>,
    /// CSR offsets into `child_ids`; `subjects + 1` entries.
    child_start: Vec<u32>,
    /// Concatenated child indexes (forward direction, for cone walks).
    child_ids: Vec<u32>,
    /// The narrow tier's saturation ceiling (see [`narrow_limit_for`]):
    /// rows whose lanes stay at or below this can be merged once more
    /// without any risk of wrapping a `u64`.
    narrow_limit: u64,
    /// The empty-column sweep: every node's *pure-default* histogram
    /// (one `Default` record per path from each root ancestor). A node
    /// with no labeled ancestor-or-self has exactly this histogram in
    /// every propagation mode, so pruned sweeps share these rows across
    /// all columns and all batches. Built lazily on the first batch that
    /// can prune; the inner `None` records a checked-arithmetic overflow
    /// during the build, which permanently disables pruning for this
    /// context (the dense path reports its own overflow if it also
    /// hits one).
    defaults: OnceLock<Option<Arc<DefaultRows>>>,
}

/// Arena-form table of per-node pure-default histograms (see
/// [`SweepContext::defaults`]). One column wide, indexed by topo
/// position. The wide counts are authoritative; `narrow` carries the
/// same values as `u64` lane planes whenever every count fits under the
/// context's narrow limit, so pruned narrow sweeps can merge
/// cone-boundary defaults without leaving the tier.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DefaultRows {
    rows: Vec<RowMeta>,
    counts: Vec<ModeCounts>,
    narrow: Option<LanePlanes>,
}

impl PartialEq for SweepContext {
    fn eq(&self, other: &Self) -> bool {
        // The default-rows cache is derived state (and filled lazily),
        // so equality is over the traversal arrays only.
        self.subjects == other.subjects
            && self.topo == other.topo
            && self.parent_start == other.parent_start
            && self.parent_ids == other.parent_ids
    }
}

impl Eq for SweepContext {}

impl SweepContext {
    /// Builds the shared traversal state for `hierarchy` in one
    /// `O(V + E)` pass.
    pub fn new(hierarchy: &SubjectDag) -> SweepContext {
        let dag = hierarchy.graph();
        let n = dag.node_count();
        let topo: Vec<u32> = traverse::topo_order(dag)
            .into_iter()
            .map(|v| v.index() as u32)
            .collect();
        let mut topo_pos = vec![0u32; n];
        for (i, &v) in topo.iter().enumerate() {
            topo_pos[v as usize] = i as u32;
        }
        let mut parent_start = Vec::with_capacity(n + 1);
        let mut parent_ids = Vec::with_capacity(dag.edge_count());
        parent_start.push(0);
        let mut max_fan_in = 0usize;
        for v in dag.nodes() {
            let parents = dag.parents(v);
            max_fan_in = max_fan_in.max(parents.len());
            parent_ids.extend(parents.iter().map(|p| p.index() as u32));
            parent_start.push(parent_ids.len() as u32);
        }
        // Invert the parent CSR into a child CSR by counting sort.
        let mut child_start = vec![0u32; n + 1];
        for &p in &parent_ids {
            child_start[p as usize + 1] += 1;
        }
        for i in 0..n {
            child_start[i + 1] += child_start[i];
        }
        let mut cursor = child_start.clone();
        let mut child_ids = vec![0u32; parent_ids.len()];
        for v in 0..n {
            let lo = parent_start[v] as usize;
            let hi = parent_start[v + 1] as usize;
            for &p in &parent_ids[lo..hi] {
                child_ids[cursor[p as usize] as usize] = v as u32;
                cursor[p as usize] += 1;
            }
        }
        SweepContext {
            subjects: n,
            topo,
            topo_pos: Arc::new(topo_pos),
            parent_start,
            parent_ids,
            child_start,
            child_ids,
            narrow_limit: narrow_limit_for(max_fan_in),
            defaults: OnceLock::new(),
        }
    }

    /// Number of subjects the context was built for.
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Bytes held by the precomputed arrays (observability; the session
    /// reports this alongside arena sizes). Lazily built default rows are
    /// included once present.
    pub fn bytes(&self) -> usize {
        let arrays = (self.topo.len()
            + self.topo_pos.len()
            + self.parent_start.len()
            + self.parent_ids.len()
            + self.child_start.len()
            + self.child_ids.len())
            * std::mem::size_of::<u32>();
        let defaults = match self.defaults.get() {
            Some(Some(d)) => {
                d.rows.len() * std::mem::size_of::<RowMeta>()
                    + d.counts.len() * std::mem::size_of::<ModeCounts>()
                    + d.narrow.as_ref().map_or(0, LanePlanes::capacity_bytes)
            }
            _ => 0,
        };
        arrays + defaults
    }

    /// The parents of node `v`, in `Dag::parents` insertion order.
    #[inline]
    fn parents(&self, v: usize) -> &[u32] {
        let lo = self.parent_start[v] as usize;
        let hi = self.parent_start[v + 1] as usize;
        &self.parent_ids[lo..hi]
    }

    /// The children of node `v` (forward cone direction).
    #[inline]
    fn children(&self, v: usize) -> &[u32] {
        let lo = self.child_start[v] as usize;
        let hi = self.child_start[v + 1] as usize;
        &self.child_ids[lo..hi]
    }

    /// The shared pure-default rows, built on first use. `None` when the
    /// empty-column sweep overflowed (pruning disabled for this context).
    fn default_rows(&self) -> Option<&Arc<DefaultRows>> {
        self.defaults
            .get_or_init(|| self.build_default_rows().ok().map(Arc::new))
            .as_ref()
    }

    /// Sweeps the empty column: every root contributes one `Default`
    /// record, nothing else exists, so the result is each node's bag of
    /// root-path lengths. Label-free propagation is identical under all
    /// three [`PropagationMode`]s (no label ever fires a mode branch).
    /// Runs in the wide tier (one-time cost per context), then derives
    /// narrow lane copies when every count fits the narrow ceiling.
    fn build_default_rows(&self) -> Result<DefaultRows, CoreError> {
        let spc = words_per_column(self.subjects) * LABELS_PER_WORD;
        let empty = vec![0u8; spc];
        let labels = LabelBytes { bytes: &empty, spc };
        let mut rows = vec![RowMeta::default(); self.subjects];
        let mut counts: Vec<ModeCounts> = Vec::new();
        FusedSweep::sweep_tier(
            self,
            1,
            labels,
            PropagationMode::Both,
            &mut rows,
            &mut counts,
            0,
        )?;
        let ceiling = u128::from(self.narrow_limit);
        let narrow = counts
            .iter()
            .all(|c| c.pos <= ceiling && c.neg <= ceiling && c.def <= ceiling)
            .then(|| LanePlanes {
                pos: counts.iter().map(|c| c.pos as u64).collect(),
                neg: counts.iter().map(|c| c.neg as u64).collect(),
                def: counts.iter().map(|c| c.def as u64).collect(),
                kernels: Kernels::default(),
            });
        Ok(DefaultRows {
            rows,
            counts,
            narrow,
        })
    }

    /// The size of the union descendant cone (the *active set*) of every
    /// subject carrying an explicit label for one of `pairs` — exactly
    /// the rows a sparsity-pruned sweep of those columns computes.
    /// Dispatchers use `active_set_size × columns` as the work estimate
    /// that decides serial fallback, and `ucra lint --format json`
    /// reports it per rule.
    pub fn active_set_size(&self, eacm: &Eacm, pairs: &[(ObjectId, RightId)]) -> usize {
        let n = self.subjects;
        if n == 0 || pairs.is_empty() {
            return 0;
        }
        let wanted: std::collections::BTreeSet<(ObjectId, RightId)> =
            pairs.iter().copied().collect();
        let mut visited = vec![false; n];
        let mut worklist: Vec<u32> = Vec::new();
        for (s, o, r, _) in eacm.iter() {
            if s.index() < n && !visited[s.index()] && wanted.contains(&(o, r)) {
                visited[s.index()] = true;
                worklist.push(s.index() as u32);
            }
        }
        let mut i = 0;
        while i < worklist.len() {
            let v = worklist[i] as usize;
            i += 1;
            for &ch in self.children(v) {
                if !visited[ch as usize] {
                    visited[ch as usize] = true;
                    worklist.push(ch);
                }
            }
        }
        worklist.len()
    }
}

/// Reusable sweep buffers: the packed label plane, row index and both
/// arena tiers of one [`FusedSweep::compute_with`] call.
///
/// A fresh sweep allocates growable buffers whose high-water marks
/// repeat across batches of the same hierarchy; keeping them in a scratch
/// that survives the batch turns steady-state sweeping allocation-free.
/// The parallel drivers hold one scratch per pool worker (thread-local,
/// so it also survives across *requests* on the persistent pool); serial
/// drivers reuse one across their batch loop. [`FusedSweep::recycle`]
/// returns a finished sweep's storage to the scratch.
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// Packed 2-bit label planes, one per column (see [`LabelPlane`]).
    label_words: Vec<u64>,
    /// SIMD-decoded byte view of `label_words` for dense walks (see
    /// [`LabelBytes`]); empty on pruned batches.
    label_bytes: Vec<u8>,
    rows: Vec<RowMeta>,
    /// The wide tier's arena (also the escalation target).
    counts: Vec<ModeCounts>,
    /// The narrow tier's `u64` lane planes.
    lanes: LanePlanes,
    columns_of: HashMap<(ObjectId, RightId), Vec<usize>>,
    /// Epoch stamps for the cone walk: `stamp[v] == epoch` means node `v`
    /// was visited during the *current* sweep's active-set computation.
    /// Bumping `epoch` invalidates every stamp at once, so steady-state
    /// cone computation neither allocates nor clears.
    stamp: Vec<u64>,
    /// The current epoch (`0` is never a valid stamp).
    epoch: u64,
    /// Labeled subjects of the current batch (cone-walk seeds), deduped
    /// via the epoch stamps.
    sources: Vec<u32>,
    /// The union active set of the current batch, in topological order.
    active: Vec<u32>,
    /// Batches recycled since the last trim decision.
    trim_clock: u32,
    /// Per-buffer high-water marks (lengths actually used) within the
    /// current trim window.
    words_peak: usize,
    bytes_peak: usize,
    rows_peak: usize,
    counts_peak: usize,
    lanes_peak: usize,
}

/// How many recycled batches [`SweepScratch`] observes before it
/// considers shrinking over-retained buffers (see
/// [`SweepScratch::note_batch_and_trim`]).
const TRIM_WINDOW: u32 = 64;

impl SweepScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub fn new() -> SweepScratch {
        SweepScratch::default()
    }

    /// Capacity currently retained by the scratch buffers, in bytes.
    /// Includes both arena tiers — the narrow `u64` lane planes and the
    /// wide `ModeCounts` arena — plus the packed label plane.
    pub fn retained_bytes(&self) -> usize {
        self.label_words.capacity() * std::mem::size_of::<u64>()
            + self.label_bytes.capacity()
            + self.rows.capacity() * std::mem::size_of::<RowMeta>()
            + self.counts.capacity() * std::mem::size_of::<ModeCounts>()
            + self.lanes.capacity_bytes()
            + self.stamp.capacity() * std::mem::size_of::<u64>()
            + (self.sources.capacity() + self.active.capacity()) * std::mem::size_of::<u32>()
    }

    /// Starts a new epoch over `n` nodes: all previous stamps become
    /// stale in `O(1)`; the stamp array only ever grows to the largest
    /// hierarchy seen.
    fn begin_epoch(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
    }

    /// High-water-mark shrink: scratch buffers grow to the largest batch
    /// ever seen, which on a long-lived session pins the peak working
    /// set forever. Every [`TRIM_WINDOW`] recycled batches, any buffer
    /// whose retained capacity exceeds **twice** its high-water mark
    /// within the window is shrunk back to that mark, so memory tracks
    /// the recent workload instead of the historical maximum.
    fn note_batch_and_trim(&mut self) {
        self.words_peak = self.words_peak.max(self.label_words.len());
        self.bytes_peak = self.bytes_peak.max(self.label_bytes.len());
        self.rows_peak = self.rows_peak.max(self.rows.len());
        self.counts_peak = self.counts_peak.max(self.counts.len());
        self.lanes_peak = self.lanes_peak.max(self.lanes.len());
        self.trim_clock += 1;
        if self.trim_clock < TRIM_WINDOW {
            return;
        }
        self.trim_clock = 0;
        if self.label_words.capacity() > 2 * self.words_peak {
            self.label_words.shrink_to(self.words_peak);
        }
        if self.label_bytes.capacity() > 2 * self.bytes_peak {
            self.label_bytes.shrink_to(self.bytes_peak);
        }
        if self.rows.capacity() > 2 * self.rows_peak {
            self.rows.shrink_to(self.rows_peak);
        }
        if self.counts.capacity() > 2 * self.counts_peak {
            self.counts.shrink_to(self.counts_peak);
        }
        if self.lanes.pos.capacity() > 2 * self.lanes_peak {
            self.lanes.shrink_to(self.lanes_peak);
        }
        self.words_peak = 0;
        self.bytes_peak = 0;
        self.rows_peak = 0;
        self.counts_peak = 0;
        self.lanes_peak = 0;
    }
}

thread_local! {
    /// One scratch per thread. Pool workers are persistent, so a worker's
    /// scratch survives across batches *and* across requests — steady-state
    /// parallel sweeping allocates nothing.
    static THREAD_SCRATCH: std::cell::RefCell<SweepScratch> =
        std::cell::RefCell::new(SweepScratch::new());
}

/// Runs `f` with this thread's persistent [`SweepScratch`]. Re-entrant
/// calls (none today) fall back to a fresh scratch instead of panicking.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut SweepScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut SweepScratch::new()),
    })
}

/// One arena row: the histogram of one `(subject, column)` cell, stored
/// as a dense slice of arena cells covering distances `base .. base + len`.
/// `len == 0` means the empty histogram (and `offset`/`base` are
/// meaningless).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RowMeta {
    offset: usize,
    base: u32,
    len: u32,
}

/// Which storage tier holds a finished sweep's counts.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CountArena {
    /// Three parallel `u64` lanes (the fast path).
    Narrow(LanePlanes),
    /// Checked `u128` `ModeCounts` cells (the escalation target and
    /// equivalence oracle).
    Wide(Vec<ModeCounts>),
}

/// A borrowed view of one cell's count storage (own arena or the shared
/// defaults plane), for the [`Strata`] iterator.
#[derive(Clone, Copy)]
enum CellCounts<'a> {
    Narrow(&'a LanePlanes),
    Wide(&'a [ModeCounts]),
}

/// Iterator over the non-zero strata of one `(subject, column)` cell in
/// increasing distance order — the exact stream `Resolve()` consumes.
/// Returned by [`FusedSweep::strata`].
pub struct Strata<'a> {
    cells: CellCounts<'a>,
    offset: usize,
    base: u32,
    len: usize,
    i: usize,
}

impl Iterator for Strata<'_> {
    type Item = (u32, ModeCounts);

    #[inline]
    fn next(&mut self) -> Option<(u32, ModeCounts)> {
        while self.i < self.len {
            let i = self.i;
            self.i += 1;
            let c = match self.cells {
                CellCounts::Narrow(l) => l.cell(self.offset + i),
                CellCounts::Wide(w) => w[self.offset + i],
            };
            if !c.is_zero() {
                return Some((self.base + i as u32, c));
            }
        }
        None
    }
}

/// The result of one fused multi-column sweep: for every subject × every
/// requested column, the full `allRights` distance histogram — stored
/// columnar in a single flat arena (narrow `u64` lanes or wide
/// `ModeCounts` cells, see the module docs).
///
/// ```
/// use ucra_core::engine::counting::PropagationMode;
/// use ucra_core::engine::kernel::FusedSweep;
///
/// let ex = ucra_core::motivating::motivating_example();
/// let pairs = [(ex.obj, ex.read)];
/// let sweep = FusedSweep::compute(
///     &ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both,
/// ).unwrap();
/// let hist = sweep.histogram(ex.user, 0);
/// assert_eq!(hist.totals().unwrap().pos, 2); // Table 1 of the paper
/// assert!(sweep.is_narrow() && !sweep.escalated());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedSweep {
    subjects: usize,
    columns: usize,
    /// Row metadata, `subjects × columns`, indexed `slot * columns + c`
    /// where `slot` is the subject's topo position under `order`.
    rows: Vec<RowMeta>,
    /// The arena: every non-empty row's dense strata, concatenated, in
    /// whichever tier the sweep finished in.
    arena: CountArena,
    /// `Some` when the sparsity-pruned path produced this sweep: a
    /// zero-length row then denotes a *default-only* cell served from
    /// these shared per-node default rows (not an empty histogram —
    /// empty rows cannot arise in a non-empty hierarchy, since every
    /// node has at least one root ancestor contributing a record).
    defaults: Option<Arc<DefaultRows>>,
    /// Union active-set size when the pruned path ran (`None` = dense
    /// full walk). Observability for benches and dispatch diagnostics.
    active: Option<usize>,
    /// Maps subject index → row slot (the context's `topo_pos`); `None`
    /// is the identity order ([`FusedSweep::from_columns`]).
    order: Option<Arc<Vec<u32>>>,
    /// `true` when the narrow tier was attempted (or would have been)
    /// but the batch's counts demanded the wide `u128` tier.
    escalated: bool,
}

impl FusedSweep {
    /// Sweeps the full hierarchy once for a batch of `(object, right)`
    /// columns. Column `c` of the result corresponds to `pairs[c]`;
    /// duplicate pairs are computed per occurrence (callers that care
    /// deduplicate first).
    ///
    /// One-shot convenience over [`FusedSweep::compute_with`]: builds a
    /// throwaway [`SweepContext`] and [`SweepScratch`]. Drivers that sweep
    /// more than one batch should build the context once and reuse a
    /// scratch instead.
    pub fn compute(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_with(
            &SweepContext::new(hierarchy),
            eacm,
            pairs,
            mode,
            &mut SweepScratch::new(),
        )
    }

    /// Sweeps a batch of columns over a prebuilt [`SweepContext`], reusing
    /// `scratch`'s buffers for the label plane and arena.
    ///
    /// Equivalent to [`FusedSweep::compute`] (bag-identical histograms),
    /// minus the per-call `O(V + E)` traversal rebuild and steady-state
    /// allocations. When the batch's labels reach less than half the
    /// hierarchy, the sweep restricts itself to the labels' union
    /// descendant cone (see [`FusedSweep::active_subjects`]); cells
    /// outside the cone share the context's precomputed default rows.
    /// Runs in the narrow `u64` tier and escalates to the wide tier only
    /// when the batch's counts demand it (see [`FusedSweep::escalated`]).
    /// Call [`FusedSweep::recycle`] (or
    /// [`FusedSweep::into_tables_recycling`]) on the result to hand the
    /// arena storage back to `scratch` for the next batch.
    pub fn compute_with(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_impl(
            ctx,
            eacm,
            pairs,
            mode,
            scratch,
            true,
            true,
            Kernels::active(),
        )
    }

    /// [`FusedSweep::compute_with`] with the SIMD `backend` forced
    /// (clamped to what the host supports) instead of the process-wide
    /// [`crate::engine::simd::active_backend`]. Every backend is
    /// bit-identical — including escalation decisions — so this exists
    /// for the forced-backend equivalence tests and the `fused_sweep`
    /// bench's within-run backend comparison, not for steering results.
    pub fn compute_with_backend(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
        backend: Backend,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_impl(
            ctx,
            eacm,
            pairs,
            mode,
            scratch,
            true,
            true,
            Kernels::new(backend),
        )
    }

    /// The dense full-walk reference: [`FusedSweep::compute_with`] with
    /// sparsity pruning disabled, materialising an arena row for every
    /// `(node, column)` cell. Benchmarks measure the pruned path against
    /// this, and differential tests pin the two paths to each other.
    pub fn compute_dense_with(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_impl(
            ctx,
            eacm,
            pairs,
            mode,
            scratch,
            false,
            true,
            Kernels::active(),
        )
    }

    /// The forced wide-tier run: [`FusedSweep::compute_with`] with the
    /// narrow `u64` lanes disabled, so the whole batch goes through the
    /// checked-`u128` `ModeCounts` arena. This is the escalation target
    /// and the in-tree equivalence oracle for the narrow tier; the
    /// `fused_sweep` bench times the default (narrow) path against it.
    pub fn compute_wide_with(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
    ) -> Result<FusedSweep, CoreError> {
        Self::compute_impl(
            ctx,
            eacm,
            pairs,
            mode,
            scratch,
            true,
            false,
            Kernels::active(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_impl(
        ctx: &SweepContext,
        eacm: &Eacm,
        pairs: &[(ObjectId, RightId)],
        mode: PropagationMode,
        scratch: &mut SweepScratch,
        allow_prune: bool,
        allow_narrow: bool,
        kernels: Kernels,
    ) -> Result<FusedSweep, CoreError> {
        let n = ctx.subjects;
        let k = pairs.len();
        let wpc = words_per_column(n);
        // Packed struct-of-bitplanes label matrix: per column, 2-bit
        // codes at each topo position. Built by a single pass over the
        // sparse explicit matrix instead of `n × k` map lookups inside
        // the sweep. The same pass collects the deduplicated labeled
        // subjects as cone-walk seeds.
        scratch.label_words.clear();
        scratch.label_words.resize(wpc * k, 0);
        scratch.columns_of.clear();
        for (c, &pair) in pairs.iter().enumerate() {
            scratch.columns_of.entry(pair).or_default().push(c);
        }
        scratch.begin_epoch(n);
        scratch.sources.clear();
        let epoch = scratch.epoch;
        for (s, o, r, sign) in eacm.iter() {
            if s.index() >= n {
                continue; // labels outside the hierarchy are unreachable
            }
            if let Some(cols) = scratch.columns_of.get(&(o, r)) {
                let slot = ctx.topo_pos[s.index()] as usize;
                let shift = 2 * (slot % LABELS_PER_WORD);
                let code = label_code(Mode::from(sign)) << shift;
                let mask = !(3u64 << shift);
                for &c in cols {
                    let w = &mut scratch.label_words[c * wpc + slot / LABELS_PER_WORD];
                    *w = (*w & mask) | code;
                }
                if scratch.stamp[s.index()] != epoch {
                    scratch.stamp[s.index()] = epoch;
                    scratch.sources.push(s.index() as u32);
                }
            }
        }

        // Sparsity pruning: rows outside the labels' union descendant
        // cone are pure-default and shared, so only walk the cone when it
        // is small. The seed count bounds the cone from below; batches
        // seeding a quarter of the hierarchy skip the walk entirely —
        // their cones almost always blow the half-size cap below, and on
        // near-dense batches the speculative `O(V + E)` cone walk is
        // pure overhead on top of the full sweep it fails to avoid.
        let mut pruned: Option<Arc<DefaultRows>> = None;
        if allow_prune && k > 0 && scratch.sources.len() * 4 < n {
            scratch.active.clear();
            scratch.active.extend_from_slice(&scratch.sources);
            let mut i = 0;
            while i < scratch.active.len() {
                let v = scratch.active[i] as usize;
                i += 1;
                for &ch in ctx.children(v) {
                    if scratch.stamp[ch as usize] != epoch {
                        scratch.stamp[ch as usize] = epoch;
                        scratch.active.push(ch);
                    }
                }
            }
            if scratch.active.len() * 2 < n {
                if let Some(defaults) = ctx.default_rows() {
                    pruned = Some(Arc::clone(defaults));
                    scratch
                        .active
                        .sort_unstable_by_key(|&v| ctx.topo_pos[v as usize]);
                }
            }
        }

        let mut rows = std::mem::take(&mut scratch.rows);
        rows.clear();
        rows.resize(n * k, RowMeta::default());
        // Dense walks read every `(column, slot)` label exactly once, so
        // SIMD-decode the packed planes to a byte per slot up front (see
        // [`LabelBytes`]); pruned walks keep the packed plane to stay
        // `O(active)`.
        let spc = wpc * LABELS_PER_WORD;
        scratch.label_bytes.clear();
        if pruned.is_none() {
            scratch.label_bytes.resize(spc * k, 0);
            for c in 0..k {
                kernels.expand_labels(
                    &scratch.label_words[c * wpc..(c + 1) * wpc],
                    &mut scratch.label_bytes[c * spc..(c + 1) * spc],
                );
            }
        }
        let packed = LabelPlane {
            words: &scratch.label_words,
            wpc,
        };
        let decoded = LabelBytes {
            bytes: &scratch.label_bytes,
            spc,
        };
        let active = pruned.is_some().then_some(scratch.active.len());

        // A pruned narrow sweep merges cone-boundary default rows from
        // the shared plane, so it needs the plane's narrow companion:
        // when the pure-default counts themselves exceed the `u64`
        // ceiling, the batch is forced wide from the start.
        let narrow_possible = allow_narrow
            && pruned
                .as_ref()
                .is_none_or(|defaults| defaults.narrow.is_some());
        let mut escalated = allow_narrow && !narrow_possible;
        if narrow_possible {
            let mut lanes = std::mem::take(&mut scratch.lanes);
            lanes.clear();
            lanes.kernels = kernels;
            let fits = match &pruned {
                Some(defaults) => Self::sweep_pruned_tier(
                    ctx,
                    k,
                    packed,
                    mode,
                    &scratch.active,
                    defaults,
                    &mut rows,
                    &mut lanes,
                    ctx.narrow_limit,
                )?,
                None => Self::sweep_tier(
                    ctx,
                    k,
                    decoded,
                    mode,
                    &mut rows,
                    &mut lanes,
                    ctx.narrow_limit,
                )?,
            };
            if fits {
                return Ok(FusedSweep {
                    subjects: n,
                    columns: k,
                    rows,
                    arena: CountArena::Narrow(lanes),
                    defaults: pruned,
                    active,
                    order: Some(Arc::clone(&ctx.topo_pos)),
                    escalated: false,
                });
            }
            // Escalation: the batch's counts crossed the saturation
            // ceiling mid-sweep. Hand the lanes back and re-run the whole
            // batch through the wide tier, which reports any genuine
            // `u128` overflow exactly where the pre-tiering kernel did.
            lanes.clear();
            scratch.lanes = lanes;
            rows.clear();
            rows.resize(n * k, RowMeta::default());
            escalated = true;
        }

        let mut counts = std::mem::take(&mut scratch.counts);
        counts.clear();
        let result = match &pruned {
            Some(defaults) => Self::sweep_pruned_tier(
                ctx,
                k,
                packed,
                mode,
                &scratch.active,
                defaults,
                &mut rows,
                &mut counts,
                0,
            ),
            None => Self::sweep_tier(ctx, k, decoded, mode, &mut rows, &mut counts, 0),
        };
        match result {
            Ok(_) => Ok(FusedSweep {
                subjects: n,
                columns: k,
                rows,
                arena: CountArena::Wide(counts),
                defaults: pruned,
                active,
                order: Some(Arc::clone(&ctx.topo_pos)),
                escalated,
            }),
            Err(e) => {
                // Keep the buffers on error paths too.
                scratch.rows = rows;
                scratch.counts = counts;
                Err(e)
            }
        }
    }

    /// Returns this sweep's arena storage to `scratch` so the next
    /// [`FusedSweep::compute_with`] call on the same thread reuses the
    /// capacity instead of reallocating, and gives the scratch a chance
    /// to shrink over-retained buffers back to recent high-water marks.
    pub fn recycle(self, scratch: &mut SweepScratch) {
        scratch.rows = self.rows;
        match self.arena {
            CountArena::Narrow(lanes) => scratch.lanes = lanes,
            CountArena::Wide(counts) => scratch.counts = counts,
        }
        scratch.note_batch_and_trim();
    }

    /// The fused counting recurrence: one walk of the precomputed
    /// topological order, all columns, over either storage tier.
    /// `rows` arrives zeroed at `subjects × columns`; `arena` arrives
    /// empty with retained capacity. Returns `Ok(false)` when a finished
    /// row crossed `limit` and the batch must escalate (narrow tier
    /// only; the wide tier always returns `Ok(true)` or an error).
    fn sweep_tier<T: CountTier>(
        ctx: &SweepContext,
        columns: usize,
        labels: LabelBytes<'_>,
        mode: PropagationMode,
        rows: &mut [RowMeta],
        arena: &mut T,
        limit: u64,
    ) -> Result<bool, CoreError> {
        let n = ctx.subjects;
        debug_assert_eq!(rows.len(), n * columns, "row index shape");
        // Two hot scratch lists keep the parent indirections off the
        // walk's critical path: `pbases` resolves each parent's row-index
        // base (`topo_pos[p] * columns`) once per node instead of once
        // per column, and `inflow` replays pass 1's scattered `RowMeta`
        // loads to pass 2 from L1 instead of re-walking the row index.
        // On deep shapes those two loads are the walk's dominant
        // backend-neutral cache traffic.
        let mut pbases: Vec<usize> = Vec::new();
        let mut inflow: Vec<RowMeta> = Vec::new();
        for (slot, &v) in ctx.topo.iter().enumerate() {
            let v = v as usize;
            let parents = ctx.parents(v);
            let is_root = parents.is_empty();
            pbases.clear();
            pbases.extend(
                parents
                    .iter()
                    .map(|&p| ctx.topo_pos[p as usize] as usize * columns),
            );
            for c in 0..columns {
                let own = labels.get(c, slot);

                // SecondWins: an explicit label replaces every record
                // arriving from above — the row is exactly one stratum.
                if mode == PropagationMode::SecondWins {
                    if let Some(m) = own {
                        let offset = arena.end();
                        arena.grow(1);
                        arena.bump(offset, m)?;
                        rows[slot * columns + c] = RowMeta {
                            offset,
                            base: 0,
                            len: 1,
                        };
                        continue;
                    }
                }

                // Pass 1: the row's distance span from the parents' rows
                // shifted one edge down.
                let mut base = u32::MAX;
                let mut end = 0u32; // exclusive
                inflow.clear();
                for &pb in &pbases {
                    let r = rows[pb + c];
                    if r.len == 0 {
                        continue;
                    }
                    let pb = r.base.checked_add(1).ok_or(CoreError::DistanceOverflow)?;
                    let pe = pb.checked_add(r.len).ok_or(CoreError::DistanceOverflow)?;
                    base = base.min(pb);
                    end = end.max(pe);
                    arena.prefetch(r.offset, r.len as usize);
                    inflow.push(r);
                }
                let own_contrib = match mode {
                    PropagationMode::Both => {
                        own.or(if is_root { Some(Mode::Default) } else { None })
                    }
                    // `own` was handled above; only the root default remains.
                    PropagationMode::SecondWins => {
                        if is_root {
                            Some(Mode::Default)
                        } else {
                            None
                        }
                    }
                    PropagationMode::FirstWins => match own {
                        Some(m) if inflow.is_empty() => Some(m),
                        Some(_) => None,
                        None if is_root => Some(Mode::Default),
                        None => None,
                    },
                };
                if own_contrib.is_some() {
                    base = 0;
                    end = end.max(1);
                }
                if base == u32::MAX {
                    continue; // empty row
                }

                // Pass 2: reserve the dense slice at the arena tail and
                // merge. Parents' rows live strictly below `offset`, so
                // split borrows inside the tier keep everything safe.
                // The first source row lands by copy with zero-filled
                // flanks (see [`CountTier::extend_from_within`]); only
                // the remaining rows pay a read-modify-write merge.
                let len = end - base;
                let offset = arena.end();
                let mut rest: &[RowMeta] = &inflow;
                match inflow.split_first() {
                    Some((first, more)) => {
                        let start = (first.base + 1 - base) as usize;
                        arena.grow(start);
                        arena.extend_from_within(first.offset, first.len as usize);
                        arena.grow(len as usize - start - first.len as usize);
                        rest = more;
                    }
                    None => arena.grow(len as usize),
                }
                if let Some(m) = own_contrib {
                    arena.bump(offset, m)?; // base == 0 whenever own_contrib is set
                }
                for r in rest {
                    let start = (r.base + 1 - base) as usize;
                    arena.merge_within(offset + start, r.offset, r.len as usize)?;
                }
                if !arena.row_fits(offset, len as usize, limit) {
                    return Ok(false);
                }
                rows[slot * columns + c] = RowMeta { offset, base, len };
            }
        }
        Ok(true)
    }

    /// The sparsity-pruned counting recurrence: walks only `active` (the
    /// union descendant cone of the batch's labeled subjects, in
    /// topological order). Per column, a cone node is *column-active* iff
    /// it carries its own label or inherits from a column-active parent;
    /// the written rows double as that mask, since every written row is
    /// non-empty. Cells left unwritten are **exactly** the pure-default
    /// rows of `defaults` — a node with no labeled ancestor-or-self
    /// receives one `Default` record per root path in every propagation
    /// mode — so cone-boundary merges read inactive parents' histograms
    /// from `defaults` and the result is bag-identical to the full walk.
    #[allow(clippy::too_many_arguments)]
    fn sweep_pruned_tier<T: CountTier>(
        ctx: &SweepContext,
        columns: usize,
        labels: LabelPlane<'_>,
        mode: PropagationMode,
        active: &[u32],
        defaults: &DefaultRows,
        rows: &mut [RowMeta],
        arena: &mut T,
        limit: u64,
    ) -> Result<bool, CoreError> {
        let n = ctx.subjects;
        debug_assert_eq!(rows.len(), n * columns, "row index shape");
        // Same scratch-list scheme as the dense tier: parent topo slots
        // resolve once per node, and the inherits scan doubles as pass 1's
        // row collection so each parent's (real or default) `RowMeta` is
        // loaded exactly once per column. The `bool` remembers which table
        // the row came from — pass 2 routes real rows to `merge_within`
        // and default rows to `merge_defaults`.
        let mut pslots: Vec<usize> = Vec::new();
        let mut inflow: Vec<(RowMeta, bool)> = Vec::new();
        for &v in active {
            let v = v as usize;
            let slot = ctx.topo_pos[v] as usize;
            let parents = ctx.parents(v);
            let is_root = parents.is_empty();
            pslots.clear();
            pslots.extend(parents.iter().map(|&p| ctx.topo_pos[p as usize] as usize));
            for c in 0..columns {
                let own = labels.get(c, slot);
                // Collect inflow rows, with column-inactive parents
                // contributing their (true) default rows. No fallible
                // arithmetic happens here, so skipped cells below still
                // never surface span-overflow errors.
                inflow.clear();
                let mut inherits = false;
                for &ps in &pslots {
                    let r = rows[ps * columns + c];
                    if r.len != 0 {
                        inherits = true;
                        arena.prefetch(r.offset, r.len as usize);
                        inflow.push((r, false));
                    } else {
                        let dr = defaults.rows[ps];
                        if dr.len != 0 {
                            inflow.push((dr, true));
                        }
                    }
                }
                if own.is_none() && !inherits {
                    continue; // default-only cell, served from `defaults`
                }

                // SecondWins: an explicit label replaces every record
                // arriving from above — the row is exactly one stratum.
                if mode == PropagationMode::SecondWins {
                    if let Some(m) = own {
                        let offset = arena.end();
                        arena.grow(1);
                        arena.bump(offset, m)?;
                        rows[slot * columns + c] = RowMeta {
                            offset,
                            base: 0,
                            len: 1,
                        };
                        continue;
                    }
                }

                // Pass 1: the distance span from the collected rows
                // shifted one edge down.
                let mut base = u32::MAX;
                let mut end = 0u32; // exclusive
                for &(r, _) in &inflow {
                    let pb = r.base.checked_add(1).ok_or(CoreError::DistanceOverflow)?;
                    let pe = pb.checked_add(r.len).ok_or(CoreError::DistanceOverflow)?;
                    base = base.min(pb);
                    end = end.max(pe);
                }
                let own_contrib = match mode {
                    PropagationMode::Both => {
                        own.or(if is_root { Some(Mode::Default) } else { None })
                    }
                    // `own` was handled above; only the root default remains.
                    PropagationMode::SecondWins => {
                        if is_root {
                            Some(Mode::Default)
                        } else {
                            None
                        }
                    }
                    PropagationMode::FirstWins => match own {
                        Some(m) if inflow.is_empty() => Some(m),
                        Some(_) => None,
                        None if is_root => Some(Mode::Default),
                        None => None,
                    },
                };
                if own_contrib.is_some() {
                    base = 0;
                    end = end.max(1);
                }
                if base == u32::MAX {
                    continue; // empty row
                }

                // Pass 2: reserve and merge, exactly as in the dense
                // walk, except default-row sources come from the shared
                // table instead of this sweep's arena.
                let len = end - base;
                let offset = arena.end();
                let mut rest: &[(RowMeta, bool)] = &inflow;
                match inflow.split_first() {
                    Some((&(first, first_default), more)) => {
                        let start = (first.base + 1 - base) as usize;
                        arena.grow(start);
                        if first_default {
                            arena.extend_from_defaults(defaults, first.offset, first.len as usize);
                        } else {
                            arena.extend_from_within(first.offset, first.len as usize);
                        }
                        arena.grow(len as usize - start - first.len as usize);
                        rest = more;
                    }
                    None => arena.grow(len as usize),
                }
                if let Some(m) = own_contrib {
                    arena.bump(offset, m)?; // base == 0 whenever own_contrib is set
                }
                for &(r, is_default) in rest {
                    let start = (r.base + 1 - base) as usize;
                    if is_default {
                        arena.merge_defaults(offset + start, defaults, r.offset, r.len as usize)?;
                    } else {
                        arena.merge_within(offset + start, r.offset, r.len as usize)?;
                    }
                }
                if !arena.row_fits(offset, len as usize, limit) {
                    return Ok(false);
                }
                rows[slot * columns + c] = RowMeta { offset, base, len };
            }
        }
        Ok(true)
    }

    /// Packs existing histogram columns into arena form (the inverse of
    /// [`FusedSweep::histogram`]; the round-trip is lossless). Picks the
    /// narrow tier when every count fits a `u64` (the packed arena is
    /// read-only, so no merge headroom is needed), the wide tier
    /// otherwise.
    ///
    /// `columns[c][v]` is subject `v`'s histogram in column `c`; every
    /// column must have the same length.
    pub fn from_columns(columns: &[Vec<DistanceHistogram>]) -> FusedSweep {
        let k = columns.len();
        let n = columns.first().map_or(0, Vec::len);
        assert!(
            columns.iter().all(|col| col.len() == n),
            "all columns must have one row per subject"
        );
        let mut rows = vec![RowMeta::default(); n * k];
        let mut counts = Vec::new();
        for v in 0..n {
            for (c, col) in columns.iter().enumerate() {
                let h = &col[v];
                let (Some(lo), Some(hi)) = (h.min_dis(), h.max_dis()) else {
                    continue;
                };
                let offset = counts.len();
                counts.extend((lo..=hi).map(|d| h.at(d)));
                rows[v * k + c] = RowMeta {
                    offset,
                    base: lo,
                    len: hi - lo + 1,
                };
            }
        }
        let ceiling = u128::from(u64::MAX);
        let arena = if counts
            .iter()
            .all(|c| c.pos <= ceiling && c.neg <= ceiling && c.def <= ceiling)
        {
            CountArena::Narrow(LanePlanes {
                pos: counts.iter().map(|c| c.pos as u64).collect(),
                neg: counts.iter().map(|c| c.neg as u64).collect(),
                def: counts.iter().map(|c| c.def as u64).collect(),
                kernels: Kernels::default(),
            })
        } else {
            CountArena::Wide(counts)
        };
        FusedSweep {
            subjects: n,
            columns: k,
            rows,
            arena,
            defaults: None,
            active: None,
            order: None,
            escalated: false,
        }
    }

    /// Number of subjects (rows per column).
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Number of columns in the batch.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// `Some(size)` when this sweep took the sparsity-pruned path: the
    /// number of nodes in the batch's union label cone, i.e. how many
    /// rows were actually computed per column (the rest are shared
    /// default rows). `None` means the dense full walk ran.
    pub fn active_subjects(&self) -> Option<usize> {
        self.active
    }

    /// `true` when the counts live in the narrow `u64` lane tier (the
    /// steady-state fast path), `false` for the wide `u128` tier.
    pub fn is_narrow(&self) -> bool {
        matches!(self.arena, CountArena::Narrow(_))
    }

    /// `true` when this batch demanded the wide `u128` tier: a narrow
    /// sweep crossed the saturation ceiling mid-run (and the batch was
    /// re-swept wide, losslessly), or the shared default rows themselves
    /// exceed `u64` so the narrow tier never started. Sessions surface
    /// this as the `wide_escalations` counter; on realistic workloads it
    /// stays zero.
    pub fn escalated(&self) -> bool {
        self.escalated
    }

    /// Bytes held by the arena and its row index — the figure the
    /// session's `kernel_arena_bytes` counter accumulates.
    pub fn arena_bytes(&self) -> usize {
        let cells = match &self.arena {
            CountArena::Narrow(lanes) => lanes.len() * 3 * std::mem::size_of::<u64>(),
            CountArena::Wide(counts) => counts.len() * std::mem::size_of::<ModeCounts>(),
        };
        cells + self.rows.len() * std::mem::size_of::<RowMeta>()
    }

    /// The arena row slot of `subject` (its topo position, or identity
    /// for packed sweeps).
    #[inline]
    fn slot(&self, subject: usize) -> usize {
        match &self.order {
            Some(order) => order[subject] as usize,
            None => subject,
        }
    }

    /// The non-zero strata of one `(subject, column)` cell in increasing
    /// distance order — the exact stream `Resolve()` consumes.
    pub fn strata(&self, subject: SubjectId, column: usize) -> Strata<'_> {
        let slot = self.slot(subject.index());
        let mut r = self.rows[slot * self.columns + column];
        let cells = match &self.defaults {
            // Pruned sweep: an unwritten row is a default-only cell
            // served from the shared per-node default table (real rows
            // are never empty, so `len == 0` is unambiguous).
            Some(d) if r.len == 0 => {
                r = d.rows[slot];
                CellCounts::Wide(&d.counts)
            }
            _ => match &self.arena {
                CountArena::Narrow(lanes) => CellCounts::Narrow(lanes),
                CountArena::Wide(counts) => CellCounts::Wide(counts),
            },
        };
        Strata {
            cells,
            offset: r.offset,
            base: r.base,
            len: r.len as usize,
            i: 0,
        }
    }

    /// The cell's histogram in the classic sparse representation.
    pub fn histogram(&self, subject: SubjectId, column: usize) -> DistanceHistogram {
        let mut h = DistanceHistogram::new();
        for (dis, c) in self.strata(subject, column) {
            for mode in [Mode::Pos, Mode::Neg, Mode::Default] {
                h.add(dis, mode, c.get(mode))
                    .expect("arena counts were checked when the row was built");
            }
        }
        h
    }

    /// Resolves one cell under `strategy`, straight from the arena.
    pub fn resolve(
        &self,
        subject: SubjectId,
        column: usize,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        resolve_strata(self.strata(subject, column), strategy)
    }

    /// The effective sign of every subject in one column.
    ///
    /// On a pruned sweep, default-only cells short-circuit to
    /// [`Strategy::default_only_sign`] — a pure-default histogram always
    /// resolves to that closed form — so the per-subject cost is `O(1)`
    /// outside the label cone.
    pub fn signs(&self, column: usize, strategy: Strategy) -> Result<Vec<Sign>, CoreError> {
        let default_sign = self.defaults.as_ref().map(|_| strategy.default_only_sign());
        (0..self.subjects)
            .map(|i| {
                if let Some(sign) = default_sign {
                    if self.rows[self.slot(i) * self.columns + column].len == 0 {
                        return Ok(sign);
                    }
                }
                Ok(self
                    .resolve(SubjectId::from_index(i), column, strategy)?
                    .sign)
            })
            .collect()
    }

    /// One column as a plain histogram table (the shape the sweep caches
    /// store).
    pub fn table(&self, column: usize) -> Vec<DistanceHistogram> {
        (0..self.subjects)
            .map(|i| self.histogram(SubjectId::from_index(i), column))
            .collect()
    }

    /// All columns as histogram tables, `tables[c][v]`.
    pub fn into_tables(self) -> Vec<Vec<DistanceHistogram>> {
        (0..self.columns).map(|c| self.table(c)).collect()
    }

    /// [`FusedSweep::into_tables`] that also hands the arena storage back
    /// to `scratch` — the shape batch drivers want: extract the cacheable
    /// tables, keep the buffers warm for the next batch.
    pub fn into_tables_recycling(self, scratch: &mut SweepScratch) -> Vec<Vec<DistanceHistogram>> {
        let tables = (0..self.columns).map(|c| self.table(c)).collect();
        self.recycle(scratch);
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::counting;
    use crate::motivating::motivating_example;

    const MODES: [PropagationMode; 3] = [
        PropagationMode::Both,
        PropagationMode::SecondWins,
        PropagationMode::FirstWins,
    ];

    /// `depth` stacked diamonds: the bottom node has `2^depth` paths from
    /// the top, each of length `2 * depth`. Returns the hierarchy, its
    /// top (labeled) node, and its bottom node.
    fn diamond_stack(depth: usize) -> (SubjectDag, SubjectId, SubjectId) {
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..depth {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        (h, first, top)
    }

    #[test]
    fn single_column_matches_legacy_sweep_in_every_mode() {
        let ex = motivating_example();
        for mode in MODES {
            let fused =
                FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[(ex.obj, ex.read)], mode).unwrap();
            let legacy =
                counting::histograms_all_reference(&ex.hierarchy, &ex.eacm, ex.obj, ex.read, mode)
                    .unwrap();
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    fused.histogram(s, 0),
                    legacy[s.index()],
                    "mode {mode:?}, {s}"
                );
            }
        }
    }

    #[test]
    fn multi_column_batch_matches_per_column_sweeps() {
        let ex = motivating_example();
        let pairs: Vec<_> = (0..5).map(|o| (ObjectId(o), ex.read)).collect();
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        assert_eq!(fused.columns(), 5);
        for (c, &(o, r)) in pairs.iter().enumerate() {
            let legacy =
                counting::histograms_all(&ex.hierarchy, &ex.eacm, o, r, PropagationMode::Both)
                    .unwrap();
            assert_eq!(fused.table(c), legacy, "column {c}");
        }
    }

    #[test]
    fn round_trip_through_columns_is_lossless() {
        let ex = motivating_example();
        let pairs = [(ex.obj, ex.read), (ObjectId(9), ex.read)];
        let fused =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        let tables = fused.clone().into_tables();
        let packed = FusedSweep::from_columns(&tables);
        assert!(packed.is_narrow(), "small counts pack into the narrow tier");
        for c in 0..pairs.len() {
            for s in ex.hierarchy.subjects() {
                assert_eq!(packed.histogram(s, c), fused.histogram(s, c));
            }
        }
    }

    #[test]
    fn from_columns_goes_wide_when_counts_exceed_u64() {
        let mut h = DistanceHistogram::new();
        h.add(3, Mode::Pos, u128::from(u64::MAX) + 1).unwrap();
        let packed = FusedSweep::from_columns(&[vec![h.clone()]]);
        assert!(!packed.is_narrow());
        assert!(!packed.escalated(), "packing is not an escalation");
        assert_eq!(packed.histogram(SubjectId::from_index(0), 0), h);
    }

    #[test]
    fn resolve_from_arena_matches_resolve_histogram() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        for s in ex.hierarchy.subjects() {
            let hist = fused.histogram(s, 0);
            for strategy in Strategy::all_instances() {
                assert_eq!(
                    fused.resolve(s, 0, strategy).unwrap(),
                    crate::resolve::resolve_histogram(&hist, strategy).unwrap(),
                    "subject {s}, strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_hierarchy_are_fine() {
        let ex = motivating_example();
        let empty_batch =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &[], PropagationMode::Both).unwrap();
        assert_eq!(empty_batch.columns(), 0);
        assert_eq!(empty_batch.subjects(), ex.hierarchy.subject_count());

        let empty = FusedSweep::compute(
            &SubjectDag::new(),
            &Eacm::new(),
            &[(ObjectId(0), RightId(0))],
            PropagationMode::Both,
        )
        .unwrap();
        assert_eq!(empty.subjects(), 0);
        assert!(empty.into_tables()[0].is_empty());
    }

    #[test]
    fn steady_state_sweeps_run_in_the_narrow_tier() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        assert!(fused.is_narrow());
        assert!(!fused.escalated());
    }

    #[test]
    fn exponential_path_counts_stay_exact() {
        // 100 stacked diamonds: 2^100 paths — beyond the narrow tier's
        // u64 lanes, so the batch escalates and is counted exactly in
        // the wide arena just as in the BTreeMap engine.
        let (h, first, bottom) = diamond_stack(100);
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(first, o, r).unwrap();
        let fused = FusedSweep::compute(&h, &eacm, &[(o, r)], PropagationMode::Both).unwrap();
        assert!(fused.escalated() && !fused.is_narrow());
        assert_eq!(fused.histogram(bottom, 0).at(200).pos, 1u128 << 100);
    }

    #[test]
    fn escalation_is_lossless_and_matches_the_forced_wide_oracle() {
        // 70 diamonds: 2^70 crosses the narrow saturation ceiling
        // (2^62 − 1 at fan-in 2) mid-sweep but fits u128 with room to
        // spare. The auto path must escalate and produce exactly what a
        // from-the-start wide sweep produces.
        let (h, first, bottom) = diamond_stack(70);
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(first, o, r).unwrap();
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let auto =
                FusedSweep::compute_with(&ctx, &eacm, &[(o, r)], mode, &mut scratch).unwrap();
            assert!(auto.escalated(), "mode {mode:?}");
            assert!(!auto.is_narrow(), "mode {mode:?}");
            let wide = FusedSweep::compute_wide_with(
                &ctx,
                &eacm,
                &[(o, r)],
                mode,
                &mut SweepScratch::new(),
            )
            .unwrap();
            assert!(!wide.is_narrow() && !wide.escalated());
            assert_eq!(auto.table(0), wide.table(0), "mode {mode:?}");
            auto.recycle(&mut scratch);
        }
        // And the counts really are past u64.
        let fused =
            FusedSweep::compute_with(&ctx, &eacm, &[(o, r)], PropagationMode::Both, &mut scratch)
                .unwrap();
        assert_eq!(fused.histogram(bottom, 0).at(140).pos, 1u128 << 70);
    }

    #[test]
    fn forced_wide_matches_auto_on_narrow_friendly_batches() {
        let ex = motivating_example();
        let ctx = SweepContext::new(&ex.hierarchy);
        let pairs: Vec<_> = (0..3).map(|o| (ObjectId(o), ex.read)).collect();
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let auto =
                FusedSweep::compute_with(&ctx, &ex.eacm, &pairs, mode, &mut scratch).unwrap();
            assert!(auto.is_narrow(), "mode {mode:?}");
            let wide = FusedSweep::compute_wide_with(
                &ctx,
                &ex.eacm,
                &pairs,
                mode,
                &mut SweepScratch::new(),
            )
            .unwrap();
            assert!(!wide.is_narrow() && !wide.escalated());
            for c in 0..pairs.len() {
                assert_eq!(auto.table(c), wide.table(c), "mode {mode:?} column {c}");
            }
            auto.recycle(&mut scratch);
        }
    }

    #[test]
    fn counting_overflow_is_an_error() {
        let (h, first, _) = diamond_stack(128);
        let mut eacm = Eacm::new();
        eacm.grant(first, ObjectId(0), RightId(0)).unwrap();
        assert_eq!(
            FusedSweep::compute(
                &h,
                &eacm,
                &[(ObjectId(0), RightId(0))],
                PropagationMode::Both
            ),
            Err(CoreError::PathCountOverflow)
        );
        // The forced-wide path fires the identical error — escalation
        // never changes where overflow is reported.
        assert_eq!(
            FusedSweep::compute_wide_with(
                &SweepContext::new(&h),
                &eacm,
                &[(ObjectId(0), RightId(0))],
                PropagationMode::Both,
                &mut SweepScratch::new(),
            ),
            Err(CoreError::PathCountOverflow)
        );
    }

    #[test]
    fn shared_context_and_recycled_scratch_match_one_shot_compute() {
        let ex = motivating_example();
        let ctx = SweepContext::new(&ex.hierarchy);
        assert_eq!(ctx.subjects(), ex.hierarchy.subject_count());
        assert!(ctx.bytes() > 0);
        let mut scratch = SweepScratch::new();
        // Batches of different widths, all modes, through ONE context and
        // ONE scratch — each must equal the one-shot path bit-for-bit.
        for mode in MODES {
            for width in [1usize, 3, 5] {
                let pairs: Vec<_> = (0..width).map(|o| (ObjectId(o as u32), ex.read)).collect();
                let shared =
                    FusedSweep::compute_with(&ctx, &ex.eacm, &pairs, mode, &mut scratch).unwrap();
                let fresh = FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, mode).unwrap();
                assert_eq!(shared, fresh, "mode {mode:?}, width {width}");
                shared.recycle(&mut scratch);
            }
        }
        // After the first growth the scratch retains its high-water marks.
        assert!(scratch.retained_bytes() > 0);
    }

    #[test]
    fn into_tables_recycling_matches_into_tables() {
        let ex = motivating_example();
        let ctx = SweepContext::new(&ex.hierarchy);
        let mut scratch = SweepScratch::new();
        let pairs = [(ex.obj, ex.read), (ObjectId(2), ex.read)];
        let a =
            FusedSweep::compute_with(&ctx, &ex.eacm, &pairs, PropagationMode::Both, &mut scratch)
                .unwrap();
        let tables = a.into_tables_recycling(&mut scratch);
        let b =
            FusedSweep::compute(&ex.hierarchy, &ex.eacm, &pairs, PropagationMode::Both).unwrap();
        assert_eq!(tables, b.into_tables());
        assert!(scratch.retained_bytes() > 0);
    }

    /// A deep forest where labels touch only one small subtree: the
    /// canonical shape the sparsity pruning targets. Returns the
    /// hierarchy, a matrix with labels confined to the first chain, and
    /// the label's cone size.
    fn sparse_forest() -> (SubjectDag, Eacm, usize) {
        let mut h = SubjectDag::new();
        // 8 disjoint chains of 32 nodes each.
        let mut chains = Vec::new();
        for _ in 0..8 {
            let ids = h.add_subjects(32);
            for w in ids.windows(2) {
                h.add_membership(w[0], w[1]).unwrap();
            }
            chains.push(ids);
        }
        // One label at depth 8 of chain 0: its cone is the 24 nodes below
        // (plus itself), out of 256 total.
        let mut eacm = Eacm::new();
        eacm.grant(chains[0][8], ObjectId(0), RightId(0)).unwrap();
        (h, eacm, 32 - 8)
    }

    #[test]
    fn pruned_sweep_engages_and_matches_dense_walk() {
        let (h, eacm, cone) = sparse_forest();
        let ctx = SweepContext::new(&h);
        let pairs = [(ObjectId(0), RightId(0)), (ObjectId(1), RightId(1))];
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let pruned = FusedSweep::compute_with(&ctx, &eacm, &pairs, mode, &mut scratch).unwrap();
            assert_eq!(
                pruned.active_subjects(),
                Some(cone),
                "mode {mode:?}: pruning should walk exactly the label cone"
            );
            assert!(
                pruned.is_narrow(),
                "mode {mode:?}: pruned sweeps stay narrow on small counts"
            );
            let dense =
                FusedSweep::compute_dense_with(&ctx, &eacm, &pairs, mode, &mut SweepScratch::new())
                    .unwrap();
            assert_eq!(dense.active_subjects(), None);
            for c in 0..pairs.len() {
                assert_eq!(pruned.table(c), dense.table(c), "mode {mode:?} column {c}");
                for strategy in Strategy::all_instances() {
                    assert_eq!(
                        pruned.signs(c, strategy).unwrap(),
                        dense.signs(c, strategy).unwrap(),
                        "mode {mode:?} column {c} strategy {strategy}"
                    );
                }
            }
            pruned.recycle(&mut scratch);
        }
    }

    #[test]
    fn dense_batches_skip_pruning() {
        // Labels on more than half the subjects: the seed bound already
        // rules pruning out, so the dense walk runs.
        let ex = motivating_example();
        let mut eacm = Eacm::new();
        for s in ex.hierarchy.subjects() {
            eacm.grant(s, ex.obj, ex.read).unwrap();
        }
        let ctx = SweepContext::new(&ex.hierarchy);
        let swept = FusedSweep::compute_with(
            &ctx,
            &eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
            &mut SweepScratch::new(),
        )
        .unwrap();
        assert_eq!(swept.active_subjects(), None);
    }

    #[test]
    fn active_set_size_counts_the_union_cone() {
        let (h, eacm, cone) = sparse_forest();
        let ctx = SweepContext::new(&h);
        assert_eq!(
            ctx.active_set_size(&eacm, &[(ObjectId(0), RightId(0))]),
            cone
        );
        // A column with no labels has an empty active set; unioning it
        // changes nothing.
        assert_eq!(ctx.active_set_size(&eacm, &[(ObjectId(9), RightId(9))]), 0);
        assert_eq!(
            ctx.active_set_size(
                &eacm,
                &[(ObjectId(0), RightId(0)), (ObjectId(9), RightId(9))]
            ),
            cone
        );
        assert_eq!(ctx.active_set_size(&eacm, &[]), 0);
    }

    #[test]
    fn scratch_trims_back_to_recent_high_water_marks() {
        let (h, eacm, _) = sparse_forest();
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        // One wide dense batch inflates the arena buffers…
        let wide: Vec<_> = (0..16).map(|o| (ObjectId(o), RightId(0))).collect();
        FusedSweep::compute_dense_with(&ctx, &eacm, &wide, PropagationMode::Both, &mut scratch)
            .unwrap()
            .recycle(&mut scratch);
        let inflated = scratch.retained_bytes();
        // …then > TRIM_WINDOW narrow batches shrink them back toward the
        // narrow working set.
        let narrow = [(ObjectId(0), RightId(0))];
        for _ in 0..(2 * TRIM_WINDOW) {
            FusedSweep::compute_dense_with(
                &ctx,
                &eacm,
                &narrow,
                PropagationMode::Both,
                &mut scratch,
            )
            .unwrap()
            .recycle(&mut scratch);
        }
        assert!(
            scratch.retained_bytes() < inflated,
            "retained {} bytes, expected less than the inflated {} bytes",
            scratch.retained_bytes(),
            inflated
        );
    }

    #[test]
    fn narrow_limit_respects_fan_in() {
        // A power-of-two-minus-one ceiling below (u64::MAX − 1) / fan-in.
        assert_eq!(narrow_limit_for(0), (1u64 << 63) - 1);
        assert_eq!(narrow_limit_for(1), (1u64 << 63) - 1);
        assert_eq!(narrow_limit_for(2), (1u64 << 62) - 1);
        assert_eq!(narrow_limit_for(3), (1u64 << 62) - 1);
        assert_eq!(narrow_limit_for(1000), (1u64 << 54) - 1);
        for f in 1usize..=64 {
            let limit = narrow_limit_for(f);
            // The wrap-freedom invariant: fan-in rows at the limit plus
            // the own-label bump stay below u64::MAX.
            assert!(
                u128::from(limit) * f as u128 + 1 < u128::from(u64::MAX),
                "fan-in {f}"
            );
        }
    }

    #[test]
    fn label_plane_packs_and_decodes_all_modes() {
        let n = 67; // straddles a word boundary (32 codes per u64)
        let wpc = words_per_column(n);
        let mut words = vec![0u64; wpc * 2];
        let cases = [
            (0usize, 0usize, Mode::Pos),
            (0, 31, Mode::Neg),
            (0, 32, Mode::Default),
            (1, 33, Mode::Pos),
            (1, 66, Mode::Neg),
        ];
        for &(c, slot, m) in &cases {
            let shift = 2 * (slot % LABELS_PER_WORD);
            words[c * wpc + slot / LABELS_PER_WORD] |= label_code(m) << shift;
        }
        let plane = LabelPlane { words: &words, wpc };
        for &(c, slot, m) in &cases {
            assert_eq!(plane.get(c, slot), Some(m), "column {c} slot {slot}");
        }
        assert_eq!(plane.get(0, 1), None);
        assert_eq!(plane.get(1, 0), None);
    }

    #[test]
    fn arena_bytes_reports_the_flat_layout() {
        let ex = motivating_example();
        let fused = FusedSweep::compute(
            &ex.hierarchy,
            &ex.eacm,
            &[(ex.obj, ex.read)],
            PropagationMode::Both,
        )
        .unwrap();
        // Rows index + at least one stratum of real data.
        assert!(fused.arena_bytes() > std::mem::size_of::<ModeCounts>());
    }
}
