//! Propagation engines.
//!
//! Three interchangeable implementations of Step 3 of the paper (collect
//! `allRights`, the bag of per-path authorization records, for a query):
//!
//! * [`path_enum`] — the paper-faithful Function `Propagate()` (Fig. 5):
//!   literally pushes every record down every path, `O(n + d)` where `d`
//!   is the total length of all paths (worst case exponential, §3.3).
//! * [`counting`] — our optimisation: a dynamic program over the ancestor
//!   sub-graph that represents the bag as per-`(distance, mode)` **path
//!   counts**, polynomial even when the number of paths is exponential.
//! * the relational spec in `ucra-relational` (used as a test oracle).
//!
//! All three produce bag-equivalent results; the equivalence is asserted
//! by unit and property tests. The common summary type both in-crate
//! engines reduce to is [`DistanceHistogram`], which is exactly the
//! information Algorithm `Resolve()` consumes: how many records of each
//! mode exist at each distance.

pub mod counting;
pub mod kernel;
pub mod path_enum;
pub mod simd;

use crate::error::CoreError;
use crate::ids::SubjectId;
use crate::mode::Mode;
use std::collections::BTreeMap;
use std::fmt;

/// One row of the paper's `allRights` relation: an authorization record
/// propagated along one path.
///
/// The paper's relation has columns ⟨subject, object, right, dis, mode⟩;
/// subject/object/right are fixed per query, and we additionally remember
/// the record's *source* (the labeled ancestor or defaulted root it came
/// from) for explanations — `Resolve()` itself never reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AuthRecord {
    /// Length of the path this record travelled (the `dis` column).
    pub dis: u32,
    /// The propagated mode (`+`, `-`, or pending default `d`).
    pub mode: Mode,
    /// The ancestor the record originated from.
    pub source: SubjectId,
}

/// Per-mode record counts at one distance.
///
/// Counts are `u128` because each record corresponds to one propagation
/// path and path counts are exponential in the worst case; all arithmetic
/// is checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeCounts {
    /// Number of `+` records.
    pub pos: u128,
    /// Number of `-` records.
    pub neg: u128,
    /// Number of pending-default (`d`) records.
    pub def: u128,
}

impl ModeCounts {
    /// Count for one mode.
    #[inline]
    pub fn get(&self, mode: Mode) -> u128 {
        match mode {
            Mode::Pos => self.pos,
            Mode::Neg => self.neg,
            Mode::Default => self.def,
        }
    }

    #[inline]
    pub(crate) fn add(&mut self, mode: Mode, n: u128) -> Result<(), CoreError> {
        let slot = match mode {
            Mode::Pos => &mut self.pos,
            Mode::Neg => &mut self.neg,
            Mode::Default => &mut self.def,
        };
        *slot = slot.checked_add(n).ok_or(CoreError::PathCountOverflow)?;
        Ok(())
    }

    /// Adds every count of `other` into `self` (checked). Empty strata
    /// are common in wide-tier arena merges (a parent row spans
    /// distances this stratum never reached), so they return before
    /// touching the three checked adds.
    #[inline]
    pub(crate) fn merge(&mut self, other: &ModeCounts) -> Result<(), CoreError> {
        if other.is_zero() {
            return Ok(());
        }
        self.add(Mode::Pos, other.pos)?;
        self.add(Mode::Neg, other.neg)?;
        self.add(Mode::Default, other.def)
    }

    /// `true` when all three counts are zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.pos == 0 && self.neg == 0 && self.def == 0
    }
}

/// The bag `allRights` collapsed to per-`(distance, mode)` path counts —
/// a lossless summary for `Resolve()`, which only ever counts records and
/// filters them by distance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistanceHistogram {
    strata: BTreeMap<u32, ModeCounts>,
}

impl DistanceHistogram {
    /// An empty histogram (no records at all).
    pub fn new() -> Self {
        DistanceHistogram::default()
    }

    /// Adds `n` records of `mode` at distance `dis` (checked).
    pub fn add(&mut self, dis: u32, mode: Mode, n: u128) -> Result<(), CoreError> {
        if n == 0 {
            return Ok(());
        }
        self.strata.entry(dis).or_default().add(mode, n)
    }

    /// Builds a histogram from explicit records (e.g. the output of the
    /// path-enumeration engine).
    pub fn from_records(records: &[AuthRecord]) -> Result<Self, CoreError> {
        let mut h = DistanceHistogram::new();
        for r in records {
            h.add(r.dis, r.mode, 1)?;
        }
        Ok(h)
    }

    /// Merges `other` into `self` with every distance shifted by `shift`
    /// (one DAG edge = distance +1). Used by the counting engine's
    /// parent-to-child transfer. Both the shifted distances and the
    /// merged counts are checked: a distance past `u32::MAX` is
    /// [`CoreError::DistanceOverflow`] rather than a silent release-mode
    /// wrap-around.
    pub fn merge_shifted(
        &mut self,
        other: &DistanceHistogram,
        shift: u32,
    ) -> Result<(), CoreError> {
        for (&dis, counts) in &other.strata {
            let shifted = dis.checked_add(shift).ok_or(CoreError::DistanceOverflow)?;
            self.strata.entry(shifted).or_default().merge(counts)?;
        }
        Ok(())
    }

    /// `true` when the histogram holds no records.
    pub fn is_empty(&self) -> bool {
        self.strata.values().all(ModeCounts::is_zero)
    }

    /// Total records of each mode across all distances (checked).
    pub fn totals(&self) -> Result<ModeCounts, CoreError> {
        let mut t = ModeCounts::default();
        for counts in self.strata.values() {
            t.add(Mode::Pos, counts.pos)?;
            t.add(Mode::Neg, counts.neg)?;
            t.add(Mode::Default, counts.def)?;
        }
        Ok(t)
    }

    /// The smallest distance with at least one record.
    pub fn min_dis(&self) -> Option<u32> {
        self.strata
            .iter()
            .find(|(_, c)| !c.is_zero())
            .map(|(&d, _)| d)
    }

    /// The largest distance with at least one record.
    pub fn max_dis(&self) -> Option<u32> {
        self.strata
            .iter()
            .rev()
            .find(|(_, c)| !c.is_zero())
            .map(|(&d, _)| d)
    }

    /// The counts at one distance (zeroes when absent).
    pub fn at(&self, dis: u32) -> ModeCounts {
        self.strata.get(&dis).copied().unwrap_or_default()
    }

    /// Iterates over `(distance, counts)` strata in distance order,
    /// skipping all-zero strata.
    pub fn strata(&self) -> impl Iterator<Item = (u32, ModeCounts)> + '_ {
        self.strata
            .iter()
            .filter(|(_, c)| !c.is_zero())
            .map(|(&d, &c)| (d, c))
    }
}

impl fmt::Display for DistanceHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dis | +    | -    | d")?;
        for (d, c) in self.strata() {
            writeln!(f, "{d:3} | {:4} | {:4} | {:4}", c.pos, c.neg, c.def)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut h = DistanceHistogram::new();
        h.add(1, Mode::Pos, 2).unwrap();
        h.add(1, Mode::Neg, 1).unwrap();
        h.add(3, Mode::Default, 5).unwrap();
        assert_eq!(
            h.at(1),
            ModeCounts {
                pos: 2,
                neg: 1,
                def: 0
            }
        );
        assert_eq!(h.at(3).def, 5);
        assert_eq!(h.at(2), ModeCounts::default());
        assert_eq!(h.min_dis(), Some(1));
        assert_eq!(h.max_dis(), Some(3));
        assert!(!h.is_empty());
        let t = h.totals().unwrap();
        assert_eq!((t.pos, t.neg, t.def), (2, 1, 5));
    }

    #[test]
    fn zero_add_is_noop_and_empty_checks() {
        let mut h = DistanceHistogram::new();
        h.add(4, Mode::Pos, 0).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.min_dis(), None);
        assert_eq!(h.max_dis(), None);
        assert_eq!(h.strata().count(), 0);
    }

    #[test]
    fn from_records_counts_duplicates() {
        let s = SubjectId::from_index(0);
        let records = vec![
            AuthRecord {
                dis: 1,
                mode: Mode::Pos,
                source: s,
            },
            AuthRecord {
                dis: 1,
                mode: Mode::Pos,
                source: s,
            },
            AuthRecord {
                dis: 2,
                mode: Mode::Neg,
                source: s,
            },
        ];
        let h = DistanceHistogram::from_records(&records).unwrap();
        assert_eq!(h.at(1).pos, 2);
        assert_eq!(h.at(2).neg, 1);
    }

    #[test]
    fn merge_shifted_moves_distances() {
        let mut a = DistanceHistogram::new();
        a.add(0, Mode::Pos, 1).unwrap();
        a.add(2, Mode::Default, 3).unwrap();
        let mut b = DistanceHistogram::new();
        b.add(1, Mode::Pos, 1).unwrap();
        b.merge_shifted(&a, 1).unwrap();
        assert_eq!(b.at(1).pos, 2);
        assert_eq!(b.at(3).def, 3);
    }

    #[test]
    fn overflow_is_checked() {
        let mut h = DistanceHistogram::new();
        h.add(0, Mode::Pos, u128::MAX).unwrap();
        assert_eq!(h.add(0, Mode::Pos, 1), Err(CoreError::PathCountOverflow));
        let mut other = DistanceHistogram::new();
        other.add(0, Mode::Pos, 1).unwrap();
        assert_eq!(
            h.merge_shifted(&other, 0),
            Err(CoreError::PathCountOverflow)
        );
    }

    #[test]
    fn shifted_distance_overflow_is_an_error_not_a_wrap() {
        let mut near_max = DistanceHistogram::new();
        near_max.add(u32::MAX - 1, Mode::Pos, 1).unwrap();
        // Shifting past u32::MAX must fail loudly (in release builds the
        // old unchecked `dis + shift` wrapped to a small distance,
        // silently promoting the record to "most specific").
        let mut sink = DistanceHistogram::new();
        assert_eq!(
            sink.merge_shifted(&near_max, 2),
            Err(CoreError::DistanceOverflow)
        );
        assert!(sink.is_empty(), "failed merge must not leave partial rows");
        // The largest representable shift still works.
        sink.merge_shifted(&near_max, 1).unwrap();
        assert_eq!(sink.at(u32::MAX).pos, 1);
    }

    #[test]
    fn totals_overflow_is_checked() {
        let mut h = DistanceHistogram::new();
        h.add(0, Mode::Pos, u128::MAX).unwrap();
        h.add(1, Mode::Pos, 1).unwrap();
        assert_eq!(h.totals(), Err(CoreError::PathCountOverflow));
    }

    #[test]
    fn display_renders_strata() {
        let mut h = DistanceHistogram::new();
        h.add(1, Mode::Pos, 2).unwrap();
        let text = h.to_string();
        assert!(text.starts_with("dis |"));
        assert!(text.contains("  1 |    2 |    0 |    0"));
    }
}
